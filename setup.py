"""Setuptools entry point.

The project metadata (name, version, the numpy dependency, pytest configuration) lives
in ``pyproject.toml``; this file exists so that editable installs keep working on
machines without network access to build-isolation wheels
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
