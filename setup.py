"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this file exists so that editable
installs keep working on machines without network access to build-isolation wheels
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
