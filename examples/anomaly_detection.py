#!/usr/bin/env python3
"""Sensor anomaly detection with ε-Minimum — the paper's "number of dislikes" variant.

Section 1.2 of the paper motivates the ε-Minimum problem with anomaly detection: a fleet
of sensors broadcasts packets, and a sensor that sends abnormally few packets is likely
down or defective.  The universe (the sensor fleet) is small, the stream (the packets) is
long, and the question is "which sender appears *least* often?" — the mirror image of
heavy hitters, solvable in far less space than running a heavy-hitters algorithm with
ϕ = ε (Theorem 4: O(ε⁻¹ log log(1/ε)) vs Ω(ε⁻¹ log ε⁻¹) bits).

This example simulates a day of packets from a fleet in which one sensor degrades and one
dies outright, runs Algorithm 3 over the packet stream, and also runs it over the
complaints stream of an online store (the "fewest dislikes = best product" framing).

Run:  python examples/anomaly_detection.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import EpsilonMinimum, RandomSource, planted_heavy_hitters_stream
from repro.primitives.space import bits_for_value
from repro.streams.truth import exact_frequencies

NUM_SENSORS = 24
PACKETS = 500_000
EPSILON = 0.02


def build_sensor_stream(rng: RandomSource):
    """Healthy sensors report at roughly equal rates; sensor 7 degrades, sensor 19 dies."""
    healthy_share = 1.0 / NUM_SENSORS
    rates = {sensor: healthy_share for sensor in range(NUM_SENSORS)}
    rates[7] = healthy_share * 0.12     # degraded: ~8x fewer packets
    rates[19] = 0.0                     # dead: no packets at all
    # Renormalize the healthy sensors so the shares sum to 1.
    total = sum(rates.values())
    rates = {sensor: share / total for sensor, share in rates.items() if share > 0}
    return planted_heavy_hitters_stream(
        PACKETS, NUM_SENSORS, rates, rng=rng, name="sensor-packets",
    )


def main() -> None:
    rng = RandomSource(99)
    packets = build_sensor_stream(rng)
    truth = exact_frequencies(packets)

    detector = EpsilonMinimum(
        epsilon=EPSILON, universe_size=NUM_SENSORS, stream_length=PACKETS, rng=rng.spawn(1),
    )
    detector.consume(packets)
    result = detector.report()

    print(f"fleet of {NUM_SENSORS} sensors, {PACKETS} packets observed")
    print(f"eps-Minimum report: sensor {result.item} with ~{result.estimated_frequency:.0f} packets")
    print(f"  true packet count of that sensor: {truth.get(result.item, 0)}")
    print(f"  true quietest sensors: "
          f"{sorted(range(NUM_SENSORS), key=lambda s: truth.get(s, 0))[:3]}")
    print(f"  detector state: {detector.space_bits()} bits "
          f"(per-sensor counters truncated at {detector.truncation_cap}, "
          f"{bits_for_value(detector.truncation_cap)} bits each)")
    exact_bits = NUM_SENSORS * (bits_for_value(PACKETS) + bits_for_value(NUM_SENSORS - 1))
    print(f"  exact per-sensor counting would need {exact_bits} bits "
          "and grows with log(stream length); the truncated counters do not.\n")

    # --- the "fewest dislikes" framing ----------------------------------------------------
    # An online store logs one event per complaint; the best product is the one with the
    # fewest complaints (possibly zero), which is exactly the eps-Minimum problem.
    products = ["kettle", "toaster", "blender", "kettle-pro", "mixer", "press", "grinder", "scale"]
    complaint_rates = {0: 0.30, 1: 0.22, 2: 0.18, 3: 0.14, 4: 0.09, 5: 0.05, 6: 0.02}
    complaints = planted_heavy_hitters_stream(
        60_000, len(products), complaint_rates, rng=rng.spawn(2), name="complaints",
    )
    complaint_truth = exact_frequencies(complaints)
    best_finder = EpsilonMinimum(
        epsilon=0.05, universe_size=len(products), stream_length=len(complaints),
        rng=rng.spawn(3),
    )
    best_finder.consume(complaints)
    best = best_finder.report()
    print(f"complaints portal: {len(complaints)} complaints across {len(products)} products")
    print(f"  best product (fewest complaints, streamed): {products[best.item]!r} "
          f"with ~{best.estimated_frequency:.0f} complaints")
    print(f"  exact complaint counts: "
          f"{ {products[p]: complaint_truth.get(p, 0) for p in range(len(products))} }")


if __name__ == "__main__":
    main()
