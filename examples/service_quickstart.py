#!/usr/bin/env python3
"""Service quickstart: serve heavy-hitter queries live, checkpoint, restart, resume.

The other examples run an algorithm over a stream they hold in memory; this one runs
it the way a deployment would — a long-lived server (:mod:`repro.service`) ingesting
batches pushed over a real loopback socket, answering Definition 1 queries while the
stream is still arriving, and surviving a restart:

1. start an :class:`~repro.service.IngestServer` over a Misra–Gries sketch,
2. push the first half of a Zipfian trace and ask for a **live** report mid-ingest,
3. write a checkpoint (full sketch state to disk) and stop the server — mid-stream,
4. start a *fresh* server from the checkpoint, push the second half, finish,
5. verify the resumed final report is **identical** to an uninterrupted offline run
   of the same sketch over the same stream.

Misra–Gries is deterministic, so step 5 is exact equality against the uninterrupted
run.  The randomized sketches checkpoint/resume deterministically too, but their
randomness re-seeds across the serialization boundary, so their equality is against
an offline replay that round-trips state at the same boundary — see
``repro/service/checkpoint.py`` and ``run_service_comparison`` for that experiment.

Run:  python examples/service_quickstart.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import MisraGries, RandomSource, zipfian_stream
from repro.pipeline import PipelinedExecutor
from repro.service import Checkpointer, IngestServer, ServiceClient


EPSILON = 0.01
PHI = 0.05
UNIVERSE = 10_000
LENGTH = 100_000
CHUNK = 8_192                       # server-side ingestion chunk size
HALF = (LENGTH // (2 * CHUNK)) * CHUNK  # an exact chunk boundary to checkpoint at


def build_sketch() -> MisraGries:
    return MisraGries(epsilon=EPSILON, universe_size=UNIVERSE, stream_length_hint=LENGTH)


def start_server(pipeline: PipelinedExecutor) -> IngestServer:
    return IngestServer(
        pipeline, port=0, universe_size=UNIVERSE, report_kwargs={"phi": PHI}
    ).start()


def main() -> None:
    stream = zipfian_stream(LENGTH, UNIVERSE, skew=1.2, rng=RandomSource(2016))
    items = stream.array

    # --- the uninterrupted reference: same sketch, same items, no server ------------
    reference = build_sketch()
    reference.consume(stream, batch_size=CHUNK)
    reference_report = reference.report(phi=PHI)

    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "service.ckpt")

        # --- serve, push half, query live, checkpoint, stop -------------------------
        server = start_server(PipelinedExecutor(sketch=build_sketch(), chunk_size=CHUNK))
        print(f"server A listening on {server.endpoint}")
        with ServiceClient(server.endpoint) as client:
            for start in range(0, HALF, 10_000):        # client-chosen batch sizes;
                client.push(items[start:start + 10_000])  # the server re-chunks
            client.flush()
            live = client.query()
            print(f"live query after {live.items_processed} items "
                  f"(final={live.final}): {live.report.reported_items()}")
            info = client.checkpoint(ckpt)
            print(f"checkpoint at {info['items_processed']} items -> {ckpt}")
            client.shutdown()
        server.close()
        print("server A stopped mid-stream\n")

        # --- restart from the checkpoint and resume ---------------------------------
        pipeline, manifest = Checkpointer().restore_pipeline(ckpt)
        print(f"restored checkpoint: kind={manifest['kind']}, "
              f"items_processed={manifest['items_processed']}")
        server = start_server(pipeline)
        print(f"server B listening on {server.endpoint}")
        with ServiceClient(server.endpoint) as client:
            client.push(items[HALF:])
            client.finish()
            resumed = client.query()
            stats = client.stats()
            client.shutdown()
        server.close()

    # --- the verification the restart story rests on --------------------------------
    print(f"\nresumed final report over {resumed.items_processed} items "
          f"({stats['space_bits']} bits of state):")
    print(f"{'item':>8}  {'estimate':>10}  {'share':>8}")
    for item in resumed.report.reported_items():
        estimate = resumed.report.estimated_frequency(item)
        print(f"{item:>8}  {estimate:>10.0f}  {estimate / LENGTH:>7.2%}")

    identical = dict(resumed.report.items) == dict(reference_report.items)
    print(f"\nresumed report identical to the uninterrupted run: {identical}")
    if not identical:
        raise SystemExit("checkpoint/restore equivalence FAILED")


if __name__ == "__main__":
    main()
