#!/usr/bin/env python3
"""Streaming election aggregation — the paper's rank-aggregation variants.

Section 1.2 of the paper motivates heavy-hitters variants where each stream item is a
*ranking* rather than a single id: online polls, recommender systems, and clickstreams
where the order in which a user visits the parts of a website is itself a vote.

This example simulates an online poll whose votes arrive as a stream (Mallows-model
rankings around a hidden "true" consensus) and answers, each in a single pass with small
state:

* the approximate **plurality** winner      (ε-Maximum over top choices, Theorem 3),
* the approximate **veto** winner           (ε-Minimum over bottom choices, Theorem 4),
* every candidate's **Borda score** ±εmn    (Theorem 5),
* every candidate's **maximin score** ±εm   (Theorem 6),

and compares the streamed answers against exact offline tallies.

Run:  python examples/voting_stream.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import Election, ListBorda, ListMaximin, RandomSource
from repro.core.maximum import EpsilonMaximum
from repro.core.minimum import EpsilonMinimum
from repro.streams.truth import exact_frequencies
from repro.voting.generators import mallows_votes
from repro.voting.rankings import Ranking

CANDIDATES = ["Asha", "Bruno", "Chen", "Divya", "Emeka", "Farid"]
NUM_VOTES = 50_000
EPSILON = 0.02


def main() -> None:
    rng = RandomSource(2016)
    num_candidates = len(CANDIDATES)
    # The hidden consensus ranking the electorate noisily agrees on.
    consensus = Ranking([2, 0, 4, 1, 5, 3])  # Chen > Asha > Emeka > Bruno > Farid > Divya
    votes = mallows_votes(
        NUM_VOTES, num_candidates, dispersion=0.55, reference=consensus, rng=rng,
    )
    election = Election(num_candidates=num_candidates, votes=votes)

    print(f"streaming poll: {NUM_VOTES} votes over {num_candidates} candidates "
          f"(Mallows noise around {' > '.join(CANDIDATES[c] for c in consensus)})\n")

    # --- plurality winner via eps-Maximum over the stream of top choices ----------------
    top_choices = [vote.top() for vote in votes]
    plurality = EpsilonMaximum(
        epsilon=EPSILON, universe_size=num_candidates, stream_length=NUM_VOTES,
        rng=rng.spawn(1),
    )
    plurality.consume(top_choices)
    plurality_result = plurality.report()
    exact_plurality = election.plurality_winner()
    print(f"plurality winner  (streamed): {CANDIDATES[plurality_result.item]:<6} "
          f"~{plurality_result.estimated_frequency:.0f} first-place votes "
          f"[{plurality.space_bits()} bits]   exact: {CANDIDATES[exact_plurality]}")

    # --- veto winner via eps-Minimum over the stream of bottom choices ------------------
    bottom_choices = [vote.bottom() for vote in votes]
    veto = EpsilonMinimum(
        epsilon=EPSILON, universe_size=num_candidates, stream_length=NUM_VOTES,
        rng=rng.spawn(2),
    )
    veto.consume(bottom_choices)
    veto_result = veto.report()
    exact_veto = election.veto_winner()
    print(f"veto winner       (streamed): {CANDIDATES[veto_result.item]:<6} "
          f"~{veto_result.estimated_frequency:.0f} last-place votes  "
          f"[{veto.space_bits()} bits]   exact: {CANDIDATES[exact_veto]}")

    # --- Borda scores (Theorem 5) --------------------------------------------------------
    borda = ListBorda(
        epsilon=EPSILON, num_candidates=num_candidates, stream_length=NUM_VOTES,
        rng=rng.spawn(3),
    )
    borda.consume(votes)
    borda_report = borda.report()
    exact_borda = election.borda_scores()
    print(f"\nBorda scores (streamed vs exact, guarantee +-{EPSILON} * m * n "
          f"= +-{EPSILON * NUM_VOTES * num_candidates:.0f}) [{borda.space_bits()} bits]:")
    for candidate, score in borda_report.top_candidates(num_candidates):
        print(f"  {CANDIDATES[candidate]:<6} streamed {score:>10.0f}   exact {exact_borda[candidate]:>9}")
    print(f"Borda winner (streamed): {CANDIDATES[borda_report.approximate_winner()]}, "
          f"exact: {CANDIDATES[election.borda_winner()]}")

    # --- Maximin scores (Theorem 6) -------------------------------------------------------
    maximin = ListMaximin(
        epsilon=EPSILON, num_candidates=num_candidates, stream_length=NUM_VOTES,
        rng=rng.spawn(4),
    )
    maximin.consume(votes)
    maximin_report = maximin.report()
    exact_maximin = election.maximin_scores()
    print(f"\nMaximin scores (streamed vs exact, guarantee +-{EPSILON} * m "
          f"= +-{EPSILON * NUM_VOTES:.0f}) [{maximin.space_bits()} bits]:")
    for candidate, score in maximin_report.top_candidates(num_candidates):
        print(f"  {CANDIDATES[candidate]:<6} streamed {score:>10.0f}   exact {exact_maximin[candidate]:>9}")
    print(f"Maximin winner (streamed): {CANDIDATES[maximin_report.approximate_winner()]}, "
          f"exact: {CANDIDATES[election.maximin_winner()]}")

    print("\nNote the space asymmetry the paper proves (Theorems 5, 6, 12, 13):")
    print(f"  Borda needed   {borda.space_bits():>9} bits  (O(n log n + n log 1/eps))")
    print(f"  Maximin needed {maximin.space_bits():>9} bits  (O(n eps^-2 log^2 n)) — "
          "fundamentally more expensive.")


if __name__ == "__main__":
    main()
