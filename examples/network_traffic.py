#!/usr/bin/env python3
"""Network-traffic elephant detection — the paper's motivating application.

The heavy-hitters problem was originally posed for identifying "elephant" flows at IP
routers (Estan & Varghese, cited in the paper's introduction): the router sees a stream
of packets, each tagged with a flow id, and must identify the flows consuming more than
a ϕ fraction of the link with only a few kilobits of state.

This example simulates such a link:

* a handful of planted elephant flows (video streams, backups) with known rates,
* a Zipfian sea of mice flows,
* packets arriving in arbitrary interleaved order,

and runs three detectors over the same packet stream in one pass each: the paper's
Algorithm 1, its space-optimal Algorithm 2, and the Count-Min sketch a router might use
today.  It reports detection quality and the state each detector needed — plus the
ε-Maximum answer ("which single flow dominates the link?").

Run:  python examples/network_traffic.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import (
    CountMinSketch,
    EpsilonMaximum,
    OptimalListHeavyHitters,
    RandomSource,
    SimpleListHeavyHitters,
)
from repro.analysis.metrics import evaluate_heavy_hitters
from repro.streams.generators import planted_heavy_hitters_stream
from repro.streams.truth import exact_frequencies

NUM_FLOWS = 1 << 20          # a /12 of possible flow ids
NUM_PACKETS = 300_000
EPSILON = 0.005
PHI = 0.02

# Planted elephants: flow id -> fraction of the link it consumes.
ELEPHANTS = {
    0x0A0001: 0.09,   # a video CDN flow
    0x0A0002: 0.055,  # a backup job
    0x0A0003: 0.03,   # a software update fan-out
    0x0A0004: 0.021,  # another large flow barely above threshold
    0x0A0005: 0.012,  # below phi: must NOT be reported as an elephant
}


def build_packet_stream(rng: RandomSource):
    return planted_heavy_hitters_stream(
        NUM_PACKETS, NUM_FLOWS, ELEPHANTS, rng=rng, name="router-link",
    )


def main() -> None:
    rng = RandomSource(7)
    packets = build_packet_stream(rng)
    truth = exact_frequencies(packets)
    true_elephants = {flow for flow, count in truth.items() if count > PHI * NUM_PACKETS}
    print(f"simulated link: {NUM_PACKETS} packets over {NUM_FLOWS} possible flows, "
          f"{len(true_elephants)} true elephants (> {PHI:.0%} of traffic)\n")

    detectors = {
        "Algorithm 1 (Theorem 1)": SimpleListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=NUM_FLOWS,
            stream_length=NUM_PACKETS, rng=rng.spawn(1),
        ),
        "Algorithm 2 (Theorem 2)": OptimalListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=NUM_FLOWS,
            stream_length=NUM_PACKETS, rng=rng.spawn(2),
        ),
        "Count-Min sketch": CountMinSketch(
            epsilon=EPSILON, delta=0.05, universe_size=NUM_FLOWS, rng=rng.spawn(3),
        ),
    }

    print(f"{'detector':<26} {'found':>6} {'recall':>7} {'precision':>10} "
          f"{'max err (pkts)':>15} {'state (bits)':>13}")
    for name, detector in detectors.items():
        detector.consume(packets)
        report = detector.report() if "Algorithm" in name else detector.report(phi=PHI)
        accuracy = evaluate_heavy_hitters(report, truth)
        print(
            f"{name:<26} {len(report):>6} {accuracy.recall:>7.0%} {accuracy.precision:>10.0%} "
            f"{accuracy.max_frequency_error:>15.0f} {detector.space_bits():>13}"
        )

    print("\nreported elephants (Algorithm 1), largest first:")
    report = detectors["Algorithm 1 (Theorem 1)"].report()
    for flow in report.reported_items():
        estimate = report.estimated_frequency(flow)
        print(f"  flow 0x{flow:06X}: ~{estimate:.0f} packets (~{estimate / NUM_PACKETS:.1%} of link), "
              f"true {truth.get(flow, 0)}")

    # Which single flow dominates the link? (the eps-Maximum problem, Theorem 3)
    maximum = EpsilonMaximum(
        epsilon=EPSILON, universe_size=NUM_FLOWS, stream_length=NUM_PACKETS, rng=rng.spawn(4),
    )
    maximum.consume(packets)
    top = maximum.report()
    print(f"\ndominant flow (eps-Maximum): 0x{top.item:06X} at ~{top.estimated_frequency:.0f} packets "
          f"using {maximum.space_bits()} bits of state")


if __name__ == "__main__":
    main()
