#!/usr/bin/env python3
"""Quickstart: find the ℓ1-heavy hitters of a skewed stream in one pass.

This is the smallest end-to-end use of the library: generate a Zipfian stream (the
standard model for the network-traffic / iceberg-query workloads the paper motivates),
run the paper's Algorithm 1 over it in a single pass, and print the reported heavy
hitters, their estimated frequencies, and the bit-level space the algorithm used —
side by side with the classical Misra–Gries baseline.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro import (
    MisraGries,
    RandomSource,
    SimpleListHeavyHitters,
    zipfian_stream,
)
from repro.streams.truth import exact_frequencies


def main() -> None:
    # Parameters of the (eps, phi)-Heavy Hitters problem (Definition 1 of the paper).
    epsilon = 0.01   # estimates are accurate to within eps * m
    phi = 0.05       # report every item occurring in more than a phi fraction of the stream
    universe_size = 100_000
    stream_length = 200_000

    rng = RandomSource(2016)
    stream = zipfian_stream(stream_length, universe_size, skew=1.2, rng=rng)
    truth = exact_frequencies(stream)

    # --- the paper's Algorithm 1 (Theorem 1) --------------------------------------------
    algorithm = SimpleListHeavyHitters(
        epsilon=epsilon,
        phi=phi,
        universe_size=universe_size,
        stream_length=stream_length,
        rng=rng.spawn(1),
    )
    algorithm.consume(stream)
    report = algorithm.report()

    print("=== heavy hitters reported by Algorithm 1 (Theorem 1) ===")
    print(f"{'item':>8}  {'estimated':>10}  {'true':>8}  {'est. share':>10}")
    for item in report.reported_items():
        estimate = report.estimated_frequency(item)
        print(
            f"{item:>8}  {estimate:>10.0f}  {truth.get(item, 0):>8}  "
            f"{estimate / stream_length:>9.2%}"
        )
    print()
    print(f"guarantee satisfied (Definition 1): {report.satisfies_definition(truth)}")
    print(f"space used: {algorithm.space_bits()} bits "
          f"({dict(algorithm.space_breakdown())})")
    print()

    # --- the classical baseline ----------------------------------------------------------
    baseline = MisraGries(epsilon=epsilon, universe_size=universe_size,
                          stream_length_hint=stream_length)
    baseline.consume(stream)
    baseline_report = baseline.report(phi=phi)
    print("=== Misra-Gries baseline ===")
    print(f"reported items: {sorted(baseline_report.reported_items())}")
    print(f"space used: {baseline.space_bits()} bits")
    print()
    print("The asymptotic advantage of the paper's algorithm is in how these numbers")
    print("scale: its id-dependent space is phi^-1 * log(n) bits versus eps^-1 * log(n)")
    print("for Misra-Gries — sweep n and eps in benchmarks/bench_table1_heavy_hitters.py")
    print("to see the gap grow.")


if __name__ == "__main__":
    main()
