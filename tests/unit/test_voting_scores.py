"""Unit tests for repro.voting.scores and repro.voting.elections."""

import pytest

from repro.voting.elections import Election
from repro.voting.rankings import Ranking
from repro.voting.scores import (
    borda_scores,
    borda_winner,
    maximin_scores,
    maximin_winner,
    pairwise_defeats,
    plurality_scores,
    veto_scores,
)


def small_election():
    """A 3-candidate election with easily hand-checked scores."""
    return [
        Ranking([0, 1, 2]),
        Ranking([0, 2, 1]),
        Ranking([1, 0, 2]),
        Ranking([2, 1, 0]),
    ]


class TestBordaScores:
    def test_hand_checked_values(self):
        scores = borda_scores(small_election())
        # Vote by vote: candidate 0 beats 2+2+1+0 = 5, candidate 1 beats 1+0+2+1 = 4,
        # candidate 2 beats 0+1+0+2 = 3.
        assert scores == {0: 5, 1: 4, 2: 3}

    def test_total_is_m_times_pairs(self):
        votes = small_election()
        scores = borda_scores(votes)
        n = 3
        assert sum(scores.values()) == len(votes) * n * (n - 1) // 2

    def test_winner(self):
        assert borda_winner(small_election()) == 0

    def test_single_vote(self):
        scores = borda_scores([Ranking([2, 1, 0])])
        assert scores == {2: 2, 1: 1, 0: 0}

    def test_empty_election_rejected(self):
        with pytest.raises(ValueError):
            borda_scores([])

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError):
            borda_scores([Ranking([0, 1]), Ranking([0, 1, 2])])


class TestPairwiseAndMaximin:
    def test_pairwise_matrix_hand_checked(self):
        matrix = pairwise_defeats(small_election())
        # 0 beats 1 in votes 0, 1 and 3?  Votes: [0,1,2], [0,2,1], [1,0,2], [2,1,0].
        # 0 over 1: votes 0 and 1 -> 2.  1 over 0: votes 2 and 3 -> 2.
        assert matrix[0][1] == 2
        assert matrix[1][0] == 2
        # 0 over 2: votes 0, 1, 2 -> 3.
        assert matrix[0][2] == 3
        assert matrix[2][0] == 1

    def test_pairwise_complementarity(self):
        votes = small_election()
        matrix = pairwise_defeats(votes)
        n = 3
        for i in range(n):
            for j in range(n):
                if i != j:
                    assert matrix[i][j] + matrix[j][i] == len(votes)

    def test_maximin_scores_hand_checked(self):
        scores = maximin_scores(small_election())
        # Candidate 0: min(2, 3) = 2; candidate 1: min(2, 3) = 2; candidate 2: min(1, 1) = 1.
        assert scores == {0: 2, 1: 2, 2: 1}

    def test_maximin_winner_tie_breaks_to_smaller_id(self):
        assert maximin_winner(small_election()) == 0

    def test_single_candidate(self):
        scores = maximin_scores([Ranking([0]), Ranking([0])])
        assert scores == {0: 2}


class TestPluralityAndVeto:
    def test_plurality(self):
        assert plurality_scores(small_election()) == {0: 2, 1: 1, 2: 1}

    def test_veto(self):
        assert veto_scores(small_election()) == {0: 1, 1: 1, 2: 2}


class TestElection:
    def test_add_and_len(self):
        election = Election(num_candidates=3)
        election.add_vote(Ranking([0, 1, 2]))
        election.extend([Ranking([2, 1, 0])])
        assert len(election) == 2

    def test_vote_size_validation(self):
        election = Election(num_candidates=3)
        with pytest.raises(ValueError):
            election.add_vote(Ranking([0, 1]))

    def test_winners_consistent_with_scores(self):
        election = Election(num_candidates=3, votes=small_election())
        assert election.borda_winner() == 0
        assert election.plurality_winner() == 0
        assert election.veto_winner() in (0, 1)  # fewest last places: 0 and 1 tie at 1
        assert election.maximin_winner() == 0
        assert election.max_borda_score() == 5
        assert election.max_maximin_score() == 2

    def test_invalid_candidate_count(self):
        with pytest.raises(ValueError):
            Election(num_candidates=0)
