"""Unit tests for repro.primitives.accelerated (the Algorithm 2 counters)."""

import statistics

import pytest

from repro.primitives.accelerated import AcceleratedCounter, EpochAcceleratedCounter
from repro.primitives.rng import RandomSource


class TestAcceleratedCounter:
    def test_probability_one_is_exact(self):
        counter = AcceleratedCounter(1.0, rng=RandomSource(1))
        for _ in range(137):
            counter.offer()
        assert counter.estimate() == 137

    def test_estimate_is_roughly_unbiased(self):
        """Averaged over repetitions, count/p tracks the true count."""
        estimates = []
        for seed in range(40):
            counter = AcceleratedCounter(0.1, rng=RandomSource(seed))
            for _ in range(2000):
                counter.offer()
            estimates.append(counter.estimate())
        assert abs(statistics.mean(estimates) - 2000) < 200

    def test_space_grows_slower_than_count(self):
        counter = AcceleratedCounter(0.01, rng=RandomSource(2))
        for _ in range(10000):
            counter.offer()
        # Roughly 100 increments: ~7 bits, far fewer than log2(10000) * anything big.
        assert counter.space_bits() <= 10

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            AcceleratedCounter(0.0)
        with pytest.raises(ValueError):
            AcceleratedCounter(1.5)


class TestEpochAcceleratedCounter:
    def test_zero_offers_zero_estimate(self):
        counter = EpochAcceleratedCounter(epsilon=0.1, rng=RandomSource(1))
        assert counter.estimate() == 0.0
        assert counter.current_epoch() == -1

    def test_estimate_tracks_count_within_additive_error(self):
        """The end-to-end additive error stays O(1/eps) (Lemma 4's role in Algorithm 2)."""
        epsilon = 0.05
        true_count = 4000
        errors = []
        for seed in range(15):
            counter = EpochAcceleratedCounter(epsilon=epsilon, rng=RandomSource(seed))
            for _ in range(true_count):
                counter.offer()
            errors.append(abs(counter.estimate() - true_count))
        # The median error should be a small multiple of 1/eps = 20.
        assert statistics.median(errors) <= 30 / epsilon

    def test_epoch_grows_with_count(self):
        counter = EpochAcceleratedCounter(epsilon=0.05, rng=RandomSource(3))
        epochs = []
        for _ in range(5000):
            counter.offer()
            epochs.append(counter.current_epoch())
        assert epochs[-1] > epochs[0]
        assert epochs[-1] >= 1

    def test_increment_probability_caps_at_one(self):
        counter = EpochAcceleratedCounter(epsilon=0.05, rng=RandomSource(4))
        assert counter.increment_probability(-1) == 0.0
        assert counter.increment_probability(0) == pytest.approx(0.05)
        assert counter.increment_probability(10) == 1.0

    def test_space_stays_small(self):
        """Counting 10^4 arrivals uses polylogarithmically many bits (one small counter
        per epoch), far fewer than the ~14 bits/arrival an exact per-item table of
        10^4 ids would need in aggregate."""
        counter = EpochAcceleratedCounter(epsilon=0.02, rng=RandomSource(5))
        for _ in range(10000):
            counter.offer()
        assert counter.space_bits() <= 200

    def test_paper_epoch_scale_counts_little(self):
        """With the paper's 1e-6 scale and a small stream, epochs never activate."""
        counter = EpochAcceleratedCounter(epsilon=0.05, rng=RandomSource(6), epoch_scale=1e-6)
        for _ in range(2000):
            counter.offer()
        assert counter.current_epoch() == -1
        assert counter.estimate() == 0.0

    def test_running_frequency_approximation(self):
        counter = EpochAcceleratedCounter(epsilon=0.1, rng=RandomSource(7))
        for _ in range(3000):
            counter.offer()
        approx = counter.approximate_running_frequency()
        assert 3000 / 4 <= approx <= 3000 * 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EpochAcceleratedCounter(epsilon=0.0)
        with pytest.raises(ValueError):
            EpochAcceleratedCounter(epsilon=0.1, epoch_scale=0.0)
