"""Unit tests for the sharded ingestion subsystem (repro.sharding)."""

import pickle

import numpy as np
import pytest

from repro.baselines.count_min import CountMinSketch
from repro.baselines.exact import ExactCounter
from repro.baselines.misra_gries import MisraGries
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.unknown_length import UnknownLengthHeavyHitters
from repro.primitives.morris import MorrisCounter
from repro.primitives.rng import RandomSource
from repro.sharding import (
    Mergeable,
    ShardRouter,
    ShardedExecutor,
    merge_all,
    share_hash_functions,
)
from repro.streams.generators import planted_heavy_hitters_stream, zipfian_stream
from repro.streams.truth import exact_frequencies


class TestShardRouter:
    def test_partition_is_a_per_shard_order_preserving_split(self):
        stream = zipfian_stream(5000, 512, skew=1.3, rng=RandomSource(1))
        router = ShardRouter(4, 512, rng=RandomSource(2))
        parts = router.partition(stream.array)
        assert len(parts) == 4
        assert sum(part.size for part in parts) == len(stream)
        for shard, part in enumerate(parts):
            # Every item of shard j hashes to j...
            assert all(router.shard_of(int(item)) == shard for item in part)
            # ...and the shard sees exactly the sub-stream it would have seen with
            # per-item routing: the original sequence filtered to its items, in order.
            expected = [item for item in stream if router.shard_of(item) == shard]
            assert part.tolist() == expected

    def test_single_shard_is_passthrough(self):
        router = ShardRouter(1, 64, rng=RandomSource(3))
        array = np.arange(10, dtype=np.int64)
        parts = router.partition(array)
        assert len(parts) == 1
        assert (parts[0] == array).all()

    def test_empty_chunk_yields_empty_shards(self):
        router = ShardRouter(3, 64, rng=RandomSource(4))
        parts = router.partition(np.empty(0, dtype=np.int64))
        assert len(parts) == 3
        assert all(part.size == 0 for part in parts)

    def test_out_of_universe_items_rejected(self):
        router = ShardRouter(2, 8, rng=RandomSource(5))
        with pytest.raises(ValueError):
            router.partition(np.asarray([3, 9], dtype=np.int64))
        with pytest.raises(ValueError):
            router.shard_of(-1)

    def test_route_feeds_sinks_and_counts(self):
        stream = zipfian_stream(3000, 128, skew=1.2, rng=RandomSource(6))
        router = ShardRouter(3, 128, rng=RandomSource(7))
        sinks = [ExactCounter(128) for _ in range(3)]
        delivered = router.route(stream, sinks, batch_size=700)
        assert sum(delivered) == len(stream)
        combined = merge_all(sinks)
        assert combined.frequencies() == exact_frequencies(stream)

    def test_shard_sizes_match_partition(self):
        stream = zipfian_stream(2000, 256, skew=1.1, rng=RandomSource(8))
        router = ShardRouter(4, 256, rng=RandomSource(9))
        sizes = router.shard_sizes(stream.array)
        assert sizes == [part.size for part in router.partition(stream.array)]


class TestMergeableHelpers:
    def test_sketches_satisfy_protocol(self):
        assert isinstance(MisraGries(0.1, 64), Mergeable)
        assert isinstance(ExactCounter(64), Mergeable)

    def test_share_hash_functions_aligns_count_min(self):
        shards = [CountMinSketch(0.1, 0.2, 64, rng=RandomSource(seed)) for seed in (1, 2)]
        assert shards[0].hash_functions != shards[1].hash_functions
        share_hash_functions(shards)
        assert shards[0].hash_functions == shards[1].hash_functions

    def test_share_hash_functions_rejects_mixed_types(self):
        with pytest.raises(TypeError):
            share_hash_functions([MisraGries(0.1, 64), ExactCounter(64)])

    def test_merge_all_requires_nonempty_group(self):
        with pytest.raises(ValueError):
            merge_all([])

    def test_merge_all_rejects_unmergeable(self):
        with pytest.raises(TypeError):
            merge_all([object(), object()])


class TestShardedExecutor:
    def _stream(self):
        return planted_heavy_hitters_stream(
            30_000, 1024, {5: 0.25, 9: 0.12}, rng=RandomSource(11)
        )

    def test_serial_run_matches_guarantee_and_counts(self):
        stream = self._stream()
        truth = exact_frequencies(stream)
        rng = RandomSource(12)
        executor = ShardedExecutor(
            factory=lambda shard: OptimalListHeavyHitters(
                epsilon=0.02, phi=0.08, universe_size=stream.universe_size,
                stream_length=len(stream), rng=rng.spawn(shard),
            ),
            num_shards=4,
            universe_size=stream.universe_size,
            rng=rng,
        )
        result = executor.run(stream, batch_size=4096)
        assert result.items_processed == len(stream)
        assert result.num_shards == 4
        assert not result.parallel
        assert result.report.satisfies_definition(truth)
        assert {5, 9} <= set(result.report.items)

    def test_parallel_run_matches_guarantee(self):
        stream = self._stream()
        truth = exact_frequencies(stream)
        rng = RandomSource(13)
        executor = ShardedExecutor(
            factory=lambda shard: OptimalListHeavyHitters(
                epsilon=0.02, phi=0.08, universe_size=stream.universe_size,
                stream_length=len(stream), rng=rng.spawn(shard),
            ),
            num_shards=2,
            universe_size=stream.universe_size,
            rng=rng,
        )
        result = executor.run(stream, parallel=True)
        assert result.parallel
        assert result.items_processed == len(stream)
        assert result.report.satisfies_definition(truth)

    def test_combined_space_meter_has_router_and_per_shard_components(self):
        stream = self._stream()
        rng = RandomSource(14)
        executor = ShardedExecutor(
            factory=lambda shard: MisraGries(0.02, stream.universe_size),
            num_shards=3,
            universe_size=stream.universe_size,
            rng=rng,
        )
        result = executor.run(stream, report_kwargs={"phi": 0.08})
        breakdown = result.space.breakdown()
        assert breakdown["router"] > 0
        for shard in range(3):
            assert any(name.startswith(f"shard{shard}/") for name in breakdown)
        assert result.space_bits() == sum(breakdown.values())
        # k sharded Misra-Gries tables cost ~k times one table, plus the router.
        single = MisraGries(0.02, stream.universe_size)
        single.insert_many(stream.array)
        assert result.space_bits() > single.space_bits()

    def test_non_mergeable_sketch_rejected_before_ingestion(self):
        from repro.baselines.sticky_sampling import StickySampling

        with pytest.raises(TypeError):
            ShardedExecutor(
                factory=lambda shard: StickySampling(
                    0.02, 0.08, 0.1, 1024, rng=RandomSource(shard)
                ),
                num_shards=2,
                universe_size=1024,
                rng=RandomSource(30),
            )

    def test_executor_is_single_shot(self):
        stream = self._stream()
        executor = ShardedExecutor(
            factory=lambda shard: ExactCounter(stream.universe_size),
            num_shards=2,
            universe_size=stream.universe_size,
            rng=RandomSource(15),
        )
        executor.run(stream, report_kwargs={"phi": 0.08})
        with pytest.raises(RuntimeError):
            executor.run(stream)

    def test_run_chunks_streams_without_materializing(self):
        stream = self._stream()
        executor = ShardedExecutor(
            factory=lambda shard: ExactCounter(stream.universe_size),
            num_shards=2,
            universe_size=stream.universe_size,
            rng=RandomSource(16),
        )
        chunks = (stream.array[start:start + 7000] for start in range(0, len(stream), 7000))
        result = executor.run_chunks(chunks, report_kwargs={"phi": 0.08})
        assert result.sketch.frequencies() == exact_frequencies(stream)

    def test_exact_sharded_run_is_lossless(self):
        stream = self._stream()
        executor = ShardedExecutor(
            factory=lambda shard: ExactCounter(stream.universe_size),
            num_shards=5,
            universe_size=stream.universe_size,
            rng=RandomSource(17),
        )
        result = executor.run(stream, report_kwargs={"phi": 0.08})
        assert result.sketch.frequencies() == exact_frequencies(stream)


class TestPicklingForParallelShards:
    def test_random_source_pickles_as_fresh_seed(self):
        source = RandomSource(42)
        source.random()  # initialize the generator
        blob = pickle.dumps(source)
        assert len(blob) < 200  # a seed, not a Mersenne state
        clone = pickle.loads(blob)
        assert isinstance(clone.random(), float)

    def test_derived_seed_is_reproducible_across_processes(self):
        # Regression: hashing the full Random.getstate() tuple would hash None
        # (gauss_next), which is ASLR-variant per process on CPython < 3.12.
        import os
        import subprocess
        import sys

        import repro

        source_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        environment = dict(os.environ, PYTHONPATH=source_root)
        code = (
            "import pickle\n"
            "from repro.primitives.rng import RandomSource\n"
            "s = RandomSource(42); s.random()\n"
            "print(pickle.loads(pickle.dumps(s)).seed)\n"
        )
        runs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True, env=environment,
            ).stdout
            for _ in range(2)
        }
        assert len(runs) == 1

    def test_pickling_does_not_perturb_the_source(self):
        # Serialization is a pure read: same bytes twice, and the original's future
        # draws are identical to a never-pickled twin's.
        source, twin = RandomSource(42), RandomSource(42)
        source.random(), twin.random()
        first = pickle.dumps(source)
        second = pickle.dumps(source)
        assert first == second
        assert [source.random() for _ in range(5)] == [twin.random() for _ in range(5)]

    def test_optimal_sketch_pickle_round_trip_preserves_report_and_space(self):
        stream = zipfian_stream(50_000, 4096, skew=1.2, rng=RandomSource(18))
        algo = OptimalListHeavyHitters(
            epsilon=0.02, phi=0.06, universe_size=stream.universe_size,
            stream_length=len(stream), rng=RandomSource(19),
        )
        algo.insert_many(stream.array)
        clone = pickle.loads(pickle.dumps(algo))
        assert clone.report().items == algo.report().items
        assert clone.space_bits() == algo.space_bits()
        assert clone.sample_size == algo.sample_size
        # The clone keeps working: it can ingest more and still report.
        clone.insert_many(stream.array[:1000])
        assert clone.items_processed == algo.items_processed + 1000

    def test_merge_after_round_trip(self):
        stream = zipfian_stream(20_000, 1024, skew=1.3, rng=RandomSource(20))
        rng = RandomSource(21)
        shards = [
            OptimalListHeavyHitters(
                epsilon=0.03, phi=0.09, universe_size=stream.universe_size,
                stream_length=len(stream), rng=rng.spawn(shard),
            )
            for shard in range(2)
        ]
        share_hash_functions(shards)
        half = len(stream) // 2
        shards[0].insert_many(stream.array[:half])
        shards[1].insert_many(stream.array[half:])
        shards = [pickle.loads(pickle.dumps(sketch)) for sketch in shards]
        merged = merge_all(shards)
        assert merged.items_processed == len(stream)


class TestUnknownLengthBatching:
    def test_exact_count_restart_schedule_is_identical(self):
        stream = zipfian_stream(40_000, 2048, skew=1.2, rng=RandomSource(22))
        per_item = UnknownLengthHeavyHitters(
            epsilon=0.05, phi=0.1, universe_size=2048,
            rng=RandomSource(23), use_morris_counter=False,
        )
        per_item.consume(stream)
        batched = UnknownLengthHeavyHitters(
            epsilon=0.05, phi=0.1, universe_size=2048,
            rng=RandomSource(23), use_morris_counter=False,
        )
        batched.consume(stream, batch_size=3333)
        assert batched.restarts == per_item.restarts
        assert [h for h, _ in batched.instances] == [h for h, _ in per_item.instances]
        assert batched.items_processed == per_item.items_processed == len(stream)

    def test_morris_batched_wrapper_reports_heavy_hitters(self):
        stream = planted_heavy_hitters_stream(
            50_000, 1024, {3: 0.3, 7: 0.15}, rng=RandomSource(24)
        )
        wrapper = UnknownLengthHeavyHitters(
            epsilon=0.05, phi=0.1, universe_size=1024, rng=RandomSource(25)
        )
        wrapper.consume(stream, batch_size=4096)
        assert wrapper.items_processed == len(stream)
        report = wrapper.report()
        assert report.stream_length == len(stream)
        assert {3, 7} <= set(report.items)

    def test_ragged_and_tiny_batches_cover_whole_stream(self):
        stream = zipfian_stream(5000, 256, skew=1.1, rng=RandomSource(26))
        wrapper = UnknownLengthHeavyHitters(
            epsilon=0.1, phi=0.2, universe_size=256, rng=RandomSource(27)
        )
        position = 0
        for size in (1, 997, 3, 4000, 5000):
            chunk = stream.array[position:position + size]
            if chunk.size:
                wrapper.insert_many(chunk)
                position += int(chunk.size)
        wrapper.insert_many(stream.array[position:])
        assert wrapper.items_processed == len(stream)


class TestMorrisAdvanceUntilChange:
    def test_consumes_exactly_the_reported_steps(self):
        morris = MorrisCounter(rng=RandomSource(28), repetitions=3)
        total = 0
        while total < 10_000:
            steps, changed = morris.advance_until_change(10_000 - total)
            assert steps >= 1 or not changed
            total += steps
            if not changed:
                break
        assert morris.true_count == total

    def test_zero_budget_is_a_no_op(self):
        morris = MorrisCounter(rng=RandomSource(29))
        assert morris.advance_until_change(0) == (0, False)
        assert morris.true_count == 0

    def test_estimate_tracks_count_within_constant_factor(self):
        morris = MorrisCounter(rng=RandomSource(30), repetitions=7)
        remaining = 100_000
        while remaining > 0:
            steps, _changed = morris.advance_until_change(remaining)
            if steps == 0:
                break
            remaining -= steps
        assert morris.true_count == 100_000
        assert 0.2 * 100_000 <= morris.estimate() <= 5.0 * 100_000
