"""Unit tests for repro.analysis.tail (Berinde-style residual guarantees)."""

import pytest

from repro.analysis.tail import (
    achieved_tail_error,
    counter_summary_residual_bound,
    guarantee_comparison,
    head_tail_split,
    residual_mass,
    tail_error_bound,
    top_k_mass,
)
from repro.baselines.misra_gries import MisraGries
from repro.primitives.rng import RandomSource
from repro.streams.generators import zipfian_stream
from repro.streams.truth import exact_frequencies


FREQ = {1: 100, 2: 50, 3: 25, 4: 10, 5: 5}


class TestResidualMass:
    def test_basic_values(self):
        assert residual_mass(FREQ, 0) == 190
        assert residual_mass(FREQ, 1) == 90
        assert residual_mass(FREQ, 2) == 40
        assert residual_mass(FREQ, 5) == 0
        assert residual_mass(FREQ, 10) == 0

    def test_top_k_complements_residual(self):
        for k in range(6):
            assert top_k_mass(FREQ, k) + residual_mass(FREQ, k) == 190

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            residual_mass(FREQ, -1)

    def test_head_tail_split(self):
        head, tail = head_tail_split(FREQ, 2)
        assert head == {1: 100, 2: 50}
        assert tail == {3: 25, 4: 10, 5: 5}


class TestBounds:
    def test_tail_error_bound(self):
        assert tail_error_bound(FREQ, 2, 0.1) == pytest.approx(0.1 / 2 * 40)

    def test_tail_bound_validation(self):
        with pytest.raises(ValueError):
            tail_error_bound(FREQ, 0, 0.1)
        with pytest.raises(ValueError):
            tail_error_bound(FREQ, 1, 0.0)

    def test_achieved_tail_error(self):
        estimates = {1: 95.0, 2: 52.0}
        assert achieved_tail_error(estimates, FREQ) == pytest.approx(5.0)
        assert achieved_tail_error({}, FREQ) == 0.0

    def test_counter_summary_residual_bound(self):
        # capacity 11, k = 1: error <= F_res(1) / (11 - 1)
        assert counter_summary_residual_bound(FREQ, 11, 1) == pytest.approx(90 / 10)
        with pytest.raises(ValueError):
            counter_summary_residual_bound(FREQ, 5, 5)

    def test_guarantee_comparison_skewed_vs_flat(self):
        """On a skewed table the tail budget is far below the classical eps*m budget."""
        skewed = {1: 900, 2: 50, 3: 30, 4: 20}
        flat = {i: 100 for i in range(10)}
        skewed_cmp = guarantee_comparison(skewed, stream_length=1000, epsilon=0.1, k=1)
        flat_cmp = guarantee_comparison(flat, stream_length=1000, epsilon=0.1, k=1)
        assert skewed_cmp["tail_over_classical"] < flat_cmp["tail_over_classical"]
        assert skewed_cmp["classical_budget"] == pytest.approx(100.0)


class TestAgainstRealSummaries:
    def test_misra_gries_respects_residual_bound(self):
        """The [BICS10]-style refinement: MG error is bounded by F_res(k)/(capacity-k+1)."""
        stream = zipfian_stream(20000, 500, skew=1.5, rng=RandomSource(1))
        truth = exact_frequencies(stream)
        algo = MisraGries(epsilon=0.02, universe_size=500)
        algo.consume(stream)
        capacity = algo.table.num_counters
        for k in (0, 1, 5):
            bound = counter_summary_residual_bound(truth, capacity, k)
            for item, count in truth.items():
                assert count - algo.estimate(item) <= bound + 1e-9

    def test_residual_bound_tighter_than_classical_on_skewed_stream(self):
        stream = zipfian_stream(20000, 500, skew=1.5, rng=RandomSource(2))
        truth = exact_frequencies(stream)
        capacity = 51
        classical = len(stream) / capacity
        residual = counter_summary_residual_bound(truth, capacity, 5)
        assert residual < classical
