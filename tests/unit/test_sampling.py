"""Unit tests for repro.primitives.sampling."""

import math

import pytest

from repro.primitives.rng import RandomSource
from repro.primitives.sampling import (
    BernoulliSampler,
    CoinFlipSampler,
    FixedSizeSampler,
    ReservoirSampler,
    recommended_sample_size,
    round_down_to_power_of_two_probability,
)


class TestPowerOfTwoRounding:
    def test_exact_powers_preserved(self):
        assert round_down_to_power_of_two_probability(0.5) == 0.5
        assert round_down_to_power_of_two_probability(0.25) == 0.25
        assert round_down_to_power_of_two_probability(1.0) == 1.0

    def test_rounds_down(self):
        assert round_down_to_power_of_two_probability(0.3) == 0.25
        assert round_down_to_power_of_two_probability(0.6) == 0.5
        assert round_down_to_power_of_two_probability(0.001) == 1 / 1024

    def test_above_one_clamped(self):
        assert round_down_to_power_of_two_probability(2.0) == 1.0

    def test_non_positive_raises(self):
        with pytest.raises(ValueError):
            round_down_to_power_of_two_probability(0.0)


class TestCoinFlipSampler:
    def test_probability_one_always_selects(self):
        sampler = CoinFlipSampler(1.0, rng=RandomSource(1))
        assert all(sampler.decide() for _ in range(50))

    def test_rate_roughly_matches(self):
        sampler = CoinFlipSampler(1 / 8, rng=RandomSource(2))
        hits = sum(sampler.decide() for _ in range(40000))
        assert 0.09 < hits / 40000 < 0.16

    def test_space_is_loglog(self):
        """Lemma 1: choosing with probability 1/m uses O(log log m) bits."""
        small = CoinFlipSampler(1 / 2**4, rng=RandomSource(3))
        large = CoinFlipSampler(1 / 2**40, rng=RandomSource(3))
        assert small.space_bits() <= large.space_bits()
        # For p = 2^-40 the state is the number 40, i.e. 6 bits.
        assert large.space_bits() <= 8

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            CoinFlipSampler(0.0)
        with pytest.raises(ValueError):
            CoinFlipSampler(1.5)


class TestBernoulliSampler:
    def test_offer_counts_stream_length(self):
        sampler = BernoulliSampler(0.5, rng=RandomSource(4))
        sampler.extend(range(100))
        assert sampler.stream_length == 100
        assert sampler.sample_size == len(sampler.items)

    def test_sample_size_concentrates(self):
        sampler = BernoulliSampler(0.25, rng=RandomSource(5))
        sampler.extend(range(20000))
        assert 0.2 * 20000 < sampler.sample_size < 0.3 * 20000

    def test_keep_items_false_stores_nothing(self):
        sampler = BernoulliSampler(0.5, rng=RandomSource(6), keep_items=False)
        sampler.extend(range(1000))
        assert sampler.items == []
        assert sampler.sample_size > 0

    def test_lemma3_frequency_preservation(self):
        """Lemma 3: a Theta(eps^-2) sample preserves relative frequencies to +-eps."""
        rng = RandomSource(7)
        epsilon = 0.05
        stream = [0] * 5000 + [1] * 3000 + [2] * 2000
        stream = rng.shuffle(stream)
        rate = recommended_sample_size(epsilon, 0.05) / len(stream)
        sampler = BernoulliSampler(min(1.0, rate), rng=rng)
        sampler.extend(stream)
        sample = sampler.items
        for item, true_fraction in ((0, 0.5), (1, 0.3), (2, 0.2)):
            sampled_fraction = sample.count(item) / max(1, len(sample))
            assert abs(sampled_fraction - true_fraction) <= 2 * epsilon

    def test_expected_sample_size(self):
        sampler = BernoulliSampler(0.125, rng=RandomSource(8))
        assert sampler.expected_sample_size(800) == pytest.approx(100.0)


class TestReservoirSampler:
    def test_capacity_respected(self):
        sampler = ReservoirSampler(10, rng=RandomSource(9))
        sampler.extend(range(1000))
        assert len(sampler.reservoir) == 10

    def test_short_stream_fully_kept(self):
        sampler = ReservoirSampler(10, rng=RandomSource(9))
        sampler.extend(range(5))
        assert sorted(sampler.reservoir) == [0, 1, 2, 3, 4]

    def test_uniformity_rough(self):
        """Each item should land in the reservoir with probability k/n, roughly."""
        hits = [0] * 20
        for seed in range(300):
            sampler = ReservoirSampler(5, rng=RandomSource(seed))
            sampler.extend(range(20))
            for value in sampler.reservoir:
                hits[value] += 1
        expected = 300 * 5 / 20
        assert all(0.4 * expected < h < 1.8 * expected for h in hits)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)


class TestFixedSizeSampler:
    def test_sample_size_near_target(self):
        sampler = FixedSizeSampler(target_size=100, stream_length=10000, rng=RandomSource(10))
        for item in range(10000):
            sampler.offer(item)
        # The 6x oversampled rate is rounded down to a power-of-two reciprocal
        # (1/32 here), so roughly 312 items are expected.
        assert 200 <= sampler.sample_size <= 1000

    def test_short_stream_samples_everything(self):
        sampler = FixedSizeSampler(target_size=100, stream_length=50, rng=RandomSource(11))
        for item in range(50):
            sampler.offer(item)
        assert sampler.sample_size == 50

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FixedSizeSampler(0, 100)
        with pytest.raises(ValueError):
            FixedSizeSampler(10, 0)


class TestRecommendedSampleSize:
    def test_matches_formula(self):
        assert recommended_sample_size(0.1, 0.1) == math.ceil(6 * math.log(60) / 0.01)

    def test_decreasing_in_epsilon(self):
        assert recommended_sample_size(0.01, 0.1) > recommended_sample_size(0.1, 0.1)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            recommended_sample_size(0.0, 0.1)
        with pytest.raises(ValueError):
            recommended_sample_size(0.1, 1.5)
