"""Robustness tests for the service layer: timeouts, retries, resume, durability."""

import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.pipeline import PipelinedExecutor
from repro.primitives.rng import RandomSource
from repro.replication import FaultPlan, corrupt_file
from repro.service import (
    NO_RETRY,
    CheckpointError,
    Checkpointer,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
)

UNIVERSE = 500
LENGTH = 20_000
CHUNK = 1024

FAST_RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.05, jitter=0.0)


def make_sketch(seed=1):
    return SimpleListHeavyHitters(
        epsilon=0.02, phi=0.1, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(seed),
    )


def make_items(length=LENGTH, seed=3):
    rng = RandomSource(seed).numpy_generator()
    heavy = np.full(length // 2, 7, dtype=np.int64)
    rest = rng.integers(0, UNIVERSE, size=length - len(heavy))
    items = np.concatenate([heavy, rest])
    rng.shuffle(items)
    return items.astype(np.int64)


@pytest.fixture
def start_server(service_server):
    """Module-standard server boot, on the shared conftest boot-factory.

    TCP because every test here exercises retry/fault behaviour over INET
    sockets; the factory's teardown closes whatever a test leaves running
    (close is idempotent, so tests that stop servers themselves are fine).
    """
    def boot(**kwargs):
        return service_server(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK),
            tcp=True,
            universe_size=UNIVERSE,
            **kwargs,
        )
    return boot


@pytest.fixture
def mute_server():
    """A listener that accepts and reads but never replies — a hung server."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    accepted = []
    stop = threading.Event()

    def accept_loop():
        listener.settimeout(0.1)
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(0.1)
            accepted.append(conn)

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    yield f"127.0.0.1:{listener.getsockname()[1]}"
    stop.set()
    thread.join(timeout=2.0)
    for conn in accepted:
        conn.close()
    listener.close()


class TestRetryPolicy:
    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(4) == pytest.approx(0.5)  # capped

    def test_jitter_stretches_within_bounds(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        for retry in range(20):
            assert 0.1 <= policy.delay(0) <= 0.15

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.attempts == 1


class TestServiceTimeout:
    def test_flush_deadline_expiry_raises_typed_timeout(self, mute_server, monkeypatch):
        monkeypatch.setattr("repro.service.client.REPLY_TIMEOUT_MARGIN", 0.05)
        with ServiceClient(mute_server, timeout=5.0, retry=NO_RETRY) as client:
            with pytest.raises(ServiceTimeout):
                client.flush(timeout=0.05)
            # The socket is closed: a late reply must not desynchronize frames.
            assert client._sock is None

    def test_command_deadline_overrides_blocking_constructor_default(
        self, mute_server, monkeypatch
    ):
        monkeypatch.setattr("repro.service.client.REPLY_TIMEOUT_MARGIN", 0.05)
        # timeout=None blocks forever by default; finish's own deadline must win.
        with ServiceClient(mute_server, timeout=None, retry=NO_RETRY) as client:
            start = time.monotonic()
            with pytest.raises(ServiceTimeout):
                client.finish(timeout=0.05)
            assert time.monotonic() - start < 2.0

    def test_timeout_on_idempotent_command_is_not_retried(self, mute_server):
        client = ServiceClient(mute_server, timeout=0.2,
                               retry=RetryPolicy(attempts=3, base_delay=5.0))
        client.connect()
        start = time.monotonic()
        with pytest.raises(ServiceTimeout):
            client.query()
        # A retried timeout would sleep the 5s backoff at least once.
        assert time.monotonic() - start < 2.0
        client.close()

    def test_timeout_is_not_an_os_error(self):
        assert issubclass(ServiceTimeout, ServiceError)
        assert not issubclass(ServiceTimeout, OSError)


class TestConnectRetry:
    def test_connect_retries_until_listener_appears(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # free the port; nothing listens until the thread binds

        listener_ready = threading.Event()

        def late_listener():
            time.sleep(0.15)
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(("127.0.0.1", port))
            listener.listen(1)
            listener_ready.set()
            try:
                conn, _ = listener.accept()
                conn.close()
            finally:
                listener.close()

        thread = threading.Thread(target=late_listener, daemon=True)
        thread.start()
        client = ServiceClient(
            f"127.0.0.1:{port}",
            retry=RetryPolicy(attempts=20, base_delay=0.02, max_delay=0.1, jitter=0.0),
        )
        client.connect()  # would raise without the retry loop
        assert listener_ready.is_set()
        client.close()
        thread.join(timeout=2.0)

    def test_no_retry_fails_fast(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(f"127.0.0.1:{port}", retry=NO_RETRY)
        with pytest.raises((ConnectionError, OSError)):
            client.connect()


class TestPushStreamResume:
    def test_dropped_connection_resumes_without_loss_or_doubling(self, start_server):
        items = make_items()
        batches = [items[start:start + 500] for start in range(0, len(items), 500)]
        server = start_server()
        try:
            plan = FaultPlan.drop_connection(after_frame=5)
            with ServiceClient(server.endpoint, retry=FAST_RETRY,
                               fault_plan=plan) as client:
                received = client.push_stream(batches, window=4)
                assert received == len(items)
                assert plan.pending() == []  # the drop really fired
                client.finish()
                served = client.query()
        finally:
            server.close()

        offline = PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK)
        for start in range(0, len(items), CHUNK):  # the server's re-chunk boundaries
            offline.ingest_chunk(items[start:start + CHUNK])
        report = offline.finalize().report
        assert dict(served.report.items) == dict(report.items)

    def test_resume_disabled_raises_on_drop(self, start_server):
        items = make_items(4000)
        batches = [items[start:start + 200] for start in range(0, len(items), 200)]
        server = start_server()
        try:
            with ServiceClient(server.endpoint, retry=NO_RETRY,
                               fault_plan=FaultPlan.drop_connection(5)) as client:
                with pytest.raises((ConnectionError, OSError)):
                    client.push_stream(batches, window=4)
        finally:
            server.close()

    def test_repeated_drops_exhaust_recovery_attempts(self, start_server):
        items = make_items(8000)
        batches = [items[start:start + 200] for start in range(0, len(items), 200)]
        plan = FaultPlan([
            FaultPlan.drop_connection(3).specs[0],
            FaultPlan.drop_connection(8).specs[0],
            FaultPlan.drop_connection(13).specs[0],
        ])
        server = start_server()
        try:
            client = ServiceClient(server.endpoint, fault_plan=plan,
                                   retry=RetryPolicy(attempts=3, base_delay=0.01,
                                                     jitter=0.0))
            with client:
                with pytest.raises((ConnectionError, OSError)):
                    client.push_stream(batches, window=4)
        finally:
            server.close()


class TestConnectionStorm:
    def test_storm_leaks_no_fds_and_loses_no_acked_batches(self, start_server):
        server = start_server()
        errors = []
        acked = [0] * 8
        queries_done = threading.Event()

        def pusher(index):
            try:
                items = make_items(1000, seed=50 + index)
                for start in range(0, len(items), 250):
                    with ServiceClient(server.endpoint, retry=FAST_RETRY) as client:
                        client.push(items[start:start + 250])
                        acked[index] += 250
                # One extra connect/disconnect with no traffic at all.
                with ServiceClient(server.endpoint, retry=FAST_RETRY):
                    pass
            except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
                errors.append(exc)

        def querier():
            try:
                with ServiceClient(server.endpoint, retry=FAST_RETRY) as client:
                    while not queries_done.is_set():
                        client.stats()
                        time.sleep(0.005)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        fd_dir = "/proc/self/fd"
        before = len(os.listdir(fd_dir))
        threads = [threading.Thread(target=pusher, args=(i,)) for i in range(8)]
        query_thread = threading.Thread(target=querier)
        query_thread.start()
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
                assert not thread.is_alive(), "pusher deadlocked"
        finally:
            queries_done.set()
            query_thread.join(timeout=10.0)
        assert not query_thread.is_alive(), "querier deadlocked"
        assert errors == []

        try:
            with ServiceClient(server.endpoint) as client:
                assert client.config()["items_received"] == sum(acked)
                client.finish()
                result = client.query()
                assert result.final
                assert result.items_processed == sum(acked)
            # Handler threads close their sockets on EOF; give them a moment.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if len(os.listdir(fd_dir)) <= before + 4:
                    break
                time.sleep(0.05)
            assert len(os.listdir(fd_dir)) <= before + 4, "file descriptors leaked"
        finally:
            server.close()


class TestGracefulStop:
    def test_graceful_stop_drains_checkpoints_and_closes(self, start_server, tmp_path):
        items = make_items(8000)
        path = str(tmp_path / "final.ckpt")
        server = start_server()
        try:
            with ServiceClient(server.endpoint) as client:
                client.push(items)
                manifest = server.graceful_stop(checkpoint_path=path)
        finally:
            server.close()
        assert manifest is not None and os.path.exists(path)
        state, loaded = Checkpointer().load(path)
        # Drained to the last complete chunk boundary before capturing.
        assert state.items_processed == len(items) - len(items) % CHUNK
        assert loaded["config"]["replicas"] == 1
        restored, _ = Checkpointer().restore_pipeline(path, chunk_size=CHUNK)
        assert restored.items_processed == state.items_processed

    def test_graceful_stop_without_checkpoint_path_just_closes(self, start_server):
        server = start_server()
        assert server.graceful_stop() is None
        with pytest.raises((ConnectionError, OSError)):
            ServiceClient(server.endpoint, retry=NO_RETRY).connect()

    def test_draining_server_rejects_new_pushes(self, start_server):
        server = start_server()
        try:
            with ServiceClient(server.endpoint) as client:
                client.push(make_items(2000))
                server._draining = True  # what graceful_stop sets before waiting
                with pytest.raises(ServiceError, match="draining"):
                    client.push(make_items(100))
        finally:
            server.close()


class TestCheckpointDurability:
    def test_save_fsyncs_data_file_and_parent_directory(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd),
                                                     real_fsync(fd))[1])
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK)
        executor.ingest_chunk(make_items(2048))
        path = str(tmp_path / "state.ckpt")
        Checkpointer().save(path, executor.sink_state())
        # One fsync for the temp data file, one for the directory rename.
        assert len(synced) >= 2

    def test_truncated_checkpoint_rejected_cleanly(self, tmp_path):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK)
        executor.ingest_chunk(make_items(2048))
        path = str(tmp_path / "state.ckpt")
        Checkpointer().save(path, executor.sink_state())
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:  # a crash mid-write leaves a prefix
            handle.truncate(size // 2)
        with pytest.raises(CheckpointError):
            Checkpointer().load(path)

    def test_byte_flipped_checkpoint_rejected_cleanly(self, tmp_path):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK)
        executor.ingest_chunk(make_items(2048))
        path = str(tmp_path / "state.ckpt")
        Checkpointer().save(path, executor.sink_state())
        corrupt_file(path)
        with pytest.raises(CheckpointError):
            Checkpointer().load(path)

    def test_every_byte_flip_is_rejected(self, tmp_path):
        # A flip deep inside an array buffer still parses as valid pickle —
        # only the envelope's SHA-256 digest catches it. Sweep the whole file.
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK)
        executor.ingest_chunk(make_items(2048))
        path = str(tmp_path / "state.ckpt")
        Checkpointer().save(path, executor.sink_state())
        original = open(path, "rb").read()
        step = max(1, len(original) // 64)  # 64 evenly-spread sample offsets
        for offset in range(0, len(original), step):
            corrupt_file(path, offset=offset)
            with pytest.raises(CheckpointError):
                Checkpointer().load(path)
            with open(path, "wb") as handle:
                handle.write(original)

    def test_save_failure_leaves_no_temp_litter(self, tmp_path, monkeypatch):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK)
        executor.ingest_chunk(make_items(2048))
        path = str(tmp_path / "state.ckpt")

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            Checkpointer().save(path, executor.sink_state())
        monkeypatch.undo()
        assert os.listdir(tmp_path) == []
