"""Unit tests for repro.primitives.rng."""

import pytest

from repro.primitives.rng import RandomSource


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RandomSource(123)
        b = RandomSource(123)
        assert [a.randint(0, 1000) for _ in range(20)] == [
            b.randint(0, 1000) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_seed_property(self):
        assert RandomSource(77).seed == 77
        assert RandomSource().seed is None

    def test_spawn_is_deterministic(self):
        parent_a = RandomSource(5)
        parent_b = RandomSource(5)
        child_a = parent_a.spawn(3)
        child_b = parent_b.spawn(3)
        assert [child_a.randint(0, 10**6) for _ in range(10)] == [
            child_b.randint(0, 10**6) for _ in range(10)
        ]

    def test_spawned_children_are_independent_streams(self):
        parent = RandomSource(5)
        child_one = parent.spawn(1)
        child_two = parent.spawn(2)
        assert [child_one.randint(0, 10**9) for _ in range(5)] != [
            child_two.randint(0, 10**9) for _ in range(5)
        ]


class TestDraws:
    def test_random_in_unit_interval(self):
        rng = RandomSource(0)
        for _ in range(100):
            value = rng.random()
            assert 0.0 <= value < 1.0

    def test_bernoulli_extremes(self):
        rng = RandomSource(0)
        assert rng.bernoulli(1.0) is True
        assert rng.bernoulli(0.0) is False
        assert rng.bernoulli(-0.5) is False
        assert rng.bernoulli(1.5) is True

    def test_bernoulli_rate_roughly_matches(self):
        rng = RandomSource(42)
        hits = sum(rng.bernoulli(0.3) for _ in range(20000))
        assert 0.25 < hits / 20000 < 0.35

    def test_random_bits_range(self):
        rng = RandomSource(9)
        for _ in range(100):
            assert 0 <= rng.random_bits(8) < 256
        assert rng.random_bits(0) == 0

    def test_randint_bounds(self):
        rng = RandomSource(9)
        values = [rng.randint(3, 7) for _ in range(200)]
        assert min(values) >= 3
        assert max(values) <= 7
        assert set(values) == {3, 4, 5, 6, 7}

    def test_choice_and_choice_index(self):
        rng = RandomSource(1)
        items = ["a", "b", "c"]
        assert rng.choice(items) in items
        assert 0 <= rng.choice_index(3) < 3

    def test_choice_index_empty_raises(self):
        with pytest.raises(ValueError):
            RandomSource(1).choice_index(0)

    def test_sample_distinct(self):
        rng = RandomSource(3)
        sample = rng.sample(range(100), 10)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_shuffle_is_permutation(self):
        rng = RandomSource(3)
        shuffled = rng.shuffle(range(50))
        assert sorted(shuffled) == list(range(50))

    def test_permutation(self):
        rng = RandomSource(3)
        perm = rng.permutation(10)
        assert sorted(perm) == list(range(10))
