"""Tests for the ``repro lint`` static-analysis framework.

Each rule gets three fixture cases — caught (a violation the rule must flag),
clean (the disciplined idiom it must not flag), and suppressed (the violation
under a reasoned pragma) — plus engine-level tests for pragma parsing, output
formats, the exit-code contract, and the meta-test that the shipped tree is
lint-clean under every rule.
"""

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    LINT_SCHEMA_VERSION,
    all_rules,
    render_json,
    render_text,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def write(root, rel, text):
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return path


def lint(root, *rule_ids):
    return run_lint([root], all_rules(), rule_ids=rule_ids or None)


def rules_hit(result):
    return {finding.rule for finding in result.findings}


class TestPragmas:
    def test_same_line_pragma_suppresses(self, tmp_path):
        write(tmp_path, "mod.py",
              "import random  # repro: lint-ignore[rng-discipline] -- test fixture\n")
        result = lint(tmp_path, "rng-discipline")
        assert result.findings == []
        assert result.suppressed == 1

    def test_pragma_line_above_suppresses(self, tmp_path):
        write(tmp_path, "mod.py", """\
            # repro: lint-ignore[rng-discipline] -- test fixture
            import random
        """)
        result = lint(tmp_path, "rng-discipline")
        assert result.findings == []
        assert result.suppressed == 1

    def test_file_wide_pragma_suppresses_everywhere(self, tmp_path):
        write(tmp_path, "mod.py", """\
            # repro: lint-ignore-file[rng-discipline] -- test fixture
            import random

            import numpy.random
        """)
        result = lint(tmp_path, "rng-discipline")
        assert result.findings == []
        assert result.suppressed == 2

    def test_pragma_without_reason_is_reported_and_does_not_suppress(self, tmp_path):
        write(tmp_path, "mod.py",
              "import random  # repro: lint-ignore[rng-discipline]\n")
        result = lint(tmp_path, "rng-discipline")
        assert rules_hit(result) == {"bad-pragma", "rng-discipline"}
        assert result.suppressed == 0

    def test_pragma_naming_no_rule_is_reported(self, tmp_path):
        write(tmp_path, "mod.py",
              "x = 1  # repro: lint-ignore[] -- the reason\n")
        result = lint(tmp_path)
        assert rules_hit(result) == {"bad-pragma"}

    def test_pragma_for_other_rule_does_not_suppress(self, tmp_path):
        write(tmp_path, "mod.py",
              "import random  # repro: lint-ignore[hot-path] -- wrong rule\n")
        result = lint(tmp_path, "rng-discipline", "hot-path")
        assert rules_hit(result) == {"rng-discipline"}


class TestEngine:
    def test_unknown_rule_id_raises(self, tmp_path):
        write(tmp_path, "mod.py", "x = 1\n")
        with pytest.raises(ValueError, match="unknown rule"):
            run_lint([tmp_path], all_rules(), rule_ids=["no-such-rule"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            run_lint([tmp_path / "nowhere"], all_rules())

    def test_rule_selection_restricts_active_rules(self, tmp_path):
        write(tmp_path, "mod.py", "import random\n")
        result = lint(tmp_path, "hot-path")
        assert result.findings == []
        assert result.rules == ["hot-path"]

    def test_syntax_error_surfaces_as_parse_error_finding(self, tmp_path):
        write(tmp_path, "broken.py", "def broken(:\n")
        result = lint(tmp_path)
        assert rules_hit(result) == {"parse-error"}
        assert result.exit_code == EXIT_FINDINGS

    def test_exit_codes(self, tmp_path):
        write(tmp_path, "clean.py", "x = 1\n")
        assert lint(tmp_path).exit_code == EXIT_CLEAN
        write(tmp_path, "dirty.py", "import random\n")
        assert lint(tmp_path).exit_code == EXIT_FINDINGS

    def test_json_output_schema(self, tmp_path):
        write(tmp_path, "mod.py", "import random\n")
        payload = json.loads(render_json(lint(tmp_path, "rng-discipline")))
        assert payload["lint_schema"] == LINT_SCHEMA_VERSION
        assert payload["files_checked"] == 1
        assert payload["suppressed"] == 0
        assert payload["rules"] == ["rng-discipline"]
        (finding,) = payload["findings"]
        assert finding["rule"] == "rng-discipline"
        assert finding["line"] == 1
        assert finding["path"].endswith("mod.py")
        assert set(finding) == {"rule", "path", "line", "message", "hint"}

    def test_text_output_has_location_rule_and_summary(self, tmp_path):
        write(tmp_path, "mod.py", "import random\n")
        text = render_text(lint(tmp_path, "rng-discipline"))
        assert "mod.py:1: [rng-discipline]" in text
        assert "1 finding(s) in 1 file(s)" in text
        assert "hint:" in text


class TestRngDiscipline:
    def test_catches_import_random_np_random_and_wall_clock_seed(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import random
            import numpy as np
            import time

            def draw():
                return np.random.rand()

            def pick_seed():
                seed = time.time()
                return seed
        """)
        result = lint(tmp_path, "rng-discipline")
        messages = "\n".join(f.message for f in result.findings)
        assert "import of `random`" in messages
        assert "numpy.random" in messages
        assert "wall clock" in messages

    def test_clean_inside_primitives_rng_and_for_random_source_use(self, tmp_path):
        write(tmp_path, "primitives/rng.py", "import random\nimport numpy.random\n")
        write(tmp_path, "core/mod.py", """\
            def draw(rng):
                return rng.numpy_generator().integers(0, 10)
        """)
        assert lint(tmp_path, "rng-discipline").findings == []

    def test_suppressed_with_reason(self, tmp_path):
        write(tmp_path, "mod.py",
              "import random  # repro: lint-ignore[rng-discipline] -- jitter only\n")
        result = lint(tmp_path, "rng-discipline")
        assert result.findings == [] and result.suppressed == 1


class TestLockDiscipline:
    CAUGHT = """\
        import threading

        class Worker:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def locked_add(self):
                with self._lock:
                    self._count += 1

            def racy_add(self):
                self._count += 1
    """

    def test_catches_half_guarded_attribute(self, tmp_path):
        write(tmp_path, "pipeline/mod.py", self.CAUGHT)
        result = lint(tmp_path, "lock-discipline")
        (finding,) = result.findings
        assert "_count" in finding.message
        assert finding.line == 13  # the unlocked write, not the locked one

    def test_clean_when_every_write_is_locked_or_in_init(self, tmp_path):
        write(tmp_path, "service/mod.py", """\
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def add(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    with self._lock:
                        self._count = 0
        """)
        assert lint(tmp_path, "lock-discipline").findings == []

    def test_out_of_scope_modules_are_not_checked(self, tmp_path):
        write(tmp_path, "analysis/mod.py", self.CAUGHT)
        assert lint(tmp_path, "lock-discipline").findings == []

    def test_suppressed_with_reason(self, tmp_path):
        caught = self.CAUGHT.replace(
            "    def racy_add(self):\n",
            "    def racy_add(self):\n"
            "        # repro: lint-ignore[lock-discipline] -- benign stat\n",
        )
        result = lint(write(tmp_path, "pipeline/mod.py", caught).parent.parent,
                      "lock-discipline")
        assert result.findings == [] and result.suppressed == 1


class TestDeterminism:
    def test_catches_set_iteration_in_report_function(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def report(entries):
                return [item for item in set(entries)]
        """)
        result = lint(tmp_path, "determinism")
        (finding,) = result.findings
        assert "hash/insertion order" in finding.message

    def test_catches_dict_keys_iteration_in_merge(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def merge(table):
                out = []
                for key in table.keys():
                    out.append(key)
                return out
        """)
        assert rules_hit(lint(tmp_path, "determinism")) == {"determinism"}

    def test_sorted_wrapping_and_other_functions_are_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def report(entries):
                return [item for item in sorted(set(entries))]

            def scan(entries):
                return [item for item in set(entries)]  # not order-sensitive
        """)
        assert lint(tmp_path, "determinism").findings == []

    def test_catches_wall_clock_in_sketch_module_but_not_observability(self, tmp_path):
        body = """\
            import time

            def stamp():
                return time.time()

            def duration():
                return time.perf_counter()
        """
        write(tmp_path, "core/mod.py", body)
        write(tmp_path, "observability/mod.py", body)
        result = lint(tmp_path, "determinism")
        assert [f.path for f in result.findings] == [str(tmp_path / "core/mod.py")]
        assert "wall-clock" in result.findings[0].message

    def test_suppressed_with_reason(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def report(entries):
                # repro: lint-ignore[determinism] -- singleton set, order moot
                return [item for item in set(entries)]
        """)
        result = lint(tmp_path, "determinism")
        assert result.findings == [] and result.suppressed == 1


class TestHotPath:
    def test_catches_per_item_loop_over_parameter(self, tmp_path):
        write(tmp_path, "mod.py", """\
            class Sketch:
                def insert_many(self, items):
                    for item in items:
                        self.insert(item)
        """)
        (finding,) = lint(tmp_path, "hot-path").findings
        assert "per-item Python loop" in finding.message

    def test_catches_concatenate_join_and_bytes_copy(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import numpy as np

            def ingest_chunk(self, chunk):
                self.buffer = np.concatenate([self.buffer, chunk])

            def recv_frame(sock):
                pieces = [sock.recv(4096)]
                return b"".join(pieces)

            def encode_items(items):
                return bytes(memoryview(items))
        """)
        messages = "\n".join(f.message for f in lint(tmp_path, "hot-path").findings)
        assert "np.concatenate" in messages
        assert "join" in messages
        assert "bytes(memoryview" in messages

    def test_derived_local_loops_and_cold_functions_are_clean(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import numpy as np

            class Sketch:
                def insert_many(self, items):
                    distinct, counts = np.unique(items, return_counts=True)
                    for item, count in zip(distinct, counts):
                        self._bump(int(item), int(count))

            def helper(items):
                for item in items:
                    print(item)
        """)
        assert lint(tmp_path, "hot-path").findings == []

    def test_suppressed_with_reason(self, tmp_path):
        write(tmp_path, "mod.py", """\
            class Sketch:
                def insert_many(self, items):
                    # repro: lint-ignore[hot-path] -- reference implementation
                    for item in items:
                        self.insert(item)
        """)
        result = lint(tmp_path, "hot-path")
        assert result.findings == [] and result.suppressed == 1


class TestProtocolSurface:
    def test_catches_unprefixed_metric_name(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def build(registry):
                registry.counter("items_total", "Items.")
                registry.gauge("repro_depth", "Depth.")
        """)
        (finding,) = lint(tmp_path, "protocol-surface").findings
        assert "`items_total` lacks the `repro_` prefix" in finding.message

    def _service_tree(self, tmp_path, client_methods=("push", "query"),
                      documented=("push", "query")):
        write(tmp_path, "service/server.py", """\
            _KNOWN_COMMANDS = frozenset({"push", "query"})

            def _dispatch(cmd):
                if cmd == "push":
                    return 1
                if cmd == "query":
                    return 2
                return None
        """)
        methods = "\n".join(
            f"    def {name}(self):\n        pass\n" for name in client_methods
        )
        write(tmp_path, "service/client.py",
              f"class ServiceClient:\n{methods}")
        write(tmp_path, "README.md",
              "commands: " + ", ".join(documented) + "\n")
        return tmp_path

    def test_consistent_surface_is_clean(self, tmp_path):
        root = self._service_tree(tmp_path)
        assert lint(root, "protocol-surface").findings == []

    def test_catches_dispatched_command_missing_from_known_set(self, tmp_path):
        root = self._service_tree(tmp_path)
        write(root, "service/server.py", """\
            _KNOWN_COMMANDS = frozenset({"push", "query"})

            def _dispatch(cmd):
                if cmd == "push":
                    return 1
                if cmd == "query":
                    return 2
                if cmd == "flush":
                    return 3
                return None
        """)
        messages = "\n".join(f.message for f in lint(root, "protocol-surface").findings)
        assert "`flush` is dispatched but missing from _KNOWN_COMMANDS" in messages

    def test_catches_missing_client_method_and_undocumented_command(self, tmp_path):
        root = self._service_tree(
            tmp_path, client_methods=("push",), documented=("push",)
        )
        messages = "\n".join(f.message for f in lint(root, "protocol-surface").findings)
        assert "no matching ServiceClient.query() method" in messages
        assert "`query` is undocumented" in messages

    def _stream_tree(self, tmp_path, lifecycle=("stream_create", "stream_seal"),
                     dispatched=("stream_create", "stream_seal")):
        """A service tree that also declares the registry's lifecycle surface."""
        commands = ("push",) + tuple(dispatched)
        known = ", ".join(f'"{command}"' for command in commands)
        branches = "\n".join(
            f'    if cmd == "{command}":\n        return 1'
            for command in commands
        )
        write(tmp_path, "service/server.py",
              f"_KNOWN_COMMANDS = frozenset({{{known}}})\n\n"
              f"def _dispatch(cmd):\n{branches}\n    return None\n")
        declared = ", ".join(f'"{command}"' for command in lifecycle)
        write(tmp_path, "service/registry.py",
              f"_LIFECYCLE_COMMANDS = frozenset({{{declared}}})\n")
        methods = "\n".join(
            f"    def {name}(self):\n        pass\n" for name in commands
        )
        write(tmp_path, "service/client.py",
              f"class ServiceClient:\n{methods}")
        write(tmp_path, "README.md", "commands: " + ", ".join(commands) + "\n")
        return tmp_path

    def test_consistent_stream_surface_is_clean(self, tmp_path):
        root = self._stream_tree(tmp_path)
        assert lint(root, "protocol-surface").findings == []

    def test_catches_declared_stream_command_never_dispatched(self, tmp_path):
        root = self._stream_tree(
            tmp_path,
            lifecycle=("stream_create", "stream_seal", "stream_delete"),
            dispatched=("stream_create", "stream_seal"),
        )
        messages = "\n".join(f.message for f in lint(root, "protocol-surface").findings)
        assert ("`stream_delete` is declared in the registry's "
                "_LIFECYCLE_COMMANDS but never dispatched") in messages

    def test_catches_dispatched_stream_command_never_declared(self, tmp_path):
        root = self._stream_tree(
            tmp_path,
            lifecycle=("stream_create",),
            dispatched=("stream_create", "stream_seal"),
        )
        messages = "\n".join(f.message for f in lint(root, "protocol-surface").findings)
        assert ("`stream_seal` is dispatched but missing from the registry's "
                "_LIFECYCLE_COMMANDS") in messages

    def test_stream_check_skipped_without_registry_module(self, tmp_path):
        # PR 4-era trees have no service/registry.py; the lifecycle
        # cross-check must not demand one into existence.
        root = self._service_tree(tmp_path)
        assert lint(root, "protocol-surface").findings == []

    def test_suppressed_with_reason(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def build(registry):
                # repro: lint-ignore[protocol-surface] -- legacy dashboard name
                registry.counter("items_total", "Items.")
        """)
        result = lint(tmp_path, "protocol-surface")
        assert result.findings == [] and result.suppressed == 1


class TestResourceSafety:
    def test_catches_unjoined_local_thread(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import threading

            def fire(target):
                worker = threading.Thread(target=target)
                worker.start()
        """)
        (finding,) = lint(tmp_path, "resource-safety").findings
        assert "never joined" in finding.message

    def test_catches_unbound_thread(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import threading

            def fire(target):
                threading.Thread(target=target).start()
        """)
        (finding,) = lint(tmp_path, "resource-safety").findings
        assert "without a binding" in finding.message

    def test_clean_when_joined_daemonized_or_shutdown_paired(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import threading

            def run(target):
                worker = threading.Thread(target=target)
                worker.start()
                worker.join()

            def fire_and_forget(target):
                worker = threading.Thread(target=target, daemon=True)
                worker.start()

            def fire_and_forget_late(target):
                worker = threading.Thread(target=target)
                worker.daemon = True
                worker.start()

            class Server:
                def start(self, target):
                    self._thread = threading.Thread(target=target)
                    self._thread.start()

                def close(self):
                    self._thread.join()
        """)
        assert lint(tmp_path, "resource-safety").findings == []

    def test_suppressed_with_reason(self, tmp_path):
        write(tmp_path, "mod.py", """\
            import threading

            def fire(target):
                # repro: lint-ignore[resource-safety] -- reaped by the harness
                worker = threading.Thread(target=target)
                worker.start()
        """)
        result = lint(tmp_path, "resource-safety")
        assert result.findings == [] and result.suppressed == 1


class TestDurabilityDiscipline:
    CAUGHT = """\
        import os

        def publish(temp_path, path):
            with open(temp_path, "w") as handle:
                handle.write("state")
            os.replace(temp_path, path)
    """

    def test_catches_rename_without_either_fsync(self, tmp_path):
        write(tmp_path, "service/mod.py", self.CAUGHT)
        result = lint(tmp_path, "durability-discipline")
        messages = "\n".join(f.message for f in result.findings)
        assert "never os.fsync-ed" in messages
        assert "fsyncing the containing directory" in messages
        assert len(result.findings) == 2

    def test_catches_missing_directory_fsync_only(self, tmp_path):
        write(tmp_path, "durability/mod.py", """\
            import os

            def publish(temp_path, path):
                with open(temp_path, "w") as handle:
                    handle.write("state")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.rename(temp_path, path)
        """)
        (finding,) = lint(tmp_path, "durability-discipline").findings
        assert "fsyncing the containing directory" in finding.message

    def test_clean_when_both_fsyncs_happen_in_the_same_function(self, tmp_path):
        # The Checkpointer.save shape: write, fsync file, replace, fsync dir.
        write(tmp_path, "service/mod.py", """\
            import os

            class Checkpointer:
                def save(self, temp_path, path, directory):
                    with open(temp_path, "w") as handle:
                        handle.write("state")
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(temp_path, path)
                    self._fsync_directory(directory)
        """)
        assert lint(tmp_path, "durability-discipline").findings == []

    def test_out_of_scope_modules_are_not_checked(self, tmp_path):
        write(tmp_path, "analysis/mod.py", self.CAUGHT)
        assert lint(tmp_path, "durability-discipline").findings == []

    def test_suppressed_with_reason(self, tmp_path):
        caught = self.CAUGHT.replace(
            "os.replace(temp_path, path)",
            "# repro: lint-ignore[durability-discipline] -- scratch file\n"
            "            os.replace(temp_path, path)",
        )
        write(tmp_path, "service/mod.py", caught)
        result = lint(tmp_path, "durability-discipline")
        assert result.findings == [] and result.suppressed == 2


class TestCli:
    def test_lint_cli_reports_and_exits_nonzero(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "import random\n")
        code = main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == EXIT_FINDINGS
        assert "[rng-discipline]" in out

    def test_lint_cli_json_output(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        code = main(["lint", str(tmp_path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == EXIT_CLEAN
        assert payload["lint_schema"] == LINT_SCHEMA_VERSION

    def test_lint_cli_unknown_rule_is_usage_error(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        code = main(["lint", str(tmp_path), "--rule", "no-such-rule"])
        assert code == 2

    def test_lint_cli_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert code == EXIT_CLEAN
        for rule in all_rules():
            assert rule.rule_id in out


class TestShippedTree:
    def test_repo_source_tree_is_lint_clean(self):
        result = run_lint([REPO_ROOT / "src"], all_rules())
        assert len(result.rules) >= 6
        assert result.files_checked > 50
        assert result.findings == [], render_text(result)

    def test_every_shipped_pragma_carries_a_reason(self):
        # The engine enforces this (a reasonless pragma is a bad-pragma
        # finding), so a clean tree implies it; this spells the contract out.
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            for line in path.read_text().splitlines():
                if "# repro: lint-ignore" in line:
                    assert "--" in line, f"{path}: pragma without reason: {line}"

    @pytest.mark.skipif(
        shutil.which("mypy") is None, reason="mypy not installed in this environment"
    )
    def test_typed_modules_pass_mypy(self):
        completed = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
