"""Unit tests for the async pipelined ingestion subsystem (repro.pipeline)."""

import os
import threading
import time

import numpy as np
import pytest

from repro.baselines.exact import ExactCounter
from repro.baselines.misra_gries import MisraGries
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.pipeline import ChunkProducer, PipelinedExecutor
from repro.primitives.rng import RandomSource
from repro.sharding import ShardedExecutor
from repro.streams.generators import zipfian_stream
from repro.streams.io import iterate_stream_file_chunks, save_stream
from repro.streams.truth import exact_frequencies


def _saved_trace(tmp_path, length=20_000, universe=1024, seed=1):
    stream = zipfian_stream(length, universe, skew=1.2, rng=RandomSource(seed))
    path = os.path.join(tmp_path, "trace.txt")
    save_stream(stream, path)
    return stream, path


class TestChunkProducer:
    def test_file_replay_concatenates_to_the_trace(self, tmp_path):
        stream, path = _saved_trace(tmp_path)
        chunks = list(ChunkProducer(path, chunk_size=997))
        assert all(isinstance(chunk, np.ndarray) and chunk.dtype == np.int64 for chunk in chunks)
        assert all(chunk.size <= 997 for chunk in chunks)
        assert np.concatenate(chunks).tolist() == list(stream)

    def test_iterable_and_stream_sources(self):
        items = [3, 1, 4, 1, 5, 9, 2, 6]
        assert np.concatenate(list(ChunkProducer(iter(items), chunk_size=3))).tolist() == items
        stream = zipfian_stream(500, 64, skew=1.1, rng=RandomSource(2))
        assert np.concatenate(list(ChunkProducer(stream, chunk_size=64))).tolist() == list(stream)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ChunkProducer([1], chunk_size=0)
        with pytest.raises(ValueError):
            ChunkProducer([1], queue_depth=0)

    def test_backpressure_bounds_the_queue(self):
        # A stalled consumer must cap the producer's read-ahead at queue_depth
        # chunks — the producer blocks in put() instead of buffering the stream.
        producer = ChunkProducer(iter(range(10_000)), chunk_size=100, queue_depth=3)
        producer.start()
        time.sleep(0.15)
        try:
            assert producer._queue.qsize() <= 3
            assert producer.is_alive  # blocked on backpressure, not finished
            assert producer.chunks_produced < 100
        finally:
            producer.close()
        assert not producer.is_alive

    def test_producer_exception_propagates_to_consumer(self):
        def bad_source():
            yield from range(250)
            raise ValueError("corrupt trace")

        consumed = []
        producer = ChunkProducer(bad_source(), chunk_size=100, queue_depth=2)
        with pytest.raises(ValueError, match="corrupt trace"):
            for chunk in producer:
                consumed.append(chunk)
        # Everything before the failure was delivered, then the thread wound down.
        assert sum(chunk.size for chunk in consumed) == 200
        assert not producer.is_alive

    def test_close_mid_stream_leaves_no_live_thread(self):
        producer = ChunkProducer(iter(range(1_000_000)), chunk_size=10, queue_depth=2)
        iterator = iter(producer)
        next(iterator)
        producer.close()
        assert not producer.is_alive
        with pytest.raises(RuntimeError):
            producer.start()

    def test_context_manager_joins_thread(self):
        before = threading.active_count()
        with ChunkProducer(iter(range(1000)), chunk_size=10, queue_depth=2) as producer:
            assert producer.is_alive or producer.chunks_produced >= 0
        assert not producer.is_alive
        assert threading.active_count() == before

    def test_abandoning_iteration_early(self, tmp_path):
        _, path = _saved_trace(tmp_path)
        producer = ChunkProducer(path, chunk_size=100, queue_depth=2)
        for index, _ in enumerate(producer):
            if index == 2:
                break
        producer.close()
        assert not producer.is_alive


class TestPipelinedExecutor:
    def test_requires_exactly_one_sink(self):
        with pytest.raises(ValueError):
            PipelinedExecutor()
        with pytest.raises(ValueError):
            PipelinedExecutor(
                sketch=ExactCounter(8),
                executor=ShardedExecutor(lambda s: ExactCounter(8), 1, 8),
            )

    def test_single_sketch_equals_eager_replay(self, tmp_path):
        stream, path = _saved_trace(tmp_path)
        eager = ExactCounter(1024)
        eager.insert_many(stream.array)
        executor = PipelinedExecutor(sketch=ExactCounter(1024), chunk_size=777, queue_depth=2)
        result = executor.run(path)
        assert result.sketch.frequencies() == eager.frequencies()
        assert result.items_processed == len(stream)
        assert result.shard_sizes == [len(stream)]
        assert result.num_shards == 1
        assert result.space_bits() > 0

    def test_sharded_pipelined_is_bit_identical_to_serial_run_chunks(self, tmp_path):
        stream, path = _saved_trace(tmp_path)

        def build():
            return ShardedExecutor(
                factory=lambda shard: OptimalListHeavyHitters(
                    epsilon=0.02, phi=0.05, universe_size=1024,
                    stream_length=len(stream), rng=RandomSource(50 + shard),
                ),
                num_shards=3,
                universe_size=1024,
                rng=RandomSource(99),
            )

        serial = build().run_chunks(iterate_stream_file_chunks(path, 1000))
        pipelined = PipelinedExecutor(executor=build(), chunk_size=1000, queue_depth=3)
        result = pipelined.run(path)
        assert dict(result.report.items) == dict(serial.report.items)
        assert result.shard_sizes == serial.shard_sizes
        assert result.space_bits() == serial.space_bits()

    def test_result_timing_split_is_consistent(self, tmp_path):
        _, path = _saved_trace(tmp_path)
        executor = PipelinedExecutor(sketch=MisraGries(0.01, 1024), chunk_size=1000)
        result = executor.run(path, report_kwargs={"phi": 0.05})
        assert result.ingest_seconds >= 0.0
        assert result.combine_seconds >= 0.0
        assert result.seconds == pytest.approx(result.ingest_seconds + result.combine_seconds)
        assert 0 <= result.max_queue_depth <= result.queue_depth
        assert result.chunks == 20

    def test_executor_is_single_shot(self, tmp_path):
        _, path = _saved_trace(tmp_path)
        executor = PipelinedExecutor(sketch=ExactCounter(1024))
        executor.run(path)
        with pytest.raises(RuntimeError):
            executor.run(path)
        with pytest.raises(RuntimeError):
            executor.snapshot()

    def test_concurrent_runs_have_exactly_one_winner(self):
        # Regression for the lock-discipline sweep: the started-flag check and
        # claim in run() must be one atomic step under the ingestion lock, or
        # two threads racing run() both pass the check and ingest into the
        # same sketches.  Whatever the interleaving, exactly one run() wins.
        for _ in range(10):
            executor = PipelinedExecutor(
                sketch=ExactCounter(1024), chunk_size=64, queue_depth=2
            )
            barrier = threading.Barrier(2)
            outcomes = []

            def attempt():
                barrier.wait()
                try:
                    result = executor.run(iter(range(512)))
                except RuntimeError:
                    outcomes.append("refused")
                else:
                    outcomes.append(result.items_processed)

            threads = [threading.Thread(target=attempt) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert outcomes.count("refused") == 1
            assert 512 in outcomes  # the winner saw every item exactly once

    def test_producer_exception_propagates_through_run(self):
        def bad_source():
            yield from range(100)
            raise OSError("disk went away")

        executor = PipelinedExecutor(sketch=ExactCounter(1024), chunk_size=10, queue_depth=2)
        before = threading.active_count()
        with pytest.raises(OSError, match="disk went away"):
            executor.run(bad_source())
        assert threading.active_count() == before
        # A failed run consumed the executor: its sketch holds the pre-failure
        # prefix, so a retry on the same instance would double-count.
        with pytest.raises(RuntimeError, match="already run"):
            executor.run(iter(range(10)))

    def test_sharded_executor_not_reusable_after_mid_ingest_failure(self):
        def bad_chunks():
            yield np.arange(10, dtype=np.int64)
            raise ValueError("corrupt trace")

        executor = ShardedExecutor(
            factory=lambda shard: ExactCounter(64), num_shards=2,
            universe_size=64, rng=RandomSource(8),
        )
        with pytest.raises(ValueError, match="corrupt trace"):
            executor.run_chunks(bad_chunks())
        with pytest.raises(RuntimeError, match="already ingested"):
            executor.run_chunks([np.arange(10, dtype=np.int64)])

    def test_run_leaves_no_live_threads(self, tmp_path):
        _, path = _saved_trace(tmp_path)
        before = threading.active_count()
        PipelinedExecutor(sketch=ExactCounter(1024), chunk_size=500).run(path)
        assert threading.active_count() == before

    def test_snapshot_during_ingest_satisfies_definition_on_the_prefix(self):
        stream = zipfian_stream(40_000, 512, skew=1.3, rng=RandomSource(4))

        def slow_source():
            for start in range(0, len(stream), 800):
                time.sleep(0.002)  # stretch ingestion so the snapshot lands mid-stream
                yield from stream[start:start + 800].tolist()

        executor = PipelinedExecutor(
            executor=ShardedExecutor(
                factory=lambda shard: MisraGries(0.01, 512),
                num_shards=2, universe_size=512, rng=RandomSource(5),
            ),
            chunk_size=800, queue_depth=2,
        )
        outcome = {}
        thread = threading.Thread(
            target=lambda: outcome.update(result=executor.run(slow_source(),
                                                              report_kwargs={"phi": 0.05}))
        )
        thread.start()
        time.sleep(0.03)
        snapshot = executor.snapshot(report_kwargs={"phi": 0.05})
        thread.join()
        assert 0 < snapshot.items_processed <= len(stream)
        # Chunk ingestion is atomic, so the snapshot state is exactly the first
        # items_processed stream items; Misra-Gries is deterministic, so its merged
        # report must satisfy Definition 1 against that prefix's exact frequencies.
        prefix = stream.prefix(snapshot.items_processed)
        assert snapshot.report.stream_length == snapshot.items_processed
        assert snapshot.report.satisfies_definition(exact_frequencies(prefix))
        # The snapshot is a copy: the full run is unaffected and reports on the
        # whole stream.
        result = outcome["result"]
        assert result.items_processed == len(stream)
        assert result.report.satisfies_definition(exact_frequencies(stream))

    def test_snapshot_before_ingest_is_empty(self):
        executor = PipelinedExecutor(sketch=MisraGries(0.05, 64))
        snapshot = executor.snapshot(report_kwargs={"phi": 0.2})
        assert snapshot.items_processed == 0
        assert len(snapshot.report) == 0


class TestSnapshotCache:
    """The versioned snapshot cache: O(1) repeats, copy-on-write invalidation."""

    def _executor(self) -> PipelinedExecutor:
        return PipelinedExecutor(sketch=MisraGries(0.02, 512), chunk_size=1000)

    def test_repeated_snapshot_at_fixed_prefix_hits_the_cache(self):
        executor = self._executor()
        executor.ingest_chunk(np.arange(1000) % 512)
        first = executor.snapshot(report_kwargs={"phi": 0.1})
        assert (executor.snapshot_cache_misses, executor.snapshot_cache_hits) == (1, 0)
        for _ in range(5):
            repeat = executor.snapshot(report_kwargs={"phi": 0.1})
            # same merged sketch (no deepcopy), same answer — but the report is
            # a private copy, so a caller mutating it cannot poison the cache
            assert repeat.sketch is first.sketch
            assert repeat.report is not first.report
            assert dict(repeat.report.items) == dict(first.report.items)
            assert repeat.items_processed == first.items_processed
        assert (executor.snapshot_cache_misses, executor.snapshot_cache_hits) == (1, 5)

    def test_mutating_a_served_report_does_not_poison_the_cache(self):
        executor = self._executor()
        executor.ingest_chunk(np.zeros(1000, dtype=np.int64))
        tampered = executor.snapshot(report_kwargs={"phi": 0.1})
        assert 0 in tampered.report
        tampered.report.items[499] = 999.0  # a hostile/buggy caller
        clean = executor.snapshot(report_kwargs={"phi": 0.1})
        assert 499 not in clean.report.items

    def test_ingestion_advancing_invalidates_the_cache(self):
        executor = self._executor()
        executor.ingest_chunk(np.zeros(1000, dtype=np.int64))
        stale = executor.snapshot(report_kwargs={"phi": 0.1})
        executor.ingest_chunk(np.ones(1000, dtype=np.int64))
        fresh = executor.snapshot(report_kwargs={"phi": 0.1})
        assert executor.snapshot_cache_misses == 2
        assert fresh.items_processed == 2000
        assert stale.items_processed == 1000  # the old snapshot is unperturbed
        assert fresh.report is not stale.report

    def test_new_report_kwargs_reuse_the_merged_copy(self):
        executor = self._executor()
        executor.ingest_chunk(np.zeros(1000, dtype=np.int64))
        low = executor.snapshot(report_kwargs={"phi": 0.1})
        high = executor.snapshot(report_kwargs={"phi": 0.9})
        # second call re-reports on the cached merged sketch: a hit, not a copy
        assert executor.snapshot_cache_misses == 1
        assert executor.snapshot_cache_hits == 1
        assert high.sketch is low.sketch
        assert high.report is not low.report
        # and both kwargs are now report-cached: further calls are hits
        assert dict(executor.snapshot(report_kwargs={"phi": 0.1}).report.items) == dict(
            low.report.items
        )
        assert dict(executor.snapshot(report_kwargs={"phi": 0.9}).report.items) == dict(
            high.report.items
        )
        assert executor.snapshot_cache_misses == 1
        assert executor.snapshot_cache_hits == 3

    def test_unhashable_report_kwargs_bypass_the_report_cache(self):
        """Unhashable kwarg values degrade gracefully: re-report, never crash."""

        class UnhashablePhi:  # numeric enough for report(), but not hashable
            __hash__ = None

            def __sub__(self, other):
                return 0.1 - other

        executor = self._executor()
        executor.ingest_chunk(np.zeros(1000, dtype=np.int64))
        weird = {"phi": UnhashablePhi()}
        first = executor.snapshot(report_kwargs=weird)
        again = executor.snapshot(report_kwargs=weird)
        assert dict(first.report.items) == dict(again.report.items)
        # merged sketch was still reused (one miss), reports recomputed each time
        assert executor.snapshot_cache_misses == 1

    def test_cached_snapshot_answers_match_a_fresh_run_on_the_prefix(self):
        stream = zipfian_stream(8_000, 256, skew=1.3, rng=RandomSource(9))
        executor = PipelinedExecutor(sketch=MisraGries(0.02, 256), chunk_size=2000)
        for start in range(0, 4000, 2000):
            executor.ingest_chunk(stream.array[start:start + 2000])
        cached = [executor.snapshot(report_kwargs={"phi": 0.05}) for _ in range(3)][-1]
        reference = MisraGries(0.02, 256)
        reference.insert_many(stream.array[:4000])
        assert dict(cached.report.items) == dict(reference.report(phi=0.05).items)

    def test_cache_is_dropped_on_finalize(self):
        executor = self._executor()
        executor.ingest_chunk(np.zeros(1000, dtype=np.int64))
        executor.snapshot(report_kwargs={"phi": 0.1})
        assert executor._snapshot_cache is not None
        executor.finalize(report_kwargs={"phi": 0.1})
        assert executor._snapshot_cache is None
        with pytest.raises(RuntimeError):
            executor.snapshot(report_kwargs={"phi": 0.1})


class TestShardedTimingSplit:
    def test_ingest_and_combine_seconds_sum_to_total(self):
        stream = zipfian_stream(10_000, 256, skew=1.2, rng=RandomSource(6))
        executor = ShardedExecutor(
            factory=lambda shard: MisraGries(0.02, 256),
            num_shards=2, universe_size=256, rng=RandomSource(7),
        )
        result = executor.run(stream, report_kwargs={"phi": 0.05})
        assert result.ingest_seconds >= 0.0
        assert result.combine_seconds >= 0.0
        assert result.seconds == pytest.approx(
            result.ingest_seconds + result.combine_seconds
        )
