"""Unit tests for the crash-durability layer: WAL, recovery, and the temp-file sweep."""

import glob
import os

import numpy as np
import pytest

from repro.baselines.misra_gries import MisraGries
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.durability import (
    WalError,
    WriteAheadLog,
    find_checkpoint,
    list_segments,
    recover_sink,
    replay,
    tear_tail,
)
from repro.pipeline import PipelinedExecutor
from repro.primitives.rng import RandomSource
from repro.replication import FaultPlan
from repro.service import Checkpointer

UNIVERSE = 300
LENGTH = 8_000
CHUNK = 512


def make_sketch(seed=1):
    return SimpleListHeavyHitters(
        epsilon=0.05, phi=0.1, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(seed),
    )


def make_items(length=LENGTH, seed=3):
    rng = RandomSource(seed).numpy_generator()
    return rng.integers(0, UNIVERSE, size=length).astype(np.int64)


def replayed_items(directory, start=0):
    pieces = [items for _, items in replay(str(directory), start)]
    return np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)


# -- WAL append / replay ----------------------------------------------------------------


def test_append_replay_round_trip(tmp_path):
    items = make_items(3_000)
    with WriteAheadLog(str(tmp_path), fsync="off") as wal:
        for offset in range(0, items.size, 700):
            wal.append(items[offset:offset + 700])
        assert wal.position == items.size
    np.testing.assert_array_equal(replayed_items(tmp_path), items)


def test_replay_slices_the_straddling_record(tmp_path):
    items = make_items(1_000)
    with WriteAheadLog(str(tmp_path), fsync="off") as wal:
        wal.append(items)
    # Resuming mid-record must yield exactly the un-covered suffix.
    np.testing.assert_array_equal(replayed_items(tmp_path, start=137), items[137:])
    assert replayed_items(tmp_path, start=items.size).size == 0


def test_empty_append_is_a_no_op(tmp_path):
    with WriteAheadLog(str(tmp_path), fsync="off") as wal:
        wal.append(np.empty(0, dtype=np.int64))
        wal.append(np.array([5, 6], dtype=np.int64))
        assert wal.position == 2


def test_reopen_adopts_existing_segments(tmp_path):
    items = make_items(2_000)
    with WriteAheadLog(str(tmp_path), fsync="off") as wal:
        wal.append(items[:1_200])
    with WriteAheadLog(str(tmp_path), fsync="off") as wal:
        assert wal.position == 1_200
        wal.append(items[1_200:])
    np.testing.assert_array_equal(replayed_items(tmp_path), items)


def test_segment_rotation_and_ordering(tmp_path):
    items = make_items(4_000)
    with WriteAheadLog(str(tmp_path), fsync="off", segment_bytes=4_096) as wal:
        for offset in range(0, items.size, 400):
            wal.append(items[offset:offset + 400])
    segments = list_segments(str(tmp_path))
    assert len(segments) > 1
    starts = [segment.start_items for segment in segments]
    assert starts == sorted(starts) and starts[0] == 0
    np.testing.assert_array_equal(replayed_items(tmp_path), items)


def test_missing_middle_segment_raises(tmp_path):
    with WriteAheadLog(str(tmp_path), fsync="off", segment_bytes=2_048) as wal:
        for offset in range(0, 3_000, 200):
            wal.append(make_items(3_000)[offset:offset + 200])
    segments = list_segments(str(tmp_path))
    assert len(segments) >= 3
    os.unlink(segments[1].path)
    with pytest.raises(WalError, match="gap"):
        list_segments(str(tmp_path))


def test_compaction_keeps_the_uncovered_suffix(tmp_path):
    items = make_items(4_000)
    with WriteAheadLog(str(tmp_path), fsync="off", segment_bytes=2_048) as wal:
        for offset in range(0, items.size, 200):
            wal.append(items[offset:offset + 200])
        before = len(list_segments(str(tmp_path)))
        wal.compact(2_000)
        after = list_segments(str(tmp_path))
        assert len(after) < before
        # Everything past the compaction point must still replay.
        np.testing.assert_array_equal(replayed_items(tmp_path, 2_000), items[2_000:])
        # Compaction never deletes the live tail segment.
        wal.compact(items.size)
        assert list_segments(str(tmp_path))


# -- torn tails and corruption ----------------------------------------------------------


def test_torn_tail_is_truncated_silently(tmp_path):
    items = make_items(900)
    with WriteAheadLog(str(tmp_path), fsync="off") as wal:
        wal.append(items[:600])
        wal.append(items[600:])
    tear_tail(str(tmp_path), 5)
    # The torn final record disappears; the intact prefix survives.
    np.testing.assert_array_equal(replayed_items(tmp_path), items[:600])
    removed = WriteAheadLog.repair(str(tmp_path))
    assert removed > 0
    np.testing.assert_array_equal(replayed_items(tmp_path), items[:600])
    assert WriteAheadLog.repair(str(tmp_path)) == 0  # idempotent


def test_tear_tail_zero_flips_the_last_byte(tmp_path):
    items = make_items(400)
    with WriteAheadLog(str(tmp_path), fsync="off") as wal:
        wal.append(items)
    size_before = os.path.getsize(list_segments(str(tmp_path))[-1].path)
    tear_tail(str(tmp_path), 0)
    assert os.path.getsize(list_segments(str(tmp_path))[-1].path) == size_before
    # CRC catches the flip; the (single) record is treated as torn.
    assert replayed_items(tmp_path).size == 0


def test_corruption_before_the_tail_raises(tmp_path):
    items = make_items(900)
    with WriteAheadLog(str(tmp_path), fsync="off") as wal:
        wal.append(items[:600])
        wal.append(items[600:])
    segment = list_segments(str(tmp_path))[-1].path
    with open(segment, "r+b") as handle:
        handle.seek(40)  # inside the first record's payload
        byte = handle.read(1)
        handle.seek(40)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(WalError, match="checksum"):
        replayed_items(tmp_path)


def test_crash_fault_tears_the_journal_mid_append(tmp_path, monkeypatch):
    exits = []

    def fake_exit(code):
        exits.append(code)
        raise SystemExit(code)

    monkeypatch.setattr(os, "_exit", fake_exit)
    plan = FaultPlan.parse(["crash:after_chunk=2"])
    wal = WriteAheadLog(str(tmp_path), fsync="off", fault_plan=plan)
    first = make_items(200)
    wal.append(first)
    with pytest.raises(SystemExit):
        wal.append(make_items(200, seed=5))
    assert exits == [137]
    # The journal is torn exactly where a real kill -9 would leave it.
    assert WriteAheadLog.repair(str(tmp_path)) > 0
    np.testing.assert_array_equal(replayed_items(tmp_path), first)


# -- fsync policy and positions ---------------------------------------------------------


def test_parse_fsync_policy():
    assert WriteAheadLog.parse_fsync_policy("always") == 1
    assert WriteAheadLog.parse_fsync_policy("off") is None
    assert WriteAheadLog.parse_fsync_policy("interval:16") == 16
    for bad in ("sometimes", "interval:0", "interval:-3", "interval:x", ""):
        with pytest.raises(ValueError):
            WriteAheadLog.parse_fsync_policy(bad)


def test_advance_to_numbers_future_records_from_the_checkpoint(tmp_path):
    with WriteAheadLog(str(tmp_path), fsync="off") as wal:
        wal.append(make_items(100))
        wal.advance_to(500)
        assert wal.position == 500
        wal.append(np.array([1, 2, 3], dtype=np.int64))
    np.testing.assert_array_equal(
        replayed_items(tmp_path, 500), np.array([1, 2, 3], dtype=np.int64)
    )


def test_append_after_close_raises(tmp_path):
    wal = WriteAheadLog(str(tmp_path), fsync="off")
    wal.close()
    with pytest.raises(WalError):
        wal.append(np.array([1], dtype=np.int64))


# -- checkpoint format 3 and the temp-file sweep ----------------------------------------


def test_checkpoint_carries_wal_position(tmp_path):
    executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK)
    executor.ingest_chunk(make_items(CHUNK))
    path = str(tmp_path / "a.ckpt")
    checkpointer = Checkpointer()
    manifest = checkpointer.save(path, executor.sink_state(), wal_position=CHUNK)
    assert manifest["format"] == 3
    assert manifest["wal_position"] == CHUNK
    _, loaded = checkpointer.load(path)
    assert loaded["wal_position"] == CHUNK


def test_format2_checkpoints_still_load(tmp_path, monkeypatch):
    executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK)
    executor.ingest_chunk(make_items(CHUNK))
    path = str(tmp_path / "old.ckpt")
    monkeypatch.setattr("repro.service.checkpoint.CHECKPOINT_FORMAT", 2)
    Checkpointer().save(path, executor.sink_state())
    monkeypatch.undo()
    state, manifest = Checkpointer().load(path)
    assert manifest["format"] == 2
    assert state.items_processed == CHUNK


def test_sweep_stale_temp_files_removes_only_ckpt_tmp(tmp_path):
    stale = tmp_path / "spill.ckpt.tmp"
    stale.write_bytes(b"half-written")
    keeper = tmp_path / "notes.txt"
    keeper.write_text("keep me")
    real = tmp_path / "real.ckpt"
    real.write_bytes(b"whatever")
    swept = Checkpointer.sweep_stale_temp_files(str(tmp_path))
    assert swept == [str(stale)]
    assert not stale.exists() and keeper.exists() and real.exists()


def test_restore_pipeline_sweeps_stale_temp_files(tmp_path):
    executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK)
    executor.ingest_chunk(make_items(CHUNK))
    path = str(tmp_path / "good.ckpt")
    Checkpointer().save(path, executor.sink_state())
    stale = tmp_path / "good.ckpt.tmp"
    stale.write_bytes(b"crashed mid-save")
    restored, _ = Checkpointer().restore_pipeline(path, chunk_size=CHUNK)
    assert restored.items_processed == CHUNK
    assert not stale.exists()


# -- recovery ---------------------------------------------------------------------------


def test_recover_fresh_directory(tmp_path):
    recovered = recover_sink(
        str(tmp_path / "wal"), lambda: PipelinedExecutor(
            sketch=make_sketch(), chunk_size=CHUNK),
        chunk_size=CHUNK, fsync="off",
    )
    assert recovered.source == "fresh"
    assert recovered.recovered_items == 0 and recovered.tail.size == 0
    recovered.wal.close()


def test_recover_from_wal_matches_plain_replay(tmp_path):
    items = make_items(3 * CHUNK + 100)
    with WriteAheadLog(str(tmp_path / "wal"), fsync="off") as wal:
        for offset in range(0, items.size, 300):
            wal.append(items[offset:offset + 300])

    recovered = recover_sink(
        str(tmp_path / "wal"), lambda: PipelinedExecutor(
            sketch=make_sketch(), chunk_size=CHUNK),
        chunk_size=CHUNK, fsync="off",
    )
    recovered.wal.close()
    assert recovered.source == "wal"
    assert recovered.recovered_chunks == 3
    assert recovered.sink.items_processed == 3 * CHUNK
    np.testing.assert_array_equal(recovered.tail, items[3 * CHUNK:])

    reference = PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK)
    for offset in range(0, 3 * CHUNK, CHUNK):
        reference.ingest_chunk(items[offset:offset + CHUNK])
    assert (dict(recovered.sink.snapshot().report.items)
            == dict(reference.snapshot().report.items))


def test_recover_checkpoint_plus_wal(tmp_path):
    wal_dir = tmp_path / "wal"
    items = make_items(4 * CHUNK)
    executor = PipelinedExecutor(
        sketch=MisraGries(0.05, UNIVERSE), chunk_size=CHUNK)
    with WriteAheadLog(str(wal_dir), fsync="off") as wal:
        for offset in range(0, 2 * CHUNK, CHUNK):
            wal.append(items[offset:offset + CHUNK])
            executor.ingest_chunk(items[offset:offset + CHUNK])
        Checkpointer().save(str(wal_dir / "mid.ckpt"), executor.sink_state(),
                            wal_position=2 * CHUNK)
        for offset in range(2 * CHUNK, items.size, CHUNK):
            wal.append(items[offset:offset + CHUNK])

    recovered = recover_sink(
        str(wal_dir), lambda: PipelinedExecutor(
            sketch=MisraGries(0.05, UNIVERSE), chunk_size=CHUNK),
        chunk_size=CHUNK, fsync="off",
    )
    recovered.wal.close()
    assert recovered.source == "checkpoint+wal"
    assert recovered.checkpoint_path == str(wal_dir / "mid.ckpt")
    assert recovered.recovered_chunks == 2
    assert recovered.sink.items_processed == items.size

    reference = PipelinedExecutor(
        sketch=MisraGries(0.05, UNIVERSE), chunk_size=CHUNK)
    for offset in range(0, items.size, CHUNK):
        reference.ingest_chunk(items[offset:offset + CHUNK])
    kwargs = {"phi": 0.1}
    assert (dict(recovered.sink.snapshot(report_kwargs=kwargs).report.items)
            == dict(reference.snapshot(report_kwargs=kwargs).report.items))


def test_recover_skips_corrupt_checkpoint_for_an_older_good_one(tmp_path):
    wal_dir = tmp_path / "wal"
    wal_dir.mkdir()
    executor = PipelinedExecutor(
        sketch=MisraGries(0.05, UNIVERSE), chunk_size=CHUNK)
    items = make_items(2 * CHUNK)
    executor.ingest_chunk(items[:CHUNK])
    Checkpointer().save(str(wal_dir / "old.ckpt"), executor.sink_state(),
                        wal_position=CHUNK)
    executor.ingest_chunk(items[CHUNK:])
    Checkpointer().save(str(wal_dir / "new.ckpt"), executor.sink_state(),
                        wal_position=2 * CHUNK)
    with open(wal_dir / "new.ckpt", "r+b") as handle:
        handle.truncate(20)
    assert find_checkpoint(str(wal_dir)) == str(wal_dir / "old.ckpt")


def test_recover_refuses_a_journal_compacted_past_the_checkpoint(tmp_path):
    wal_dir = tmp_path / "wal"
    items = make_items(4 * CHUNK)
    with WriteAheadLog(str(wal_dir), fsync="off", segment_bytes=2_048) as wal:
        for offset in range(0, items.size, 256):
            wal.append(items[offset:offset + 256])
        wal.compact(3 * CHUNK)
    # No checkpoint at all: recovery must resume at 0, which is gone.
    with pytest.raises(WalError, match="compacted"):
        recover_sink(
            str(wal_dir), lambda: PipelinedExecutor(
                sketch=make_sketch(), chunk_size=CHUNK),
            chunk_size=CHUNK, fsync="off",
        )


def test_recover_repairs_a_torn_tail_and_counts_it(tmp_path):
    wal_dir = tmp_path / "wal"
    items = make_items(CHUNK + 64)
    with WriteAheadLog(str(wal_dir), fsync="off") as wal:
        wal.append(items[:CHUNK])
        wal.append(items[CHUNK:])
    tear_tail(str(wal_dir), 7)
    recovered = recover_sink(
        str(wal_dir), lambda: PipelinedExecutor(
            sketch=make_sketch(), chunk_size=CHUNK),
        chunk_size=CHUNK, fsync="off",
    )
    recovered.wal.close()
    assert recovered.torn_bytes > 0
    assert recovered.recovered_items == CHUNK
    # The repaired journal accepts new appends where the torn record was.
    assert recovered.wal.position == CHUNK


# -- the registry's per-stream journals -------------------------------------------------


def make_registry(tmp_path, wal=True):
    from repro.service import StreamRegistry, derive_stream_seed

    def build(name):
        return PipelinedExecutor(
            sketch=make_sketch(derive_stream_seed(7, name)), chunk_size=CHUNK)

    return StreamRegistry(
        build, chunk_size=CHUNK, spill_dir=str(tmp_path / "spill"),
        wal_dir=str(tmp_path / "streams") if wal else None, wal_fsync="off",
    )


def test_stream_registry_recovers_streams_after_restart(tmp_path):
    items = make_items(2 * CHUNK + 50)
    registry = make_registry(tmp_path)
    registry.create("alpha")
    registry.push("alpha", items)
    _, snapshot = registry.query("alpha")
    report = dict(snapshot.report.items)
    registry.close()

    reborn = make_registry(tmp_path)
    assert [info["stream"] for info in reborn.list_streams()] == ["alpha"]
    assert reborn.items_received("alpha") == items.size
    _, reborn_snapshot = reborn.query("alpha")
    assert dict(reborn_snapshot.report.items) == report
    reborn.close()


def test_stream_delete_removes_spill_and_wal(tmp_path):
    registry = make_registry(tmp_path)
    registry.create("doomed")
    registry.push("doomed", make_items(CHUNK))
    stream_dirs = glob.glob(str(tmp_path / "streams" / "stream-*"))
    assert len(stream_dirs) == 1
    registry.delete("doomed")
    assert glob.glob(str(tmp_path / "streams" / "stream-*")) == []
    registry.close()
    # A restart after delete must not resurrect the stream.
    reborn = make_registry(tmp_path)
    assert reborn.list_streams() == []
    reborn.close()


# -- fault-plan grammar -----------------------------------------------------------------


def test_fault_plan_crash_and_torn_grammar():
    plan = FaultPlan.parse(["crash:after_chunk=3", "torn:bytes=9"])
    kinds = {spec.kind for spec in plan.specs}
    assert kinds == {"crash-process", "torn-write"}
    assert plan.pop_torn_bytes() == 9
    assert plan.pop_torn_bytes() is None  # one-shot
    for bad in ("crash:after_chunk=0", "torn:bytes=-1", "crash:bytes=3"):
        with pytest.raises(ValueError):
            FaultPlan.parse([bad])
