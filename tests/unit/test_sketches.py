"""Unit tests for the sketch baselines: Count-Min and CountSketch."""

import pytest

from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream, zipfian_stream
from repro.streams.truth import exact_frequencies


class TestCountMinSketch:
    def test_never_underestimates(self):
        rng = RandomSource(1)
        stream = zipfian_stream(5000, 300, skew=1.2, rng=rng)
        truth = exact_frequencies(stream)
        sketch = CountMinSketch(epsilon=0.02, delta=0.05, universe_size=300, rng=rng)
        sketch.consume(stream)
        for item, count in truth.items():
            assert sketch.estimate(item) >= count

    def test_overestimate_bounded_by_eps_m(self):
        rng = RandomSource(2)
        stream = zipfian_stream(8000, 300, skew=1.2, rng=rng)
        truth = exact_frequencies(stream)
        epsilon = 0.02
        sketch = CountMinSketch(epsilon=epsilon, delta=0.01, universe_size=300, rng=rng)
        sketch.consume(stream)
        violations = sum(
            1
            for item, count in truth.items()
            if sketch.estimate(item) - count > epsilon * len(stream)
        )
        # The guarantee is per-item with probability 1 - delta; allow a few violations.
        assert violations <= 0.05 * len(truth)

    def test_heavy_hitters_recall(self):
        rng = RandomSource(3)
        stream = planted_heavy_hitters_stream(20000, 1000, {5: 0.2, 9: 0.1}, rng=rng)
        truth = exact_frequencies(stream)
        sketch = CountMinSketch(epsilon=0.02, delta=0.05, universe_size=1000, rng=rng)
        sketch.consume(stream)
        report = sketch.report(phi=0.08)
        assert 5 in report
        assert 9 in report
        assert report.contains_all_heavy(truth)

    def test_dimensions_follow_parameters(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.01, universe_size=100, rng=RandomSource(4))
        assert sketch.width >= int(2.718 / 0.01)
        assert sketch.depth >= 4

    def test_space_grows_with_inverse_epsilon(self):
        coarse = CountMinSketch(epsilon=0.1, delta=0.1, universe_size=1000, rng=RandomSource(5))
        fine = CountMinSketch(epsilon=0.01, delta=0.1, universe_size=1000, rng=RandomSource(5))
        coarse.insert(1)
        fine.insert(1)
        assert fine.space_bits() > coarse.space_bits()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=0.0, delta=0.1, universe_size=10)
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=0.1, delta=0.0, universe_size=10)
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=0.1, delta=0.1, universe_size=0)


class TestCountSketch:
    def test_estimates_near_truth_for_heavy_items(self):
        rng = RandomSource(6)
        stream = planted_heavy_hitters_stream(20000, 500, {1: 0.25, 2: 0.15}, rng=rng)
        truth = exact_frequencies(stream)
        sketch = CountSketch(epsilon=0.05, delta=0.05, universe_size=500, rng=rng)
        sketch.consume(stream)
        for item in (1, 2):
            assert abs(sketch.estimate(item) - truth[item]) <= 0.1 * len(stream)

    def test_heavy_hitters_recall(self):
        rng = RandomSource(7)
        stream = planted_heavy_hitters_stream(15000, 500, {3: 0.3, 4: 0.12}, rng=rng)
        sketch = CountSketch(epsilon=0.05, delta=0.05, universe_size=500, rng=rng)
        sketch.consume(stream)
        report = sketch.report(phi=0.1)
        assert 3 in report
        assert 4 in report

    def test_signed_counters_can_go_negative(self):
        sketch = CountSketch(epsilon=0.3, delta=0.3, universe_size=100, rng=RandomSource(8))
        for item in range(100):
            sketch.insert(item)
        assert any(value < 0 for row in sketch.table for value in row)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountSketch(epsilon=2.0, delta=0.1, universe_size=10)
        with pytest.raises(ValueError):
            CountSketch(epsilon=0.1, delta=0.1, universe_size=-1)
