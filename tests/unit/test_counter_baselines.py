"""Unit tests for the counter-based baselines: Space-Saving, Lossy Counting, Sticky Sampling, Exact."""

import pytest

from repro.baselines.exact import ExactCounter
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.space_saving import SpaceSaving
from repro.baselines.sticky_sampling import StickySampling
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream, zipfian_stream
from repro.streams.truth import exact_frequencies


class TestExactCounter:
    def test_exact_frequencies(self):
        counter = ExactCounter(universe_size=10)
        for item in [1, 2, 1, 3, 1]:
            counter.insert(item)
        assert counter.estimate(1) == 3
        assert counter.estimate(2) == 1
        assert counter.estimate(9) == 0
        assert counter.frequencies() == {1: 3, 2: 1, 3: 1}

    def test_most_common(self):
        counter = ExactCounter(universe_size=10)
        for item in [5] * 4 + [2] * 2 + [7]:
            counter.insert(item)
        assert counter.most_common(2) == [(5, 4), (2, 2)]

    def test_heavy_hitters_threshold_is_strict(self):
        counter = ExactCounter(universe_size=10)
        for item in [1] * 5 + [2] * 5:
            counter.insert(item)
        assert counter.heavy_hitters(phi=0.5) == {}
        assert counter.heavy_hitters(phi=0.49) == {1: 5, 2: 5}

    def test_report_matches_definition(self):
        counter = ExactCounter(universe_size=10)
        for item in [1] * 8 + [2] * 2:
            counter.insert(item)
        report = counter.report(epsilon=0.1, phi=0.5)
        assert list(report.items) == [1]
        assert report.satisfies_definition(counter.frequencies())

    def test_universe_bounds(self):
        counter = ExactCounter(universe_size=3)
        with pytest.raises(ValueError):
            counter.insert(3)


class TestSpaceSaving:
    def test_overestimates_only(self):
        rng = RandomSource(1)
        stream = zipfian_stream(5000, 200, skew=1.3, rng=rng)
        truth = exact_frequencies(stream)
        algo = SpaceSaving(epsilon=0.02, universe_size=200)
        algo.consume(stream)
        for item in algo.counts:
            assert algo.estimate(item) >= truth.get(item, 0)

    def test_error_bounded_by_eps_m(self):
        rng = RandomSource(2)
        stream = zipfian_stream(8000, 200, skew=1.2, rng=rng)
        truth = exact_frequencies(stream)
        epsilon = 0.02
        algo = SpaceSaving(epsilon=epsilon, universe_size=200)
        algo.consume(stream)
        for item in algo.counts:
            assert algo.estimate(item) - truth.get(item, 0) <= epsilon * len(stream) + 1

    def test_capacity_respected(self):
        algo = SpaceSaving(epsilon=0.1, universe_size=1000)
        rng = RandomSource(3)
        for _ in range(5000):
            algo.insert(rng.randint(0, 999))
            assert len(algo.counts) <= algo.capacity

    def test_heavy_hitters_found(self):
        rng = RandomSource(4)
        stream = planted_heavy_hitters_stream(20000, 2000, {11: 0.2, 22: 0.09}, rng=rng)
        truth = exact_frequencies(stream)
        algo = SpaceSaving(epsilon=0.02, universe_size=2000)
        algo.consume(stream)
        report = algo.report(phi=0.08)
        assert report.contains_all_heavy(truth)

    def test_guaranteed_count_is_lower_bound(self):
        rng = RandomSource(5)
        stream = zipfian_stream(3000, 100, skew=1.5, rng=rng)
        truth = exact_frequencies(stream)
        algo = SpaceSaving(epsilon=0.05, universe_size=100)
        algo.consume(stream)
        for item in algo.counts:
            assert algo.guaranteed_count(item) <= truth.get(item, 0)


class TestLossyCounting:
    def test_underestimates_only(self):
        rng = RandomSource(6)
        stream = zipfian_stream(6000, 300, skew=1.3, rng=rng)
        truth = exact_frequencies(stream)
        algo = LossyCounting(epsilon=0.02, universe_size=300)
        algo.consume(stream)
        for item, count in truth.items():
            assert algo.estimate(item) <= count

    def test_undercount_bounded_by_eps_m(self):
        rng = RandomSource(7)
        stream = zipfian_stream(6000, 300, skew=1.3, rng=rng)
        truth = exact_frequencies(stream)
        epsilon = 0.02
        algo = LossyCounting(epsilon=epsilon, universe_size=300)
        algo.consume(stream)
        for item, count in truth.items():
            assert algo.estimate(item) >= count - epsilon * len(stream) - 1

    def test_heavy_hitters_found(self):
        rng = RandomSource(8)
        stream = planted_heavy_hitters_stream(20000, 2000, {7: 0.15, 8: 0.1}, rng=rng)
        truth = exact_frequencies(stream)
        algo = LossyCounting(epsilon=0.02, universe_size=2000)
        algo.consume(stream)
        report = algo.report(phi=0.08)
        assert report.contains_all_heavy(truth)

    def test_pruning_keeps_table_small(self):
        algo = LossyCounting(epsilon=0.01, universe_size=100000)
        rng = RandomSource(9)
        stream = zipfian_stream(30000, 100000, skew=1.05, rng=rng)
        algo.consume(stream)
        # The classic bound: at most (1/eps) * log(eps*m) entries; allow slack.
        assert len(algo.entries) <= 4 * (1 / 0.01) * 12


class TestStickySampling:
    def test_heavy_hitters_found_with_high_probability(self):
        rng = RandomSource(10)
        stream = planted_heavy_hitters_stream(20000, 2000, {3: 0.2, 4: 0.1}, rng=rng)
        algo = StickySampling(
            epsilon=0.02, phi=0.08, delta=0.05, universe_size=2000, rng=RandomSource(11)
        )
        algo.consume(stream)
        report = algo.report()
        assert 3 in report
        assert 4 in report

    def test_estimates_never_exceed_truth(self):
        rng = RandomSource(12)
        stream = zipfian_stream(5000, 100, skew=1.4, rng=rng)
        truth = exact_frequencies(stream)
        algo = StickySampling(
            epsilon=0.05, phi=0.1, delta=0.1, universe_size=100, rng=RandomSource(13)
        )
        algo.consume(stream)
        for item in algo.entries:
            assert algo.estimate(item) <= truth.get(item, 0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StickySampling(epsilon=0.2, phi=0.1, delta=0.1, universe_size=10)
        with pytest.raises(ValueError):
            StickySampling(epsilon=0.05, phi=0.1, delta=1.5, universe_size=10)
