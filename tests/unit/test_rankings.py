"""Unit tests for repro.voting.rankings."""

import pytest

from repro.voting.rankings import Ranking, kendall_tau_distance


class TestRankingConstruction:
    def test_valid_permutation(self):
        ranking = Ranking([2, 0, 1])
        assert ranking.num_candidates == 3
        assert list(ranking) == [2, 0, 1]

    def test_invalid_permutations_rejected(self):
        with pytest.raises(ValueError):
            Ranking([0, 0, 1])
        with pytest.raises(ValueError):
            Ranking([0, 1, 3])

    def test_identity(self):
        assert list(Ranking.identity(4)) == [0, 1, 2, 3]

    def test_from_positions(self):
        ranking = Ranking.from_positions({0: 2, 1: 0, 2: 1})
        assert list(ranking) == [1, 2, 0]

    def test_equality_and_hash(self):
        assert Ranking([1, 0]) == Ranking([1, 0])
        assert Ranking([1, 0]) != Ranking([0, 1])
        assert hash(Ranking([1, 0])) == hash(Ranking([1, 0]))


class TestRankingQueries:
    def test_position_of(self):
        ranking = Ranking([2, 0, 1])
        assert ranking.position_of(2) == 0
        assert ranking.position_of(0) == 1
        assert ranking.position_of(1) == 2

    def test_prefers(self):
        ranking = Ranking([2, 0, 1])
        assert ranking.prefers(2, 0)
        assert ranking.prefers(0, 1)
        assert not ranking.prefers(1, 2)

    def test_candidates_beaten_by(self):
        ranking = Ranking([2, 0, 1])
        assert ranking.candidates_beaten_by(2) == 2
        assert ranking.candidates_beaten_by(0) == 1
        assert ranking.candidates_beaten_by(1) == 0

    def test_top_and_bottom(self):
        ranking = Ranking([3, 1, 0, 2])
        assert ranking.top() == 3
        assert ranking.bottom() == 2

    def test_reversed(self):
        ranking = Ranking([3, 1, 0, 2])
        assert list(ranking.reversed()) == [2, 0, 1, 3]

    def test_restricted_to_preserves_order(self):
        ranking = Ranking([3, 1, 0, 2])
        induced = ranking.restricted_to([0, 2, 3])
        # Kept candidates in preference order: 3, 0, 2 -> relabelled 2, 0, 1.
        assert list(induced) == [2, 0, 1]

    def test_getitem(self):
        ranking = Ranking([3, 1, 0, 2])
        assert ranking[0] == 3
        assert ranking[3] == 2


class TestKendallTau:
    def test_identical_rankings(self):
        a = Ranking([0, 1, 2, 3])
        assert kendall_tau_distance(a, a) == 0

    def test_reversed_rankings_are_maximal(self):
        a = Ranking([0, 1, 2, 3])
        b = a.reversed()
        assert kendall_tau_distance(a, b) == 6  # C(4, 2)

    def test_single_swap(self):
        a = Ranking([0, 1, 2])
        b = Ranking([1, 0, 2])
        assert kendall_tau_distance(a, b) == 1

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau_distance(Ranking([0, 1]), Ranking([0, 1, 2]))
