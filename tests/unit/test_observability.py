"""Tests for the observability layer: metrics, tracing, exposition, logging.

The contracts pinned here are the ones the rest of the repo leans on:

* the Prometheus text rendering is *golden* — a format regression is a test
  diff, not a silently broken dashboard;
* recording is thread-safe — the pipeline, the server's connection threads,
  and the replica group all write the same registry concurrently;
* a disabled registry is (near-)free — the hot paths bet on it;
* both exposure paths (frame-protocol ``metrics`` command, HTTP sidecar)
  render the same snapshot identically.
"""

import io
import json
import logging
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.baselines.misra_gries import MisraGries
from repro.observability import (
    JsonLogFormatter,
    MetricsHTTPServer,
    PROMETHEUS_CONTENT_TYPE,
    Tracer,
    configure_logging,
    get_registry,
    render_prometheus,
)
from repro.observability.metrics import METRICS_SCHEMA_VERSION, MetricRegistry
from repro.observability.tracing import NULL_TRACER
from repro.pipeline import ArrayBatchSource, PipelinedExecutor
from repro.service import IngestServer, STATS_SCHEMA_VERSION, ServiceClient


# -- registry semantics -----------------------------------------------------------------


def test_counter_gauge_histogram_basics():
    registry = MetricRegistry()
    counter = registry.counter("c_total", "a counter")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)

    gauge = registry.gauge("g", "a gauge")
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 3
    assert gauge.max == 5

    histogram = registry.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.sum == pytest.approx(5.55)


def test_registry_reregistration_is_idempotent_but_conflicts_raise():
    registry = MetricRegistry()
    first = registry.counter("x_total", "help", labels=("op",))
    again = registry.counter("x_total", "help", labels=("op",))
    assert first is again
    with pytest.raises(ValueError):
        registry.gauge("x_total", "different kind")
    with pytest.raises(ValueError):
        registry.counter("x_total", "different labels", labels=("other",))


def test_labeled_family_children_are_cached_and_validated():
    registry = MetricRegistry()
    family = registry.counter("cmd_total", "per-command", labels=("command",))
    family.labels(command="push").inc()
    family.labels(command="push").inc()
    family.labels(command="query").inc()
    assert family.labels(command="push") is family.labels(command="push")
    with pytest.raises(ValueError):
        family.labels(wrong="push")
    with pytest.raises(ValueError):
        family.inc()  # labeled family has no sole child
    series = registry.snapshot()["metrics"]["cmd_total"]["series"]
    assert {(s["labels"]["command"], s["value"]) for s in series} == {
        ("push", 2.0), ("query", 1.0),
    }


def test_snapshot_shape_and_schema_version():
    registry = MetricRegistry()
    registry.counter("a_total", "help a").inc()
    snapshot = registry.snapshot()
    assert snapshot["metrics_schema"] == METRICS_SCHEMA_VERSION
    assert snapshot["enabled"] is True
    assert snapshot["metrics"]["a_total"]["type"] == "counter"
    # JSON-safe end to end: the metrics command ships exactly this dict.
    json.dumps(snapshot)


# -- golden Prometheus text format ------------------------------------------------------


def test_prometheus_rendering_is_golden():
    registry = MetricRegistry()
    requests = registry.counter("requests_total", "Total requests.", labels=("command",))
    requests.labels(command="push").inc(3)
    requests.labels(command='we"ird\n').inc()
    registry.gauge("queue_depth", "Live queue depth.").set(2)
    # Exactly-representable observations so the rendered _sum is pinnable.
    histogram = registry.histogram("latency_seconds", "Latency.", buckets=(0.125, 1.0))
    for value in (0.0625, 0.0625, 0.5, 2.5):
        histogram.observe(value)
    # Snapshot sorts metric families by name; series sort by label values.
    expected = "\n".join([
        "# HELP latency_seconds Latency.",
        "# TYPE latency_seconds histogram",
        'latency_seconds_bucket{le="0.125"} 2',
        'latency_seconds_bucket{le="1"} 3',
        'latency_seconds_bucket{le="+Inf"} 4',
        "latency_seconds_sum 3.125",
        "latency_seconds_count 4",
        "# HELP queue_depth Live queue depth.",
        "# TYPE queue_depth gauge",
        "queue_depth 2",
        "# HELP requests_total Total requests.",
        "# TYPE requests_total counter",
        'requests_total{command="push"} 3',
        'requests_total{command="we\\"ird\\n"} 1',
        "",
    ])
    assert render_prometheus(registry.snapshot()) == expected


def test_prometheus_value_formatting_edge_cases():
    registry = MetricRegistry()
    registry.gauge("g_int", "").set(7.0)
    registry.gauge("g_float", "").set(0.125)
    text = render_prometheus(registry.snapshot())
    assert "g_int 7\n" in text        # integral floats render as integers
    assert "g_float 0.125" in text


# -- thread safety ----------------------------------------------------------------------


def test_concurrent_recording_loses_no_updates():
    registry = MetricRegistry()
    counter = registry.counter("n_total", "")
    gauge = registry.gauge("g", "")
    histogram = registry.histogram("h", "", buckets=(0.5,))
    labeled = registry.counter("l_total", "", labels=("worker",))
    per_thread, threads = 2_000, 8

    def record(worker: int) -> None:
        child = labeled.labels(worker=str(worker))
        for _ in range(per_thread):
            counter.inc()
            gauge.inc()
            histogram.observe(0.25)
            child.inc()

    workers = [threading.Thread(target=record, args=(i,)) for i in range(threads)]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    total = per_thread * threads
    assert counter.value == total
    assert gauge.value == total
    assert histogram.count == total
    assert histogram.sum == pytest.approx(0.25 * total)
    series = registry.snapshot()["metrics"]["l_total"]["series"]
    assert all(entry["value"] == per_thread for entry in series)
    assert len(series) == threads


# -- disabled-registry overhead guard ---------------------------------------------------


def test_disabled_registry_records_nothing():
    registry = MetricRegistry(enabled=False)
    counter = registry.counter("c_total", "")
    gauge = registry.gauge("g", "")
    histogram = registry.histogram("h", "")
    counter.inc(5)
    gauge.set(9)
    gauge.inc()
    histogram.observe(1.0)
    assert counter.value == 0
    assert gauge.value == 0
    assert gauge.max == 0
    assert histogram.count == 0
    snapshot = registry.snapshot()
    assert snapshot["enabled"] is False
    registry.enable()
    counter.inc()
    assert counter.value == 1
    registry.disable()
    counter.inc()
    assert counter.value == 1


def test_disabled_recording_is_cheap():
    """The disabled path is one attribute check — generously bounded per call.

    An absolute bound (not a relative throughput ratio) on purpose: CI machines
    are noisy, and the semantic half of the guard — no locks taken, nothing
    mutated — is asserted exactly in test_disabled_registry_records_nothing.
    """
    registry = MetricRegistry(enabled=False)
    counter = registry.counter("c_total", "")
    histogram = registry.histogram("h", "")
    calls = 50_000
    started = time.perf_counter()
    for _ in range(calls):
        counter.inc()
        histogram.observe(0.1)
    elapsed = time.perf_counter() - started
    assert elapsed / (2 * calls) < 20e-6  # 20 µs/call is ~100x the expected cost


# -- tracing ----------------------------------------------------------------------------


def test_tracer_writes_one_json_line_per_span(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(str(path)) as tracer:
        tracer.emit("ingest", seconds=0.25, chunk=3, items=1024)
        tracer.emit("combine", chunk=None)
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["span"] == "ingest"
    assert first["seconds"] == 0.25
    assert first["chunk"] == 3
    assert first["items"] == 1024
    assert isinstance(first["ts"], float)
    assert "seconds" not in json.loads(lines[1])


def test_tracer_concurrent_emits_stay_line_atomic():
    sink = io.StringIO()
    tracer = Tracer(sink)
    workers = [
        threading.Thread(
            target=lambda i=i: [tracer.emit("s", worker=i, n=j) for j in range(500)]
        )
        for i in range(6)
    ]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    lines = sink.getvalue().splitlines()
    assert len(lines) == 3_000
    for line in lines:
        json.loads(line)  # interleaved writes would break a line's JSON


def test_null_tracer_is_disabled_and_inert():
    assert NULL_TRACER.enabled is False
    NULL_TRACER.emit("anything", seconds=1.0)
    NULL_TRACER.close()


# -- exposition: HTTP sidecar and the metrics command -----------------------------------


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        return response.read().decode("utf-8")


def test_http_sidecar_serves_text_and_json():
    registry = MetricRegistry()
    registry.counter("hits_total", "Hits.").inc(2)
    with MetricsHTTPServer(registry, port=0) as sidecar:
        text = _scrape(sidecar.url)
        assert text == render_prometheus(registry.snapshot())
        assert "hits_total 2" in text
        with urllib.request.urlopen(
            sidecar.url.replace("/metrics", "/metrics.json"), timeout=10
        ) as response:
            snapshot = json.loads(response.read().decode("utf-8"))
        assert snapshot["metrics"]["hits_total"]["series"][0]["value"] == 2
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(sidecar.url.replace("/metrics", "/nope"), timeout=10)


def test_metrics_command_round_trip_matches_sidecar():
    """The frame-protocol snapshot renders byte-identically to a local render."""
    registry = MetricRegistry()
    sketch = MisraGries(epsilon=0.05, universe_size=256)
    server = IngestServer(
        PipelinedExecutor(sketch=sketch, chunk_size=64, registry=registry),
        port=0, registry=registry,
    )
    server.start()
    try:
        with ServiceClient(server.endpoint) as client:
            client.push(np.arange(128, dtype=np.int64) % 7)
            client.flush()
            reply = client.metrics()
            stats = client.stats()
    finally:
        server.close()
    assert reply["ok"] is True
    assert reply["metrics_schema"] == METRICS_SCHEMA_VERSION
    text = render_prometheus(reply)
    assert 'repro_service_commands_total{command="push"} 1' in text
    assert "repro_pipeline_chunks_total 2" in text
    # Satellite: the stats reply is schema v2 with the uniform sections.
    assert stats["stats_schema"] == STATS_SCHEMA_VERSION
    assert "degraded" in stats
    assert stats["pipeline"]["chunk_size"] == 64


# -- logging ----------------------------------------------------------------------------


def test_configure_logging_levels_and_json(capsys):
    stream = io.StringIO()
    configure_logging(level="info", json_format=True, stream=stream)
    try:
        logging.getLogger("repro.test").info("hello %s", "world")
        logging.getLogger("repro.test").debug("hidden")
        record = json.loads(stream.getvalue().strip())
        assert record["message"] == "hello world"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test"
        with pytest.raises(SystemExit):
            configure_logging(level="loud")
    finally:
        # Fully undo configure_logging: drop the handler (it is bound to this
        # test's stream) and re-enable propagation so other tests' caplog
        # fixtures keep seeing repro.* records through the root logger.
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            root.removeHandler(handler)
        root.setLevel(logging.NOTSET)
        root.propagate = True


def test_json_formatter_includes_exceptions():
    formatter = JsonLogFormatter()
    try:
        raise RuntimeError("boom")
    except RuntimeError:
        record = logging.LogRecord(
            "repro.t", logging.ERROR, __file__, 1, "failed", None, sys.exc_info()
        )
    payload = json.loads(formatter.format(record))
    assert payload["message"] == "failed"
    assert "RuntimeError: boom" in payload["exception"]


# -- pipeline instrumentation -----------------------------------------------------------


def test_pipeline_metrics_and_trace_spans(tmp_path):
    registry = MetricRegistry()
    trace_path = tmp_path / "spans.jsonl"
    tracer = Tracer(str(trace_path))
    sketch = MisraGries(epsilon=0.05, universe_size=64)
    executor = PipelinedExecutor(
        sketch=sketch, chunk_size=16, queue_depth=2, registry=registry, tracer=tracer,
    )
    items = np.arange(80, dtype=np.int64) % 5
    result = executor.run(ArrayBatchSource(items))
    tracer.close()
    assert result.report is not None
    metrics = registry.snapshot()["metrics"]
    assert metrics["repro_pipeline_chunks_total"]["series"][0]["value"] == 5
    assert metrics["repro_pipeline_items_total"]["series"][0]["value"] == 80
    assert metrics["repro_pipeline_chunk_ingest_seconds"]["series"][0]["count"] == 5
    spans = [json.loads(line)["span"] for line in trace_path.read_text().splitlines()]
    assert spans.count("produce") == 5
    assert spans.count("enqueue") == 5
    assert spans.count("ingest") == 5
    assert spans.count("combine") == 1


def test_default_registry_is_process_wide():
    assert get_registry() is get_registry()
