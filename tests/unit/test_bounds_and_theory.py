"""Unit tests for the Table 1 formulas (lowerbounds.bounds) and analysis.theory."""

import math

import pytest

from repro.analysis.theory import (
    heavy_hitters_crossover_universe_size,
    improvement_factor,
    scaling_exponent,
    space_ratio_to_bound,
)
from repro.lowerbounds.bounds import (
    TABLE1_ROWS,
    borda_lower_bound_bits,
    borda_upper_bound_bits,
    heavy_hitters_lower_bound_bits,
    heavy_hitters_upper_bound_bits,
    maximin_lower_bound_bits,
    maximin_upper_bound_bits,
    maximum_upper_bound_bits,
    minimum_lower_bound_bits,
    minimum_upper_bound_bits,
    misra_gries_bound_bits,
)


class TestTable1Formulas:
    def test_heavy_hitters_bounds_match(self):
        """The paper's upper and lower bounds for heavy hitters are the same expression."""
        assert heavy_hitters_upper_bound_bits(0.01, 0.05, 2**20, 10**6) == pytest.approx(
            heavy_hitters_lower_bound_bits(0.01, 0.05, 2**20, 10**6)
        )

    def test_heavy_hitters_terms(self):
        value = heavy_hitters_upper_bound_bits(0.01, 0.05, 2**20, 2**30)
        expected = 100 * math.log2(20) + 20 * 20 + math.log2(30)
        assert value == pytest.approx(expected)

    def test_minimum_upper_below_heavy_hitters(self):
        """The point of Theorem 4: eps-Minimum needs far less than (eps, eps)-HH."""
        epsilon, m = 0.01, 10**6
        assert minimum_upper_bound_bits(epsilon, m) < heavy_hitters_upper_bound_bits(
            epsilon, epsilon, 2**20, m
        )

    def test_minimum_lower_below_upper(self):
        assert minimum_lower_bound_bits(0.01, 10**6) <= minimum_upper_bound_bits(0.01, 10**6) * 5

    def test_maximin_much_larger_than_borda(self):
        """Theorem 6 vs Theorem 5: maximin costs a factor ~eps^-2 more than Borda."""
        epsilon, n, m = 0.05, 50, 10**6
        assert maximin_upper_bound_bits(epsilon, n, m) > 10 * borda_upper_bound_bits(epsilon, n, m)

    def test_borda_lower_below_upper(self):
        assert borda_lower_bound_bits(0.1, 20, 10**4) <= borda_upper_bound_bits(0.1, 20, 10**4)

    def test_maximin_lower_below_upper(self):
        assert maximin_lower_bound_bits(0.1, 20, 10**4) <= maximin_upper_bound_bits(0.1, 20, 10**4)

    def test_maximum_grows_with_inverse_epsilon(self):
        assert maximum_upper_bound_bits(0.001, 1000, 10**6) > maximum_upper_bound_bits(
            0.1, 1000, 10**6
        )

    def test_table_rows_cover_all_problems(self):
        assert set(TABLE1_ROWS) == {"heavy_hitters", "maximum", "minimum", "borda", "maximin"}
        for row in TABLE1_ROWS.values():
            assert callable(row.upper_bound)
            assert callable(row.lower_bound)

    def test_table_rows_evaluate(self):
        params = {"epsilon": 0.01, "phi": 0.05, "n": 2**16, "m": 10**6}
        for key, row in TABLE1_ROWS.items():
            kwargs = {name: params[name] for name in row.parameters}
            assert row.upper_bound(**kwargs) > 0
            assert row.lower_bound(**kwargs) > 0

    def test_misra_gries_grows_with_log_n_times_inverse_eps(self):
        small = misra_gries_bound_bits(0.01, 2**10, 10**6)
        large = misra_gries_bound_bits(0.01, 2**30, 10**6)
        assert large - small == pytest.approx(100 * 20)


class TestPaperHeadlineComparisons:
    def test_paper_bound_beats_misra_gries_for_large_n(self):
        """The nearly-quadratic gap the introduction highlights, at log n ~ 1/eps."""
        epsilon, phi, m = 0.01, 0.1, 10**9
        n = 2 ** int(1 / epsilon)
        ours = heavy_hitters_upper_bound_bits(epsilon, phi, n, m)
        theirs = misra_gries_bound_bits(epsilon, n, m)
        assert theirs > 5 * ours

    def test_crossover_universe_size_is_finite(self):
        crossover = heavy_hitters_crossover_universe_size(0.01, 0.05, 10**6)
        assert 2 <= crossover <= 2**60
        # Beyond the crossover the improvement factor exceeds one and keeps growing.
        assert improvement_factor(0.01, 0.05, crossover * 4, 10**6) > 1.0

    def test_improvement_factor_increases_with_n(self):
        small = improvement_factor(0.01, 0.05, 2**12, 10**6)
        large = improvement_factor(0.01, 0.05, 2**40, 10**6)
        assert large > small


class TestScalingTools:
    def test_scaling_exponent_linear(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x for x in xs]
        assert scaling_exponent(xs, ys) == pytest.approx(1.0, abs=0.01)

    def test_scaling_exponent_quadratic(self):
        xs = [1, 2, 4, 8]
        ys = [5 * x * x for x in xs]
        assert scaling_exponent(xs, ys) == pytest.approx(2.0, abs=0.01)

    def test_scaling_exponent_constant(self):
        xs = [1, 2, 4, 8]
        ys = [7, 7, 7, 7]
        assert abs(scaling_exponent(xs, ys)) < 0.01

    def test_scaling_exponent_validation(self):
        with pytest.raises(ValueError):
            scaling_exponent([1], [1])
        with pytest.raises(ValueError):
            scaling_exponent([1, 1], [1, 2])

    def test_space_ratio_to_bound(self):
        stats = space_ratio_to_bound([10, 20, 40], [5, 10, 20])
        assert stats["min_ratio"] == pytest.approx(2.0)
        assert stats["max_ratio"] == pytest.approx(2.0)
        assert stats["spread"] == pytest.approx(1.0)

    def test_space_ratio_validation(self):
        with pytest.raises(ValueError):
            space_ratio_to_bound([1, 2], [1])
