"""Unit tests for repro.analysis.metrics and repro.analysis.harness."""

import pytest

from repro.analysis.harness import (
    ExperimentRow,
    format_table,
    run_algorithm_on_stream,
    run_heavy_hitter_comparison,
    run_pipelined_comparison,
    run_sharded_comparison,
    run_space_scaling_experiment,
)
from repro.analysis.metrics import (
    evaluate_heavy_hitters,
    frequency_error_statistics,
    score_error_statistics,
    winner_is_approximate,
)
from repro.baselines.misra_gries import MisraGries
from repro.core.results import HeavyHittersReport, ScoreReport
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream, uniform_stream


class TestHeavyHitterMetrics:
    def make_report(self, items):
        return HeavyHittersReport(items=items, stream_length=1000, epsilon=0.05, phi=0.1)

    def test_perfect_report(self):
        truth = {1: 300, 2: 150, 3: 20}
        accuracy = evaluate_heavy_hitters(self.make_report({1: 300.0, 2: 150.0}), truth)
        assert accuracy.recall == 1.0
        assert accuracy.precision == 1.0
        assert accuracy.f1 == 1.0
        assert accuracy.max_frequency_error == 0.0
        assert accuracy.satisfies_definition

    def test_missing_heavy_item_lowers_recall(self):
        truth = {1: 300, 2: 150}
        accuracy = evaluate_heavy_hitters(self.make_report({1: 300.0}), truth)
        assert accuracy.recall == 0.5
        assert not accuracy.satisfies_definition

    def test_light_item_lowers_precision(self):
        truth = {1: 300, 9: 10}
        accuracy = evaluate_heavy_hitters(self.make_report({1: 300.0, 9: 10.0}), truth)
        assert accuracy.precision == 0.5

    def test_empty_report_and_no_heavy_items(self):
        truth = {5: 20}
        accuracy = evaluate_heavy_hitters(self.make_report({}), truth)
        assert accuracy.recall == 1.0
        assert accuracy.precision == 1.0

    def test_frequency_error_statistics(self):
        stats = frequency_error_statistics({1: 95.0, 2: 50.0}, {1: 100, 2: 40}, stream_length=1000)
        assert stats["max_abs_error"] == pytest.approx(10.0)
        assert stats["mean_abs_error"] == pytest.approx(7.5)
        assert stats["max_relative_error"] == pytest.approx(0.01)

    def test_empty_estimates(self):
        stats = frequency_error_statistics({}, {}, stream_length=10)
        assert stats["max_abs_error"] == 0.0


class TestScoreMetrics:
    def test_score_error_statistics(self):
        report = ScoreReport(scores={0: 10.0, 1: 20.0}, stream_length=5, epsilon=0.1)
        stats = score_error_statistics(report, {0: 12.0, 1: 20.0}, normalizer=100.0)
        assert stats["max_abs_error"] == pytest.approx(2.0)
        assert stats["max_normalized_error"] == pytest.approx(0.02)

    def test_winner_is_approximate(self):
        assert winner_is_approximate(1, {0: 100.0, 1: 99.0}, tolerance=5.0)
        assert not winner_is_approximate(1, {0: 100.0, 1: 50.0}, tolerance=5.0)
        assert winner_is_approximate(3, {}, tolerance=1.0)


class TestHarness:
    def test_run_algorithm_on_stream_measurements(self):
        stream = uniform_stream(2000, 100, rng=RandomSource(1))
        algo = MisraGries(epsilon=0.05, universe_size=100)
        measurements = run_algorithm_on_stream(algo, stream)
        assert measurements["space_bits"] > 0
        assert measurements["total_seconds"] >= 0
        assert measurements["updates_per_second"] > 0

    def test_run_heavy_hitter_comparison(self):
        stream = planted_heavy_hitters_stream(
            5000, 200, {1: 0.3, 2: 0.1}, rng=RandomSource(2)
        )
        rows = run_heavy_hitter_comparison(
            {
                "misra-gries": lambda: MisraGries(epsilon=0.02, universe_size=200),
            },
            stream,
            phi=0.08,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.label == "misra-gries"
        assert row.measurements["recall"] == 1.0
        assert row.parameters["m"] == 5000

    def test_run_sharded_comparison(self):
        stream = planted_heavy_hitters_stream(
            20_000, 500, {1: 0.3, 2: 0.1}, rng=RandomSource(4)
        )
        rng = RandomSource(5)
        rows = run_sharded_comparison(
            factory=lambda instance: MisraGries(epsilon=0.02, universe_size=500),
            stream=stream,
            phi=0.08,
            shard_counts=(2, 4),
            rng=rng,
            report_kwargs={"phi": 0.08},
        )
        assert [row.label for row in rows] == ["single", "sharded(k=2)", "sharded(k=4)"]
        for row in rows:
            # The combine-phase accuracy check: every run, sharded or not, keeps the
            # (eps, phi) guarantee on this planted stream.
            assert row.measurements["recall"] == 1.0
            assert row.measurements["precision"] == 1.0
            assert row.measurements["satisfies_definition"] == 1.0
        assert rows[1].measurements["report_symmetric_difference"] == 0.0
        assert rows[1].parameters["shards"] == 2
        # k sharded tables cost more bits than one.
        assert rows[2].measurements["space_bits"] > rows[0].measurements["space_bits"]

    def test_run_sharded_comparison_records_timing_split(self):
        stream = planted_heavy_hitters_stream(
            5_000, 200, {1: 0.3}, rng=RandomSource(14)
        )
        rows = run_sharded_comparison(
            factory=lambda instance: MisraGries(epsilon=0.02, universe_size=200),
            stream=stream,
            phi=0.1,
            shard_counts=(2,),
            rng=RandomSource(15),
            report_kwargs={"phi": 0.1},
        )
        for row in rows:
            assert row.measurements["ingest_seconds"] >= 0.0
            assert row.measurements["combine_seconds"] >= 0.0
            assert row.measurements["total_seconds"] == pytest.approx(
                row.measurements["ingest_seconds"] + row.measurements["combine_seconds"]
            )

    def test_run_pipelined_comparison(self, tmp_path):
        import os

        from repro.streams.io import save_stream

        stream = planted_heavy_hitters_stream(
            20_000, 500, {1: 0.3, 2: 0.1}, rng=RandomSource(6)
        )
        path = os.path.join(tmp_path, "trace.txt")
        save_stream(stream, path)
        rows = run_pipelined_comparison(
            factory=lambda instance: MisraGries(epsilon=0.02, universe_size=500),
            path=path,
            phi=0.08,
            shards=2,
            chunk_size=1024,
            queue_depth=3,
            rng=RandomSource(7),
            report_kwargs={"phi": 0.08},
        )
        assert [row.label for row in rows] == ["serial", "pipelined"]
        # The pipeline contract: bit-for-bit the same report as the serial replay.
        assert rows[1].measurements["identical_report"] == 1.0
        assert rows[1].measurements["report_symmetric_difference"] == 0.0
        for row in rows:
            assert row.measurements["recall"] == 1.0
            assert row.measurements["satisfies_definition"] == 1.0
            assert row.measurements["total_seconds"] == pytest.approx(
                row.measurements["ingest_seconds"] + row.measurements["combine_seconds"]
            )
            assert row.parameters["shards"] == 2
            assert row.parameters["queue_depth"] == 3

    def test_run_space_scaling_experiment(self):
        grid = [{"epsilon": 0.1}, {"epsilon": 0.05}]
        rows = run_space_scaling_experiment(
            factory=lambda p: MisraGries(epsilon=p["epsilon"], universe_size=100),
            stream_factory=lambda p: uniform_stream(500, 100, rng=RandomSource(3)),
            parameter_grid=grid,
        )
        assert len(rows) == 2
        assert rows[1].measurements["space_bits"] > rows[0].measurements["space_bits"]

    def test_format_table(self):
        rows = [
            ExperimentRow(label="a", parameters={"eps": 0.1}, measurements={"bits": 12.0}),
            ExperimentRow(label="b", parameters={"eps": 0.2}, measurements={"bits": 24.0}),
        ]
        table = format_table(rows)
        assert "| label | eps | bits |" in table
        assert "| a | 0.1 | 12 |" in table
        assert format_table([]) == "(no rows)"
