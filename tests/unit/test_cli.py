"""Tests for the command-line interface (repro.cli)."""

import os

import pytest

from repro.cli import main
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream
from repro.streams.io import save_election, save_stream
from repro.voting.elections import Election
from repro.voting.generators import mallows_votes
from repro.voting.rankings import Ranking


@pytest.fixture
def planted_trace(tmp_path):
    stream = planted_heavy_hitters_stream(
        8000, 300, {5: 0.3, 9: 0.1}, rng=RandomSource(1)
    )
    path = os.path.join(tmp_path, "trace.txt")
    save_stream(stream, path)
    return path


@pytest.fixture
def election_file(tmp_path):
    reference = Ranking([2, 0, 1, 3])
    votes = mallows_votes(600, 4, dispersion=0.3, reference=reference, rng=RandomSource(2))
    election = Election(num_candidates=4, votes=votes)
    path = os.path.join(tmp_path, "votes.txt")
    save_election(election, path)
    return path


class TestGenerate:
    def test_generate_zipf(self, tmp_path, capsys):
        output = os.path.join(tmp_path, "zipf.txt")
        code = main(["generate", output, "--kind", "zipf", "--length", "1000",
                     "--universe", "100", "--seed", "3"])
        assert code == 0
        assert os.path.exists(output)
        assert "wrote 1000 items" in capsys.readouterr().out

    def test_generate_planted_with_heavy_spec(self, tmp_path, capsys):
        output = os.path.join(tmp_path, "planted.txt")
        code = main(["generate", output, "--kind", "planted", "--length", "2000",
                     "--universe", "50", "--heavy", "3:0.4", "--heavy", "7:0.2",
                     "--seed", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2000 items" in out

    def test_generate_bad_heavy_spec(self, tmp_path):
        output = os.path.join(tmp_path, "bad.txt")
        with pytest.raises(SystemExit):
            main(["generate", output, "--kind", "planted", "--heavy", "nonsense"])


class TestHeavyHitters:
    def test_simple_algorithm(self, planted_trace, capsys):
        code = main(["heavy-hitters", planted_trace, "--epsilon", "0.05", "--phi", "0.1",
                     "--algorithm", "simple", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "space_bits:" in out
        assert "item 5" in out

    def test_misra_gries_algorithm(self, planted_trace, capsys):
        code = main(["heavy-hitters", planted_trace, "--epsilon", "0.05", "--phi", "0.1",
                     "--algorithm", "misra-gries"])
        assert code == 0
        out = capsys.readouterr().out
        assert "item 5" in out

    def test_optimal_algorithm(self, planted_trace, capsys):
        code = main(["heavy-hitters", planted_trace, "--epsilon", "0.05", "--phi", "0.1",
                     "--algorithm", "optimal", "--seed", "6"])
        assert code == 0
        assert "item 5" in capsys.readouterr().out

    def test_batched_replay_matches_flags(self, planted_trace, capsys):
        code = main(["heavy-hitters", planted_trace, "--epsilon", "0.05", "--phi", "0.1",
                     "--algorithm", "optimal", "--seed", "6", "--batch-size", "1024"])
        assert code == 0
        assert "item 5" in capsys.readouterr().out

    def test_sharded_serial_run(self, planted_trace, capsys):
        code = main(["heavy-hitters", planted_trace, "--epsilon", "0.05", "--phi", "0.1",
                     "--algorithm", "optimal", "--seed", "6", "--shards", "3",
                     "--batch-size", "2048"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shards: 3" in out
        assert "driver: serial" in out
        assert "item 5" in out

    def test_sharded_parallel_run(self, planted_trace, capsys):
        code = main(["heavy-hitters", planted_trace, "--epsilon", "0.05", "--phi", "0.1",
                     "--algorithm", "misra-gries", "--shards", "2", "--parallel"])
        assert code == 0
        out = capsys.readouterr().out
        assert "driver: parallel" in out
        assert "item 5" in out

    def test_parallel_requires_shards(self, planted_trace):
        with pytest.raises(SystemExit):
            main(["heavy-hitters", planted_trace, "--parallel"])

    def test_pipelined_single_matches_serial_batched(self, planted_trace, capsys):
        # Same seed and same chunk boundaries: the pipelined replay must print
        # exactly the same report lines as the serial batched replay.
        args = ["heavy-hitters", planted_trace, "--epsilon", "0.05", "--phi", "0.1",
                "--algorithm", "simple", "--seed", "8", "--batch-size", "1024"]
        assert main(args) == 0
        serial_items = [line for line in capsys.readouterr().out.splitlines()
                        if line.startswith(("item", "reported"))]
        assert main(args + ["--pipelined", "--queue-depth", "2"]) == 0
        out = capsys.readouterr().out
        pipelined_items = [line for line in out.splitlines()
                           if line.startswith(("item", "reported"))]
        assert pipelined_items == serial_items
        assert "pipelined: queue_depth=2" in out
        assert "item 5" in out

    def test_pipelined_sharded_run(self, planted_trace, capsys):
        code = main(["heavy-hitters", planted_trace, "--epsilon", "0.05", "--phi", "0.1",
                     "--algorithm", "optimal", "--seed", "6", "--shards", "3",
                     "--batch-size", "2048", "--pipelined"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shards: 3" in out
        assert "driver: pipelined" in out
        assert "item 5" in out

    def test_pipelined_rejects_parallel(self, planted_trace):
        with pytest.raises(SystemExit):
            main(["heavy-hitters", planted_trace, "--shards", "2",
                  "--pipelined", "--parallel"])


class TestMaximumMinimum:
    def test_maximum(self, planted_trace, capsys):
        code = main(["maximum", planted_trace, "--epsilon", "0.05", "--seed", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "maximum_item: 5" in out

    def test_minimum(self, tmp_path, capsys):
        # A small-universe stream where item 7 never appears.
        from repro.streams.stream import Stream

        stream = Stream(items=[i % 7 for i in range(5000)], universe_size=8)
        path = os.path.join(tmp_path, "small.txt")
        save_stream(stream, path)
        code = main(["minimum", path, "--epsilon", "0.05", "--seed", "8"])
        assert code == 0
        assert "minimum_item: 7" in capsys.readouterr().out


class TestVotingCommands:
    def test_borda(self, election_file, capsys):
        code = main(["borda", election_file, "--epsilon", "0.05", "--seed", "9"])
        assert code == 0
        out = capsys.readouterr().out
        assert "approximate_winner: 2" in out
        assert "borda" in out

    def test_maximin_with_phi(self, election_file, capsys):
        code = main(["maximin", election_file, "--epsilon", "0.05", "--phi", "0.5",
                     "--seed", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "approximate_winner: 2" in out
        assert "heavy_candidates:" in out


class TestBoundsCommand:
    def test_bounds_prints_all_rows(self, capsys):
        code = main(["bounds", "--epsilon", "0.01", "--phi", "0.05",
                     "--universe", "1048576", "--stream-length", "1000000"])
        assert code == 0
        out = capsys.readouterr().out
        for problem in ("heavy_hitters", "maximum", "minimum", "borda", "maximin"):
            assert problem in out
        assert "upper_bits" in out
