"""Unit tests for repro.streams.io (on-disk stream and election formats)."""

import os

import pytest

from repro.primitives.rng import RandomSource
from repro.streams.generators import zipfian_stream
import numpy as np

from repro.streams.io import (
    iterate_stream_file,
    iterate_stream_file_chunks,
    load_election,
    load_stream,
    save_election,
    save_stream,
    stream_file_metadata,
    stream_file_statistics,
)
from repro.streams.stream import Stream
from repro.voting.elections import Election
from repro.voting.generators import impartial_culture


class TestStreamRoundTrip:
    def test_round_trip_preserves_items_and_universe(self, tmp_path):
        stream = zipfian_stream(500, 64, skew=1.3, rng=RandomSource(1))
        path = os.path.join(tmp_path, "trace.txt")
        save_stream(stream, path)
        loaded = load_stream(path)
        assert list(loaded) == list(stream)
        assert loaded.universe_size == stream.universe_size

    def test_universe_override(self, tmp_path):
        stream = Stream(items=[0, 1, 2], universe_size=3, name="tiny")
        path = os.path.join(tmp_path, "tiny.txt")
        save_stream(stream, path)
        loaded = load_stream(path, universe_size=100)
        assert loaded.universe_size == 100

    def test_round_trip_preserves_metadata_exactly(self, tmp_path):
        # Regression: load_stream used to silently drop the '# meta key: value'
        # lines save_stream writes, breaking the documented round-trip contract.
        metadata = {
            "skew": 1.2,
            "kind": "zipf",
            "seed": 20160626,
            "planted": {7: 0.25, 9: 0.1},
            "tags": ("bench", "zipf"),
            "validated": True,
            "note": None,
        }
        stream = Stream(items=[0, 3, 3, 7], universe_size=16, name="meta", metadata=metadata)
        path = os.path.join(tmp_path, "meta_roundtrip.txt")
        save_stream(stream, path)
        loaded = load_stream(path)
        assert loaded.metadata == metadata
        assert loaded.name == "meta"
        assert list(loaded) == list(stream)

    def test_non_literal_metadata_degrades_to_repr_string(self, tmp_path):
        stream = Stream(items=[0], universe_size=2, metadata={"rng": object()})
        path = os.path.join(tmp_path, "odd_meta.txt")
        save_stream(stream, path)
        loaded = load_stream(path)
        assert isinstance(loaded.metadata["rng"], str)
        assert loaded.metadata["rng"].startswith("<object object")

    def test_metadata_key_with_colon_rejected_at_save(self, tmp_path):
        stream = Stream(items=[0], universe_size=2, metadata={"bad:key": 1})
        with pytest.raises(ValueError):
            save_stream(stream, os.path.join(tmp_path, "bad.txt"))

    def test_multiline_repr_metadata_rejected_at_save(self, tmp_path):
        import numpy as np

        stream = Stream(items=[0], universe_size=2, metadata={"hist": np.arange(40)})
        with pytest.raises(ValueError, match="multiline repr"):
            save_stream(stream, os.path.join(tmp_path, "multi.txt"))

    def test_bad_metadata_never_truncates_an_existing_file(self, tmp_path):
        path = os.path.join(tmp_path, "precious.txt")
        save_stream(Stream(items=[0, 1], universe_size=2, name="precious"), path)
        before = open(path).read()
        import numpy as np

        # Strings with newlines are fine (repr escapes them); keys with ':' and
        # values with genuinely multiline reprs are rejected before the file opens.
        assert repr("line\nbreak") == "'line\\nbreak'"
        for metadata in ({"bad:key": 1}, {"v": np.arange(40)}):
            with pytest.raises(ValueError):
                save_stream(Stream(items=[0], universe_size=2, metadata=metadata), path)
            assert open(path).read() == before

    def test_explicit_zero_universe_rejected(self, tmp_path):
        # Regression: 'universe_size or header_universe' treated an explicit 0 as
        # unset and silently fell back to the header.
        stream = Stream(items=[0, 1, 2], universe_size=3)
        path = os.path.join(tmp_path, "zero.txt")
        save_stream(stream, path)
        with pytest.raises(ValueError, match="universe_size must be positive"):
            load_stream(path, universe_size=0)
        with pytest.raises(ValueError, match="universe_size must be positive"):
            load_stream(path, universe_size=-5)

    def test_too_small_universe_fails_at_load_time(self, tmp_path):
        stream = Stream(items=[0, 7, 3], universe_size=8)
        path = os.path.join(tmp_path, "small.txt")
        save_stream(stream, path)
        with pytest.raises(ValueError, match="outside the resolved universe"):
            load_stream(path, universe_size=4)

    def test_corrupt_header_universe_fails_at_load_time(self, tmp_path):
        path = os.path.join(tmp_path, "corrupt.txt")
        with open(path, "w") as handle:
            handle.write("# universe_size: 2\n5\n1\n")
        with pytest.raises(ValueError, match="outside the resolved universe"):
            load_stream(path)

    def test_load_headerless_file(self, tmp_path):
        path = os.path.join(tmp_path, "raw.txt")
        with open(path, "w") as handle:
            handle.write("3\n1\n4\n1\n5\n")
        loaded = load_stream(path)
        assert list(loaded) == [3, 1, 4, 1, 5]
        assert loaded.universe_size == 6

    def test_iterate_stream_file_is_lazy_and_complete(self, tmp_path):
        stream = zipfian_stream(200, 16, skew=1.1, rng=RandomSource(2))
        path = os.path.join(tmp_path, "lazy.txt")
        save_stream(stream, path)
        iterator = iterate_stream_file(path)
        assert list(iterator) == list(stream)

    def test_stream_file_statistics(self, tmp_path):
        stream = Stream(items=[0, 3, 3, 7], universe_size=8)
        path = os.path.join(tmp_path, "stats.txt")
        save_stream(stream, path)
        stats = stream_file_statistics(path)
        assert stats == {"length": 4, "max_item": 7, "distinct_items": 3}

    def test_creates_directories(self, tmp_path):
        stream = Stream(items=[0], universe_size=1)
        path = os.path.join(tmp_path, "nested", "dir", "s.txt")
        save_stream(stream, path)
        assert os.path.exists(path)

    def test_chunked_iteration_concatenates_to_the_file(self, tmp_path):
        stream = zipfian_stream(1000, 64, skew=1.2, rng=RandomSource(7))
        path = os.path.join(tmp_path, "chunked.txt")
        save_stream(stream, path)
        chunks = list(iterate_stream_file_chunks(path, chunk_size=97))
        assert all(isinstance(chunk, np.ndarray) and chunk.dtype == np.int64 for chunk in chunks)
        assert all(chunk.size <= 97 for chunk in chunks)
        assert np.concatenate(chunks).tolist() == list(stream)

    def test_chunked_iteration_single_big_chunk_and_validation(self, tmp_path):
        stream = Stream(items=[3, 1, 4], universe_size=8)
        path = os.path.join(tmp_path, "one.txt")
        save_stream(stream, path)
        chunks = list(iterate_stream_file_chunks(path, chunk_size=1000))
        assert len(chunks) == 1
        assert chunks[0].tolist() == [3, 1, 4]
        with pytest.raises(ValueError):
            next(iterate_stream_file_chunks(path, chunk_size=0))

    def test_chunked_iteration_feeds_insert_many(self, tmp_path):
        from repro.baselines.exact import ExactCounter
        from repro.streams.truth import exact_frequencies

        stream = zipfian_stream(3000, 128, skew=1.1, rng=RandomSource(8))
        path = os.path.join(tmp_path, "replay.txt")
        save_stream(stream, path)
        counter = ExactCounter(128)
        for chunk in iterate_stream_file_chunks(path, chunk_size=256):
            counter.insert_many(chunk)
        assert counter.frequencies() == exact_frequencies(stream)

    def test_stream_file_metadata_prefers_header_universe(self, tmp_path):
        stream = Stream(items=[0, 3, 3, 7], universe_size=100)
        path = os.path.join(tmp_path, "meta.txt")
        save_stream(stream, path)
        metadata = stream_file_metadata(path)
        assert metadata["universe_size"] == 100
        assert metadata["length"] == 4
        assert metadata["max_item"] == 7

    def test_stream_file_metadata_infers_universe_without_header(self, tmp_path):
        path = os.path.join(tmp_path, "raw.txt")
        with open(path, "w") as handle:
            handle.write("3\n1\n4\n")
        metadata = stream_file_metadata(path)
        assert metadata["universe_size"] == 5

    def test_stream_file_metadata_accepts_header_after_data(self, tmp_path):
        # load_stream accepts the header anywhere in the file; the metadata pass
        # must agree, or CLI replay would size sketches differently.
        path = os.path.join(tmp_path, "late_header.txt")
        with open(path, "w") as handle:
            handle.write("3\n1\n# universe_size: 50\n4\n")
        metadata = stream_file_metadata(path)
        assert metadata["universe_size"] == 50
        assert metadata["universe_size"] == load_stream(path).universe_size


class TestElectionRoundTrip:
    def test_round_trip(self, tmp_path):
        votes = impartial_culture(30, 5, rng=RandomSource(3))
        election = Election(num_candidates=5, votes=votes)
        path = os.path.join(tmp_path, "election.txt")
        save_election(election, path)
        loaded = load_election(path)
        assert loaded.num_candidates == 5
        assert len(loaded) == 30
        assert [tuple(v.order) for v in loaded.votes] == [tuple(v.order) for v in votes]

    def test_round_trip_preserves_winners(self, tmp_path):
        votes = impartial_culture(80, 4, rng=RandomSource(4))
        election = Election(num_candidates=4, votes=votes)
        path = os.path.join(tmp_path, "e2.txt")
        save_election(election, path)
        loaded = load_election(path)
        assert loaded.borda_scores() == election.borda_scores()
        assert loaded.maximin_scores() == election.maximin_scores()

    def test_load_headerless_election(self, tmp_path):
        path = os.path.join(tmp_path, "raw_votes.txt")
        with open(path, "w") as handle:
            handle.write("0 1 2\n2 1 0\n")
        loaded = load_election(path)
        assert loaded.num_candidates == 3
        assert len(loaded) == 2


class TestStreamingFromDisk:
    def test_algorithm_consumes_file_iterator(self, tmp_path):
        """End to end: a heavy-hitters algorithm consuming an on-disk trace lazily."""
        from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
        from repro.streams.generators import planted_heavy_hitters_stream
        from repro.streams.truth import exact_frequencies

        stream = planted_heavy_hitters_stream(
            8000, 200, {5: 0.3, 9: 0.1}, rng=RandomSource(5)
        )
        path = os.path.join(tmp_path, "trace.txt")
        save_stream(stream, path)
        stats = stream_file_statistics(path)
        algo = SimpleListHeavyHitters(
            epsilon=0.05, phi=0.1, universe_size=200,
            stream_length=stats["length"], rng=RandomSource(6),
        )
        algo.consume(iterate_stream_file(path))
        report = algo.report()
        assert report.satisfies_definition(exact_frequencies(stream))
        assert 5 in report
