"""Unit tests for repro.streams.io (on-disk stream and election formats)."""

import os

import pytest

from repro.primitives.rng import RandomSource
from repro.streams.generators import zipfian_stream
import numpy as np

from repro.streams.io import (
    iterate_stream_file,
    iterate_stream_file_chunks,
    load_election,
    load_stream,
    save_election,
    save_stream,
    stream_file_metadata,
    stream_file_statistics,
)
from repro.streams.stream import Stream
from repro.voting.elections import Election
from repro.voting.generators import impartial_culture


class TestStreamRoundTrip:
    def test_round_trip_preserves_items_and_universe(self, tmp_path):
        stream = zipfian_stream(500, 64, skew=1.3, rng=RandomSource(1))
        path = os.path.join(tmp_path, "trace.txt")
        save_stream(stream, path)
        loaded = load_stream(path)
        assert list(loaded) == list(stream)
        assert loaded.universe_size == stream.universe_size

    def test_universe_override(self, tmp_path):
        stream = Stream(items=[0, 1, 2], universe_size=3, name="tiny")
        path = os.path.join(tmp_path, "tiny.txt")
        save_stream(stream, path)
        loaded = load_stream(path, universe_size=100)
        assert loaded.universe_size == 100

    def test_load_headerless_file(self, tmp_path):
        path = os.path.join(tmp_path, "raw.txt")
        with open(path, "w") as handle:
            handle.write("3\n1\n4\n1\n5\n")
        loaded = load_stream(path)
        assert list(loaded) == [3, 1, 4, 1, 5]
        assert loaded.universe_size == 6

    def test_iterate_stream_file_is_lazy_and_complete(self, tmp_path):
        stream = zipfian_stream(200, 16, skew=1.1, rng=RandomSource(2))
        path = os.path.join(tmp_path, "lazy.txt")
        save_stream(stream, path)
        iterator = iterate_stream_file(path)
        assert list(iterator) == list(stream)

    def test_stream_file_statistics(self, tmp_path):
        stream = Stream(items=[0, 3, 3, 7], universe_size=8)
        path = os.path.join(tmp_path, "stats.txt")
        save_stream(stream, path)
        stats = stream_file_statistics(path)
        assert stats == {"length": 4, "max_item": 7, "distinct_items": 3}

    def test_creates_directories(self, tmp_path):
        stream = Stream(items=[0], universe_size=1)
        path = os.path.join(tmp_path, "nested", "dir", "s.txt")
        save_stream(stream, path)
        assert os.path.exists(path)

    def test_chunked_iteration_concatenates_to_the_file(self, tmp_path):
        stream = zipfian_stream(1000, 64, skew=1.2, rng=RandomSource(7))
        path = os.path.join(tmp_path, "chunked.txt")
        save_stream(stream, path)
        chunks = list(iterate_stream_file_chunks(path, chunk_size=97))
        assert all(isinstance(chunk, np.ndarray) and chunk.dtype == np.int64 for chunk in chunks)
        assert all(chunk.size <= 97 for chunk in chunks)
        assert np.concatenate(chunks).tolist() == list(stream)

    def test_chunked_iteration_single_big_chunk_and_validation(self, tmp_path):
        stream = Stream(items=[3, 1, 4], universe_size=8)
        path = os.path.join(tmp_path, "one.txt")
        save_stream(stream, path)
        chunks = list(iterate_stream_file_chunks(path, chunk_size=1000))
        assert len(chunks) == 1
        assert chunks[0].tolist() == [3, 1, 4]
        with pytest.raises(ValueError):
            next(iterate_stream_file_chunks(path, chunk_size=0))

    def test_chunked_iteration_feeds_insert_many(self, tmp_path):
        from repro.baselines.exact import ExactCounter
        from repro.streams.truth import exact_frequencies

        stream = zipfian_stream(3000, 128, skew=1.1, rng=RandomSource(8))
        path = os.path.join(tmp_path, "replay.txt")
        save_stream(stream, path)
        counter = ExactCounter(128)
        for chunk in iterate_stream_file_chunks(path, chunk_size=256):
            counter.insert_many(chunk)
        assert counter.frequencies() == exact_frequencies(stream)

    def test_stream_file_metadata_prefers_header_universe(self, tmp_path):
        stream = Stream(items=[0, 3, 3, 7], universe_size=100)
        path = os.path.join(tmp_path, "meta.txt")
        save_stream(stream, path)
        metadata = stream_file_metadata(path)
        assert metadata["universe_size"] == 100
        assert metadata["length"] == 4
        assert metadata["max_item"] == 7

    def test_stream_file_metadata_infers_universe_without_header(self, tmp_path):
        path = os.path.join(tmp_path, "raw.txt")
        with open(path, "w") as handle:
            handle.write("3\n1\n4\n")
        metadata = stream_file_metadata(path)
        assert metadata["universe_size"] == 5

    def test_stream_file_metadata_accepts_header_after_data(self, tmp_path):
        # load_stream accepts the header anywhere in the file; the metadata pass
        # must agree, or CLI replay would size sketches differently.
        path = os.path.join(tmp_path, "late_header.txt")
        with open(path, "w") as handle:
            handle.write("3\n1\n# universe_size: 50\n4\n")
        metadata = stream_file_metadata(path)
        assert metadata["universe_size"] == 50
        assert metadata["universe_size"] == load_stream(path).universe_size


class TestElectionRoundTrip:
    def test_round_trip(self, tmp_path):
        votes = impartial_culture(30, 5, rng=RandomSource(3))
        election = Election(num_candidates=5, votes=votes)
        path = os.path.join(tmp_path, "election.txt")
        save_election(election, path)
        loaded = load_election(path)
        assert loaded.num_candidates == 5
        assert len(loaded) == 30
        assert [tuple(v.order) for v in loaded.votes] == [tuple(v.order) for v in votes]

    def test_round_trip_preserves_winners(self, tmp_path):
        votes = impartial_culture(80, 4, rng=RandomSource(4))
        election = Election(num_candidates=4, votes=votes)
        path = os.path.join(tmp_path, "e2.txt")
        save_election(election, path)
        loaded = load_election(path)
        assert loaded.borda_scores() == election.borda_scores()
        assert loaded.maximin_scores() == election.maximin_scores()

    def test_load_headerless_election(self, tmp_path):
        path = os.path.join(tmp_path, "raw_votes.txt")
        with open(path, "w") as handle:
            handle.write("0 1 2\n2 1 0\n")
        loaded = load_election(path)
        assert loaded.num_candidates == 3
        assert len(loaded) == 2


class TestStreamingFromDisk:
    def test_algorithm_consumes_file_iterator(self, tmp_path):
        """End to end: a heavy-hitters algorithm consuming an on-disk trace lazily."""
        from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
        from repro.streams.generators import planted_heavy_hitters_stream
        from repro.streams.truth import exact_frequencies

        stream = planted_heavy_hitters_stream(
            8000, 200, {5: 0.3, 9: 0.1}, rng=RandomSource(5)
        )
        path = os.path.join(tmp_path, "trace.txt")
        save_stream(stream, path)
        stats = stream_file_statistics(path)
        algo = SimpleListHeavyHitters(
            epsilon=0.05, phi=0.1, universe_size=200,
            stream_length=stats["length"], rng=RandomSource(6),
        )
        algo.consume(iterate_stream_file(path))
        report = algo.report()
        assert report.satisfies_definition(exact_frequencies(stream))
        assert 5 in report
