"""Unit tests for repro.primitives.hashing."""

import pytest

from repro.primitives.hashing import (
    UniversalHashFamily,
    UniversalHashFunction,
    next_prime,
    _is_prime,
)
from repro.primitives.rng import RandomSource


class TestPrimes:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert _is_prime(p), p

    def test_small_composites(self):
        for c in (1, 4, 6, 8, 9, 100, 7917, 7921):
            assert not _is_prime(c), c

    def test_next_prime(self):
        assert next_prime(2) == 2
        assert next_prime(8) == 11
        assert next_prime(14) == 17
        assert next_prime(1000) == 1009

    def test_next_prime_of_prime_is_itself(self):
        assert next_prime(101) == 101

    def test_next_prime_large(self):
        p = next_prime(10**6)
        assert p >= 10**6
        assert _is_prime(p)


class TestUniversalHashFunction:
    def test_output_in_range(self):
        family = UniversalHashFamily(universe_size=10_000, range_size=97, rng=RandomSource(1))
        h = family.draw()
        for item in range(0, 10_000, 37):
            assert 0 <= h(item) < 97

    def test_deterministic_for_same_item(self):
        family = UniversalHashFamily(1000, 50, rng=RandomSource(2))
        h = family.draw()
        assert h(123) == h(123)

    def test_negative_input_rejected(self):
        family = UniversalHashFamily(1000, 50, rng=RandomSource(2))
        h = family.draw()
        with pytest.raises(ValueError):
            h(-1)

    def test_description_bits_positive(self):
        family = UniversalHashFamily(1 << 20, 100, rng=RandomSource(3))
        h = family.draw()
        # Two coefficients modulo a ~2^20 prime: about 2 * 21 bits.
        assert 30 <= h.description_bits() <= 50


class TestUniversalHashFamily:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            UniversalHashFamily(0, 10)
        with pytest.raises(ValueError):
            UniversalHashFamily(10, 0)

    def test_prime_exceeds_universe(self):
        family = UniversalHashFamily(1000, 10, rng=RandomSource(1))
        assert family.prime >= 1000

    def test_collision_probability_bound(self):
        family = UniversalHashFamily(1000, 64, rng=RandomSource(1))
        assert family.collision_probability() == pytest.approx(1 / 64)

    def test_draw_many(self):
        family = UniversalHashFamily(1000, 64, rng=RandomSource(1))
        functions = family.draw_many(5)
        assert len(functions) == 5
        assert all(isinstance(f, UniversalHashFunction) for f in functions)

    def test_empirical_collision_rate_is_universal(self):
        """The measured collision rate over random pairs stays near 1/range (Definition 2)."""
        rng = RandomSource(42)
        range_size = 128
        family = UniversalHashFamily(universe_size=100_000, range_size=range_size, rng=rng)
        trials = 400
        collisions = 0
        for _ in range(trials):
            h = family.draw()
            a = rng.randint(0, 99_999)
            b = rng.randint(0, 99_999)
            while b == a:
                b = rng.randint(0, 99_999)
            if h(a) == h(b):
                collisions += 1
        # Expected collisions ~ trials / range_size ~ 3; allow generous slack.
        assert collisions <= 20

    def test_lemma2_no_collision_on_small_sets(self):
        """Lemma 2: hashing |S| items into >= |S|^2/delta buckets rarely collides."""
        rng = RandomSource(7)
        sample = [rng.randint(0, 10**6) for _ in range(50)]
        range_size = int(len(sample) ** 2 / 0.05)
        family = UniversalHashFamily(10**6 + 1, range_size, rng=rng)
        collision_runs = 0
        for _ in range(50):
            h = family.draw()
            hashed = [h(x) for x in set(sample)]
            if len(set(hashed)) != len(set(sample)):
                collision_runs += 1
        assert collision_runs <= 10
