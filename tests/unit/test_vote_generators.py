"""Unit tests for repro.voting.generators."""

import pytest

from repro.primitives.rng import RandomSource
from repro.voting.generators import (
    clickstream_orderings,
    impartial_culture,
    mallows_votes,
    planted_borda_winner,
)
from repro.voting.rankings import Ranking, kendall_tau_distance
from repro.voting.scores import borda_scores


class TestImpartialCulture:
    def test_shape(self):
        votes = impartial_culture(50, 6, rng=RandomSource(1))
        assert len(votes) == 50
        assert all(isinstance(vote, Ranking) and vote.num_candidates == 6 for vote in votes)

    def test_roughly_uniform_top_choice(self):
        votes = impartial_culture(3000, 4, rng=RandomSource(2))
        tops = [vote.top() for vote in votes]
        for candidate in range(4):
            assert 0.15 < tops.count(candidate) / 3000 < 0.35

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            impartial_culture(-1, 3)
        with pytest.raises(ValueError):
            impartial_culture(3, 0)


class TestMallows:
    def test_low_dispersion_concentrates_on_reference(self):
        reference = Ranking([3, 1, 0, 2, 4])
        votes = mallows_votes(200, 5, dispersion=0.1, reference=reference, rng=RandomSource(3))
        average_distance = sum(
            kendall_tau_distance(vote, reference) for vote in votes
        ) / len(votes)
        assert average_distance < 1.0

    def test_dispersion_one_is_diffuse(self):
        reference = Ranking.identity(5)
        votes = mallows_votes(300, 5, dispersion=1.0, reference=reference, rng=RandomSource(4))
        average_distance = sum(
            kendall_tau_distance(vote, reference) for vote in votes
        ) / len(votes)
        # Uniform permutations have expected Kendall distance C(5,2)/2 = 5.
        assert 3.5 < average_distance < 6.5

    def test_invalid_dispersion(self):
        with pytest.raises(ValueError):
            mallows_votes(10, 3, dispersion=0.0)

    def test_wrong_reference_size(self):
        with pytest.raises(ValueError):
            mallows_votes(10, 3, reference=Ranking.identity(4))


class TestPlantedBordaWinner:
    def test_planted_candidate_wins(self):
        votes = planted_borda_winner(400, 6, winner=2, boost_fraction=0.6, rng=RandomSource(5))
        scores = borda_scores(votes)
        assert max(scores, key=scores.get) == 2

    def test_zero_boost_is_impartial(self):
        votes = planted_borda_winner(100, 4, winner=1, boost_fraction=0.0, rng=RandomSource(6))
        assert len(votes) == 100

    def test_invalid_winner(self):
        with pytest.raises(ValueError):
            planted_borda_winner(10, 3, winner=5)


class TestClickstream:
    def test_shape_and_validity(self):
        sessions = clickstream_orderings(40, 8, rng=RandomSource(7))
        assert len(sessions) == 40
        assert all(vote.num_candidates == 8 for vote in sessions)

    def test_popular_pages_visited_earlier(self):
        sessions = clickstream_orderings(500, 6, popularity_skew=1.5, rng=RandomSource(8))
        average_position_first = sum(vote.position_of(0) for vote in sessions) / len(sessions)
        average_position_last = sum(vote.position_of(5) for vote in sessions) / len(sessions)
        assert average_position_first < average_position_last

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            clickstream_orderings(-1, 5)
        with pytest.raises(ValueError):
            clickstream_orderings(5, 0)
