"""Documentation checks: doctests, README/examples code blocks, doc cross-links.

Documentation that claims to be runnable is held to it here: every module that
carries doctests is exercised, every ```python block in the markdown docs is
executed, and the examples index must point at files that exist.
"""

import doctest
import importlib
import os
import pathlib
import re
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]

#: Modules that carry doctests; pytest --doctest-modules on these must stay green,
#: and each must actually contain at least one example (an empty entry here means
#: someone deleted the doctests without updating the docs job).
DOCTEST_MODULES = [
    "repro.core.results",
    "repro.primitives.batching",
]

MARKDOWN_WITH_CODE = ["README.md", "docs/ARCHITECTURE.md", "docs/BENCHMARKS.md",
                      "docs/DURABILITY.md", "docs/OBSERVABILITY.md",
                      "docs/STATIC_ANALYSIS.md", "examples/README.md"]


@pytest.mark.parametrize("name", DOCTEST_MODULES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{name} is listed as carrying doctests but has none"
    assert result.failed == 0


def _python_blocks(path: pathlib.Path):
    return re.findall(r"```python\n(.*?)```", path.read_text(encoding="utf-8"), flags=re.S)


def test_readme_python_blocks_execute(tmp_path, monkeypatch):
    blocks = _python_blocks(REPO / "README.md")
    assert blocks, "README.md should carry runnable python examples"
    monkeypatch.chdir(tmp_path)  # anything a block writes lands in the temp dir
    for index, block in enumerate(blocks):
        code = compile(block, f"README.md[python block {index}]", "exec")
        exec(code, {"__name__": f"__readme_block_{index}__"})


def test_markdown_docs_exist_and_crosslink():
    for name in MARKDOWN_WITH_CODE:
        assert (REPO / name).exists(), f"{name} is missing"
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/BENCHMARKS.md" in readme
    assert "docs/DURABILITY.md" in readme
    assert "docs/OBSERVABILITY.md" in readme
    assert "docs/STATIC_ANALYSIS.md" in readme
    assert "examples/README.md" in readme
    architecture = (REPO / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    assert "DURABILITY.md" in architecture
    assert "OBSERVABILITY.md" in architecture
    assert "STATIC_ANALYSIS.md" in architecture


def test_examples_index_points_at_real_files():
    index = (REPO / "examples" / "README.md").read_text(encoding="utf-8")
    linked = set(re.findall(r"\[`([a-z_]+\.py)`\]", index))
    on_disk = {path.name for path in (REPO / "examples").glob("*.py")}
    assert linked == on_disk, (
        f"examples/README.md links {sorted(linked)} but examples/ holds {sorted(on_disk)}"
    )


def test_benchmarks_doc_covers_every_recorded_json():
    doc = (REPO / "docs" / "BENCHMARKS.md").read_text(encoding="utf-8")
    for recorded in REPO.glob("BENCH_*.json"):
        assert recorded.name in doc, f"{recorded.name} is not documented in BENCHMARKS.md"


def test_service_quickstart_example_runs():
    """The PR-facing example must stay runnable end to end (it self-verifies)."""
    env = dict(os.environ)
    result = subprocess.run(
        [sys.executable, str(REPO / "examples" / "service_quickstart.py")],
        capture_output=True, text=True, timeout=120, env=env,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "identical to the uninterrupted run: True" in result.stdout
