"""Unit tests for the Misra-Gries baseline and the underlying table."""

import pytest

from repro.baselines.misra_gries import MisraGries, MisraGriesTable
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream, zipfian_stream
from repro.streams.truth import exact_frequencies


class TestMisraGriesTable:
    def test_exact_when_few_distinct_items(self):
        table = MisraGriesTable(num_counters=10)
        for item in [1, 2, 1, 3, 1, 2]:
            table.update(item)
        assert table.get(1) == 3
        assert table.get(2) == 2
        assert table.get(3) == 1

    def test_never_overestimates(self):
        table = MisraGriesTable(num_counters=3)
        stream = [1, 2, 3, 4, 5, 1, 1, 1, 2, 2, 6, 7, 1]
        truth = {}
        for item in stream:
            table.update(item)
            truth[item] = truth.get(item, 0) + 1
        for item, count in truth.items():
            assert table.get(item) <= count

    def test_undercount_bounded_by_m_over_k(self):
        """The classic guarantee: estimate >= f - m/k."""
        k = 10
        table = MisraGriesTable(num_counters=k)
        rng = RandomSource(1)
        stream = zipfian_stream(5000, 200, skew=1.3, rng=rng)
        truth = exact_frequencies(stream)
        for item in stream:
            table.update(item)
        for item, count in truth.items():
            assert table.get(item) >= count - len(stream) / k

    def test_weighted_updates(self):
        table = MisraGriesTable(num_counters=2)
        table.update(1, weight=5)
        table.update(2, weight=3)
        table.update(3, weight=4)  # forces decrement by min(4, 3) = 3
        assert table.get(1) == 2
        assert table.get(2) == 0
        assert table.get(3) == 1

    def test_capacity_never_exceeded(self):
        table = MisraGriesTable(num_counters=4)
        rng = RandomSource(2)
        for _ in range(2000):
            table.update(rng.randint(0, 100))
            assert len(table) <= 4

    def test_top_keys_sorted(self):
        table = MisraGriesTable(num_counters=5)
        for item, times in ((1, 5), (2, 3), (3, 8)):
            for _ in range(times):
                table.update(item)
        assert table.top_keys(2) == [3, 1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            MisraGriesTable(0)
        with pytest.raises(ValueError):
            MisraGriesTable(3).update(1, weight=0)

    def test_space_bits_formula(self):
        table = MisraGriesTable(num_counters=7)
        assert table.space_bits(key_bits=10, value_bits=20) == 7 * 30


class TestMisraGriesBaseline:
    def test_definition_guarantee_on_planted_stream(self):
        rng = RandomSource(3)
        stream = planted_heavy_hitters_stream(
            20000, 500, {1: 0.2, 2: 0.12, 3: 0.06}, rng=rng
        )
        truth = exact_frequencies(stream)
        algo = MisraGries(epsilon=0.02, universe_size=500)
        algo.consume(stream)
        report = algo.report(phi=0.05)
        assert report.contains_all_heavy(truth)
        assert report.excludes_all_light(truth)

    def test_estimates_never_exceed_truth(self):
        rng = RandomSource(4)
        stream = zipfian_stream(5000, 100, skew=1.2, rng=rng)
        truth = exact_frequencies(stream)
        algo = MisraGries(epsilon=0.05, universe_size=100)
        algo.consume(stream)
        for item, count in truth.items():
            assert algo.estimate(item) <= count

    def test_space_accounting_matches_capacity(self):
        algo = MisraGries(epsilon=0.1, universe_size=1 << 16, stream_length_hint=(1 << 20) - 1)
        algo.insert(3)
        # 11 counters, each 16 id bits + 20 count bits.
        assert algo.space_bits() == (int(1 / 0.1) + 1) * (16 + 20)

    def test_out_of_universe_item_rejected(self):
        algo = MisraGries(epsilon=0.1, universe_size=10)
        with pytest.raises(ValueError):
            algo.insert(10)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            MisraGries(epsilon=0.0, universe_size=10)
        with pytest.raises(ValueError):
            MisraGries(epsilon=1.0, universe_size=10)
