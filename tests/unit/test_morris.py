"""Unit tests for repro.primitives.morris (Morris approximate counter)."""

import pytest

from repro.primitives.morris import MorrisCounter
from repro.primitives.rng import RandomSource


class TestMorrisCounter:
    def test_initially_zero(self):
        counter = MorrisCounter(rng=RandomSource(1))
        assert counter.estimate() == 0.0
        assert counter.true_count == 0

    def test_estimate_grows_with_increments(self):
        counter = MorrisCounter(rng=RandomSource(2), repetitions=8)
        for _ in range(1000):
            counter.increment()
        assert counter.estimate() > 100

    def test_constant_factor_accuracy_with_repetitions(self):
        """Averaged Morris counters track the true count within a small constant factor."""
        counter = MorrisCounter(rng=RandomSource(3), repetitions=30)
        for _ in range(4096):
            counter.increment()
        estimate = counter.estimate()
        assert 4096 / 4 <= estimate <= 4096 * 4

    def test_space_is_loglog(self):
        """The counter stores only exponents: O(log log count) bits."""
        counter = MorrisCounter(rng=RandomSource(4), repetitions=1)
        for _ in range(100_000):
            counter.increment()
        # The exponent is around log2(100000) ~ 17, which needs ~5 bits.
        assert counter.space_bits() <= 8

    def test_space_smaller_than_exact_counting(self):
        counter = MorrisCounter(rng=RandomSource(5), repetitions=1)
        for _ in range(1 << 15):
            counter.increment()
        exact_bits = 15
        assert counter.space_bits() < exact_bits

    def test_monotone_nondecreasing_estimate(self):
        counter = MorrisCounter(rng=RandomSource(6), repetitions=4)
        previous = 0.0
        for _ in range(2000):
            counter.increment()
            current = counter.estimate()
            assert current >= previous
            previous = current

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            MorrisCounter(repetitions=0)

    def test_deterministic_under_seed(self):
        a = MorrisCounter(rng=RandomSource(7), repetitions=3)
        b = MorrisCounter(rng=RandomSource(7), repetitions=3)
        for _ in range(500):
            a.increment()
            b.increment()
        assert a.exponents == b.exponents
