"""Unit tests for repro.streams (Stream container, generators, truth oracles)."""

import pytest

from repro.primitives.rng import RandomSource
from repro.streams.generators import (
    adversarial_block_stream,
    exponential_lengths,
    planted_heavy_hitters_stream,
    planted_maximum_stream,
    two_phase_stream,
    uniform_stream,
    zipfian_stream,
)
from repro.streams.stream import Stream
from repro.streams.truth import (
    exact_frequencies,
    exact_maximum,
    exact_minimum,
    heavy_hitters,
    top_k,
)


class TestStreamContainer:
    def test_length_and_iteration(self):
        stream = Stream(items=[1, 2, 1], universe_size=5)
        assert len(stream) == 3
        assert list(stream) == [1, 2, 1]
        assert stream[1] == 2

    def test_universe_validation(self):
        with pytest.raises(ValueError):
            Stream(items=[5], universe_size=5)
        with pytest.raises(ValueError):
            Stream(items=[0], universe_size=0)

    def test_prefix(self):
        stream = Stream(items=list(range(10)), universe_size=10, name="s")
        prefix = stream.prefix(4)
        assert list(prefix) == [0, 1, 2, 3]
        assert prefix.universe_size == 10

    def test_concatenate(self):
        a = Stream(items=[0, 1], universe_size=2, name="a")
        b = Stream(items=[2, 3], universe_size=4, name="b")
        c = a.concatenate(b)
        assert list(c) == [0, 1, 2, 3]
        assert c.universe_size == 4

    def test_from_items_infers_universe(self):
        stream = Stream.from_items([3, 7, 2])
        assert stream.universe_size == 8


class TestGenerators:
    def test_uniform_stream_properties(self):
        stream = uniform_stream(1000, 50, rng=RandomSource(1))
        assert len(stream) == 1000
        assert stream.universe_size == 50
        assert all(0 <= item < 50 for item in stream)

    def test_zipfian_is_skewed(self):
        stream = zipfian_stream(20000, 1000, skew=1.5, rng=RandomSource(2))
        counts = exact_frequencies(stream)
        # Item 0 should be far more frequent than item 100.
        assert counts.get(0, 0) > 10 * counts.get(100, 0)

    def test_zipfian_invalid_skew(self):
        with pytest.raises(ValueError):
            zipfian_stream(10, 10, skew=0.0)

    def test_planted_heavy_hitters_frequencies(self):
        heavy = {1: 0.2, 2: 0.1}
        stream = planted_heavy_hitters_stream(10000, 500, heavy, rng=RandomSource(3))
        counts = exact_frequencies(stream)
        assert abs(counts[1] - 2000) <= 20
        assert abs(counts[2] - 1000) <= 20
        assert len(stream) == 10000

    def test_planted_fractions_cannot_exceed_one(self):
        with pytest.raises(ValueError):
            planted_heavy_hitters_stream(100, 10, {1: 0.7, 2: 0.6})

    def test_planted_maximum_stream_has_planted_max(self):
        stream = planted_maximum_stream(
            5000, 200, maximum_item=7, maximum_fraction=0.3, runner_up_fraction=0.1,
            rng=RandomSource(4),
        )
        item, count = exact_maximum(stream)
        assert item == 7
        assert count >= 0.28 * 5000

    def test_adversarial_block_stream_sorted_blocks(self):
        stream = adversarial_block_stream(
            2000, 100, {5: 0.3, 6: 0.2}, rng=RandomSource(5)
        )
        items = list(stream)
        # The heaviest item must arrive last (blocks ordered light-to-heavy).
        assert items[-1] == 5
        counts = exact_frequencies(items)
        assert counts[5] >= counts[6] >= max(
            count for item, count in counts.items() if item not in (5, 6)
        )

    def test_two_phase_stream_metadata(self):
        stream = two_phase_stream([0, 0, 1], [2, 2], universe_size=3)
        assert list(stream) == [0, 0, 1, 2, 2]
        assert stream.metadata["alice_length"] == 3
        assert stream.metadata["bob_length"] == 2

    def test_exponential_lengths(self):
        lengths = exponential_lengths(10, 1000, base=10)
        assert lengths == [10, 100, 1000]
        with pytest.raises(ValueError):
            exponential_lengths(0, 10)


class TestTruthOracles:
    def test_exact_frequencies(self):
        assert exact_frequencies([1, 1, 2]) == {1: 2, 2: 1}
        assert exact_frequencies([]) == {}

    def test_exact_maximum_tie_breaking(self):
        item, count = exact_maximum([1, 2, 1, 2])
        assert (item, count) == (1, 2)
        assert exact_maximum([]) == (None, 0)

    def test_exact_minimum_prefers_absent_items(self):
        item, count = exact_minimum([0, 0, 1], universe_size=3)
        assert (item, count) == (2, 0)

    def test_exact_minimum_full_support(self):
        item, count = exact_minimum([0, 0, 1, 2, 2], universe_size=3)
        assert (item, count) == (1, 1)

    def test_top_k(self):
        assert top_k([1, 1, 1, 2, 2, 3], 2) == [(1, 3), (2, 2)]

    def test_heavy_hitters_threshold(self):
        stream = [1] * 60 + [2] * 40
        assert heavy_hitters(stream, phi=0.5) == {1: 60}
        assert heavy_hitters(stream, phi=0.39) == {1: 60, 2: 40}
