"""Unit tests for repro.core.results (the typed report objects)."""

import pytest

from repro.core.results import (
    HeavyHitterResult,
    HeavyHittersReport,
    MaximumResult,
    MinimumResult,
    ScoreReport,
)


class TestHeavyHitterResult:
    def test_relative_frequency(self):
        result = HeavyHitterResult(item=3, estimated_frequency=250.0)
        assert result.estimated_relative_frequency(1000) == pytest.approx(0.25)

    def test_invalid_stream_length(self):
        with pytest.raises(ValueError):
            HeavyHitterResult(1, 1.0).estimated_relative_frequency(0)


class TestHeavyHittersReport:
    def make_report(self):
        return HeavyHittersReport(
            items={1: 300.0, 2: 150.0},
            stream_length=1000,
            epsilon=0.05,
            phi=0.1,
        )

    def test_container_protocol(self):
        report = self.make_report()
        assert 1 in report
        assert 3 not in report
        assert len(report) == 2
        assert set(iter(report)) == {1, 2}

    def test_reported_items_sorted_by_estimate(self):
        assert self.make_report().reported_items() == [1, 2]

    def test_estimated_frequency(self):
        report = self.make_report()
        assert report.estimated_frequency(1) == 300.0
        assert report.estimated_frequency(9) is None

    def test_as_results(self):
        results = self.make_report().as_results()
        assert results[0] == HeavyHitterResult(1, 300.0)

    def test_contains_all_heavy(self):
        report = self.make_report()
        assert report.contains_all_heavy({1: 305, 2: 160, 3: 50})
        assert not report.contains_all_heavy({1: 305, 4: 200})

    def test_excludes_all_light(self):
        report = self.make_report()
        # (phi - eps) * m = 50; both reported items must truly exceed 50.
        assert report.excludes_all_light({1: 305, 2: 160})
        assert not report.excludes_all_light({1: 305, 2: 40})

    def test_max_frequency_error(self):
        report = self.make_report()
        assert report.max_frequency_error({1: 310, 2: 150}) == pytest.approx(10.0)
        empty = HeavyHittersReport(items={}, stream_length=10, epsilon=0.1, phi=0.2)
        assert empty.max_frequency_error({}) == 0.0

    def test_satisfies_definition(self):
        report = self.make_report()
        truth = {1: 310, 2: 160, 3: 40}
        assert report.satisfies_definition(truth)
        # An error larger than eps*m = 50 breaks it.
        assert not report.satisfies_definition({1: 400, 2: 160})


class TestMaximumResult:
    def test_is_correct(self):
        result = MaximumResult(item=1, estimated_frequency=95.0, stream_length=1000, epsilon=0.05)
        assert result.is_correct({1: 100, 2: 60})
        assert not result.is_correct({1: 100, 2: 200})

    def test_item_is_near_maximum(self):
        result = MaximumResult(item=2, estimated_frequency=90.0, stream_length=1000, epsilon=0.05)
        assert result.item_is_near_maximum({1: 100, 2: 40}) is False
        assert result.item_is_near_maximum({1: 100, 2: 95}) is True

    def test_empty_truth(self):
        result = MaximumResult(item=0, estimated_frequency=0.0, stream_length=10, epsilon=0.1)
        assert result.is_correct({})


class TestMinimumResult:
    def test_correct_when_item_has_minimum_frequency(self):
        result = MinimumResult(item=5, estimated_frequency=2.0, stream_length=100, epsilon=0.1)
        truth = {0: 50, 1: 40, 5: 3}
        # Universe fully covered by truth plus item 5: min over support is 3 (item 5).
        assert result.is_correct(truth, universe_size=3)

    def test_absent_item_is_valid_answer(self):
        result = MinimumResult(item=9, estimated_frequency=0.0, stream_length=100, epsilon=0.05)
        truth = {0: 50, 1: 50}
        assert result.is_correct(truth, universe_size=10)

    def test_incorrect_when_too_frequent(self):
        result = MinimumResult(item=0, estimated_frequency=50.0, stream_length=100, epsilon=0.05)
        truth = {0: 50, 1: 1}
        assert not result.is_correct(truth, universe_size=2)


class TestScoreReport:
    def make_report(self):
        return ScoreReport(
            scores={0: 10.0, 1: 30.0, 2: 20.0},
            stream_length=10,
            epsilon=0.1,
            phi=0.5,
            heavy_items=[1],
        )

    def test_approximate_winner(self):
        assert self.make_report().approximate_winner() == 1

    def test_empty_scores_raise(self):
        empty = ScoreReport(scores={}, stream_length=1, epsilon=0.1)
        with pytest.raises(ValueError):
            empty.approximate_winner()

    def test_score_lookup(self):
        assert self.make_report().score(2) == 20.0

    def test_max_score_error(self):
        report = self.make_report()
        assert report.max_score_error({0: 10, 1: 25, 2: 20}) == pytest.approx(5.0)

    def test_top_candidates(self):
        assert self.make_report().top_candidates(2) == [(1, 30.0), (2, 20.0)]
