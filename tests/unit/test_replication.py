"""Tests for the replication layer: fault plans, quorum merges, groups, healing."""

import copy
import pickle
import threading

import numpy as np
import pytest

from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.results import HeavyHittersReport
from repro.pipeline import PipelinedExecutor
from repro.primitives.rng import RandomSource
from repro.replication import (
    FaultPlan,
    FaultSpec,
    GroupSinkState,
    ReplicaGroup,
    ReplicaSupervisor,
    corrupt_file,
)

UNIVERSE = 400
LENGTH = 12_000
CHUNK = 1000


def make_sketch(seed):
    return SimpleListHeavyHitters(
        epsilon=0.02, phi=0.1, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(seed),
    )


def make_executor(seed, chunk_size=CHUNK):
    return PipelinedExecutor(sketch=make_sketch(seed), chunk_size=chunk_size)


def make_group(replicas=3, chunk_size=CHUNK, **kwargs):
    return ReplicaGroup(
        [make_executor(100 + index, chunk_size) for index in range(replicas)],
        chunk_size=chunk_size,
        **kwargs,
    )


def make_chunks(length=LENGTH, chunk=CHUNK, seed=3):
    rng = RandomSource(seed).numpy_generator()
    heavy = np.full(length // 2, 7, dtype=np.int64)
    rest = rng.integers(0, UNIVERSE, size=length - len(heavy))
    items = np.concatenate([heavy, rest])
    rng.shuffle(items)
    items = items.astype(np.int64)
    return [items[start:start + chunk] for start in range(0, length, chunk)]


def report(items, stream_length=1000, epsilon=0.01, phi=0.1):
    return HeavyHittersReport(items=dict(items), stream_length=stream_length,
                              epsilon=epsilon, phi=phi)


class TestFaultPlan:
    def test_parse_kill_spec(self):
        spec = FaultPlan.parse_spec("kill:replica=1,after_chunk=3")
        assert spec.kind == "kill-replica"
        assert spec.replica == 1 and spec.after_chunk == 3

    def test_parse_drop_and_corrupt(self):
        assert FaultPlan.parse_spec("drop:after_frame=5").after_frame == 5
        assert FaultPlan.parse_spec("corrupt").kind == "corrupt-checkpoint"

    @pytest.mark.parametrize("text", [
        "explode",                      # unknown kind
        "kill:replica=1",               # missing after_chunk
        "kill:replica=1,after_frame=2",  # key belongs to drop
        "drop:after_frame=x",           # non-integer operand
        "drop:after_frame",             # not key=value
        "kill:replica=-1,after_chunk=0",  # negative operand
    ])
    def test_parse_rejects_malformed_specs(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse_spec(text)

    def test_fire_kill_is_one_shot_and_index_matched(self):
        plan = FaultPlan.kill_replica(1, after_chunk=3)
        assert not plan.fire_kill(1, 2)      # too early
        assert not plan.fire_kill(0, 3)      # wrong replica
        assert plan.fire_kill(1, 3)          # fires exactly once
        assert not plan.fire_kill(1, 4)
        assert plan.pending() == []

    def test_fire_drop_and_corrupt_are_one_shot(self):
        plan = FaultPlan.parse(["drop:after_frame=2", "corrupt"])
        assert not plan.fire_drop(1)
        assert plan.fire_drop(2) and not plan.fire_drop(3)
        assert plan.should_corrupt() and not plan.should_corrupt()

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ValueError):
            FaultSpec("explode")

    def test_corrupt_file_flips_middle_byte(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(range(10)))
        offset = corrupt_file(str(path))
        assert offset == 5
        data = path.read_bytes()
        assert data[5] == 5 ^ 0xFF
        assert data[:5] == bytes(range(5))

    def test_corrupt_file_rejects_empty_and_bad_offset(self, tmp_path):
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_file(str(empty))
        blob = tmp_path / "blob.bin"
        blob.write_bytes(b"abc")
        with pytest.raises(ValueError):
            corrupt_file(str(blob), offset=3)


class TestQuorumMerge:
    def test_majority_quorum_takes_median_estimates(self):
        reports = [
            report({7: 300.0, 2: 118.0}),
            report({7: 302.0, 2: 119.0, 9: 101.0}),
            report({7: 305.0, 2: 120.0}),
        ]
        merged = HeavyHittersReport.quorum_merge(reports)
        assert merged.reported_items() == [7, 2]     # 9 has 1 vote < quorum 2
        assert merged.estimated_frequency(7) == 302.0
        assert merged.estimated_frequency(2) == 119.0
        assert merged.stream_length == 1000

    def test_quorum_one_keeps_every_reported_item(self):
        reports = [report({7: 300.0}), report({9: 101.0})]
        merged = HeavyHittersReport.quorum_merge(reports, quorum=1)
        assert merged.reported_items() == [7, 9]

    def test_single_report_round_trips(self):
        only = report({7: 300.0})
        merged = HeavyHittersReport.quorum_merge([only])
        assert dict(merged.items) == dict(only.items)

    def test_rejects_empty_and_bad_quorum(self):
        with pytest.raises(ValueError):
            HeavyHittersReport.quorum_merge([])
        with pytest.raises(ValueError):
            HeavyHittersReport.quorum_merge([report({})], quorum=2)
        with pytest.raises(ValueError):
            HeavyHittersReport.quorum_merge([report({})], quorum=0)

    def test_rejects_mismatched_guarantees_and_prefixes(self):
        with pytest.raises(ValueError):
            HeavyHittersReport.quorum_merge(
                [report({7: 1.0}), report({7: 1.0}, epsilon=0.02)]
            )
        with pytest.raises(ValueError):
            HeavyHittersReport.quorum_merge(
                [report({7: 1.0}), report({7: 1.0}, stream_length=999)]
            )


class TestReplicaGroup:
    def test_constructor_validates_replicas(self):
        with pytest.raises(ValueError):
            ReplicaGroup([])
        consumed = make_executor(1)
        consumed.ingest_chunk(np.arange(10, dtype=np.int64))
        consumed.finalize()
        with pytest.raises(ValueError):
            ReplicaGroup([consumed, make_executor(2)])
        with pytest.raises(ValueError):
            make_group(quorum=4)

    def test_concurrent_runs_have_exactly_one_winner(self):
        # Regression for the lock-discipline sweep: like PipelinedExecutor.run,
        # the group's started-flag check and claim must be atomic under the
        # group lock — two racing run() calls once both passed the check and
        # fanned the same stream into the replicas twice.
        for _ in range(5):
            group = make_group(replicas=2)
            barrier = threading.Barrier(2)
            outcomes = []

            def attempt():
                barrier.wait()
                try:
                    result = group.run(iter(range(300)))
                except RuntimeError:
                    outcomes.append("refused")
                else:
                    outcomes.append(result.items_processed)

            threads = [threading.Thread(target=attempt) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert outcomes.count("refused") == 1
            assert 300 in outcomes  # the winner saw every item exactly once

    def test_fault_free_run_matches_single_replica(self):
        chunks = make_chunks()
        group = make_group()
        for chunk in chunks:
            group.ingest_chunk(chunk)
        result = group.finalize()
        assert not result.degraded
        assert result.live_replicas == result.num_replicas == 3
        assert result.quorum == 2
        assert result.items_processed == LENGTH

        single = make_executor(100)  # same seed as replica 0
        for chunk in chunks:
            single.ingest_chunk(chunk)
        assert dict(result.replica_report(0).items) == dict(
            single.finalize().report.items
        )

    def test_kill_quarantines_and_survivors_answer_degraded(self):
        chunks = make_chunks()
        group = make_group(
            fault_plan=FaultPlan.kill_replica(1, after_chunk=4),
            supervisor=ReplicaSupervisor(auto_heal=False),
        )
        for index, chunk in enumerate(chunks[:8]):
            group.ingest_chunk(chunk)
            if index >= 4:
                assert group.degraded and group.live_replicas == 2
                snapshot = group.snapshot()
                assert snapshot.degraded
                assert snapshot.live_replicas == 2
                assert snapshot.items_processed == (index + 1) * CHUNK
        (event,) = group.events_payload()
        assert event["event"] == "replica-failed"
        assert event["replica"] == 1 and event["chunk"] == 4
        payload = group.replica_status_payload()
        assert not payload[1]["healthy"] and "InjectedFault" in payload[1]["error"]

    def test_heal_reseeds_from_survivor_and_future_is_deterministic(self):
        chunks = make_chunks()
        kill_at, heal_after = 3, 2
        group = make_group(
            fault_plan=FaultPlan.kill_replica(1, after_chunk=kill_at),
            supervisor=ReplicaSupervisor(heal_after_chunks=heal_after),
        )
        for chunk in chunks:
            group.ingest_chunk(chunk)
        events = group.events_payload()
        assert [event["event"] for event in events] == [
            "replica-failed", "replica-healed",
        ]
        heal = events[1]
        heal_chunk = heal["chunk"]
        assert heal_chunk == kill_at + 1 + heal_after
        assert heal["donor"] == 0 and heal["failover_seconds"] >= 0.0
        result = group.finalize()
        assert not result.degraded and result.live_replicas == 3

        # The re-seed determinism contract: the replacement equals a fresh
        # donor-seed run whose state round-trips sink_state at the boundary.
        reference = make_executor(100)  # donor's seed
        for chunk in chunks[:heal_chunk]:
            reference.ingest_chunk(chunk)
        resumed = PipelinedExecutor.from_sink_state(
            reference.sink_state(), chunk_size=CHUNK
        )
        for chunk in chunks[heal_chunk:]:
            resumed.ingest_chunk(chunk)
        assert dict(result.replica_report(1).items) == dict(
            resumed.finalize().report.items
        )

    def test_all_replicas_dead_raises(self):
        plan = FaultPlan([
            FaultSpec("kill-replica", replica=0, after_chunk=1),
            FaultSpec("kill-replica", replica=1, after_chunk=1),
        ])
        group = make_group(replicas=2, fault_plan=plan,
                           supervisor=ReplicaSupervisor(auto_heal=False))
        chunks = make_chunks()
        group.ingest_chunk(chunks[0])
        with pytest.raises(RuntimeError, match="all 2 replicas have failed"):
            group.ingest_chunk(chunks[1])

    def test_supervisor_max_heals_caps_reseeding(self):
        plan = FaultPlan([
            FaultSpec("kill-replica", replica=1, after_chunk=1),
            FaultSpec("kill-replica", replica=1, after_chunk=4),
        ])
        group = make_group(
            fault_plan=plan, supervisor=ReplicaSupervisor(max_heals=1),
        )
        for chunk in make_chunks():
            group.ingest_chunk(chunk)
        heals = [e for e in group.events_payload() if e["event"] == "replica-healed"]
        assert len(heals) == 1
        assert group.degraded and group.live_replicas == 2
        result = group.finalize()
        assert result.degraded and result.quorum == 2

    def test_quorum_rule_follows_live_count(self):
        group = make_group(replicas=5)
        assert group.quorum_for(5) == 3
        assert group.quorum_for(4) == 3
        assert group.quorum_for(2) == 2
        explicit = make_group(replicas=3, quorum=3)
        assert explicit.quorum_for(3) == 3
        assert explicit.quorum_for(2) == 2  # clamped to the live count

    def test_snapshot_and_finalize_reject_wrong_phase(self):
        group = make_group()
        group.ingest_chunk(make_chunks()[0])
        group.finalize()
        with pytest.raises(RuntimeError):
            group.snapshot()
        with pytest.raises(RuntimeError):
            group.sink_state()
        with pytest.raises(RuntimeError):
            group.finalize()
        with pytest.raises(RuntimeError):
            group.ingest_chunk(make_chunks()[0])

    def test_live_stats_reports_per_replica_space(self):
        group = make_group()
        group.ingest_chunk(make_chunks()[0])
        stats = group.live_stats()
        assert stats["items_processed"] == CHUNK
        assert stats["live_replicas"] == stats["num_replicas"] == 3
        assert not stats["degraded"]
        assert len(stats["replicas"]) == 3
        assert stats["space_bits"] == sum(
            entry["space_bits"] for entry in stats["replicas"]
        )
        assert any(key.startswith("replica2/") for key in stats["space_breakdown"])


class TestGroupSinkState:
    def test_round_trip_preserves_reports(self):
        chunks = make_chunks()
        group = make_group()
        for chunk in chunks[:6]:
            group.ingest_chunk(chunk)
        state = group.sink_state()
        assert state.kind == "replicated" and state.chunks == 6
        restored = ReplicaGroup.from_sink_state(
            pickle.loads(pickle.dumps(state)), chunk_size=CHUNK
        )
        baseline = make_group()
        for chunk in chunks[:6]:
            baseline.ingest_chunk(chunk)
        for chunk in chunks[6:]:
            restored.ingest_chunk(chunk)
            baseline.ingest_chunk(chunk)
        assert dict(restored.finalize().report.items) == dict(
            baseline.finalize().report.items
        )

    def test_restore_heals_quarantined_slot_to_full_strength(self):
        chunks = make_chunks()
        group = make_group(
            fault_plan=FaultPlan.kill_replica(2, after_chunk=2),
            supervisor=ReplicaSupervisor(auto_heal=False),
        )
        for chunk in chunks[:5]:
            group.ingest_chunk(chunk)
        state = group.sink_state()
        assert state.states[2] is None
        assert not state.statuses[2]["healthy"]
        restored = ReplicaGroup.from_sink_state(state, chunk_size=CHUNK)
        assert restored.live_replicas == 3 and not restored.degraded
        for chunk in chunks[5:]:
            restored.ingest_chunk(chunk)
        result = restored.finalize()
        assert not result.degraded
        # The healed slot is the donor's deep copy: same prefix, deterministic
        # re-seeded future, so it must agree with replica 0 bit for bit.
        assert dict(result.replica_report(2).items) == dict(
            result.replica_report(0).items
        )

    def test_restore_with_no_healthy_state_rejected(self):
        state = GroupSinkState(kind="replicated", states=[None, None],
                               items_processed=0, chunks=0)
        with pytest.raises(ValueError):
            ReplicaGroup.from_sink_state(state)

    def test_deepcopy_of_executor_state_is_deterministic_sibling(self):
        chunks = make_chunks()
        donor = make_executor(100)
        for chunk in chunks[:4]:
            donor.ingest_chunk(chunk)
        captured = donor.sink_state()
        first = PipelinedExecutor.from_sink_state(copy.deepcopy(captured),
                                                  chunk_size=CHUNK)
        second = PipelinedExecutor.from_sink_state(copy.deepcopy(captured),
                                                   chunk_size=CHUNK)
        for chunk in chunks[4:]:
            first.ingest_chunk(chunk)
            second.ingest_chunk(chunk)
        assert dict(first.finalize().report.items) == dict(
            second.finalize().report.items
        )
