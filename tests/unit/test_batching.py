"""Unit tests for the batched-ingestion primitives.

Covers the geometric skip-ahead sampler API (Lemma 1, batched), the bulk RNG helpers,
vectorized Carter–Wegman hashing, the batched accelerated counters, and the batch
normalization helpers.
"""

import numpy as np
import pytest

from repro.primitives.accelerated import AcceleratedCounter, EpochAcceleratedCounter
from repro.primitives.batching import (
    aggregate_counts,
    as_item_array,
    iter_chunks,
    rechunk_arrays,
    validate_universe,
)
from repro.primitives.hashing import UniversalHashFamily, UniversalHashFunction
from repro.primitives.rng import RandomSource
from repro.primitives.sampling import BernoulliSampler, CoinFlipSampler
from repro.streams.stream import Stream


class TestBulkRandomHelpers:
    def test_geometric_support_and_mean(self):
        rng = RandomSource(1)
        draws = [rng.geometric(0.125) for _ in range(20_000)]
        assert min(draws) >= 1
        assert abs(sum(draws) / len(draws) - 8.0) < 0.35

    def test_geometric_probability_one_consumes_nothing(self):
        rng = RandomSource(2)
        reference = RandomSource(2)
        assert rng.geometric(1.0) == 1
        assert rng.random() == reference.random()

    def test_geometric_invalid(self):
        with pytest.raises(ValueError):
            RandomSource(3).geometric(0.0)

    def test_binomial_edges(self):
        rng = RandomSource(4)
        assert rng.binomial(0, 0.5) == 0
        assert rng.binomial(10, 0.0) == 0
        assert rng.binomial(10, 1.0) == 10

    @pytest.mark.parametrize("trials", [10, 500])
    def test_binomial_mean(self, trials):
        rng = RandomSource(5)
        draws = [rng.binomial(trials, 0.25) for _ in range(4_000)]
        mean = sum(draws) / len(draws)
        assert abs(mean - 0.25 * trials) < 0.05 * trials
        assert all(0 <= draw <= trials for draw in draws)

    def test_numpy_generator_deterministic_per_seed(self):
        a = RandomSource(6).numpy_generator().integers(0, 1000, size=5)
        b = RandomSource(6).numpy_generator().integers(0, 1000, size=5)
        assert list(a) == list(b)


class TestSkipAheadSampler:
    def test_probability_one_accepts_first(self):
        sampler = CoinFlipSampler(1.0, rng=RandomSource(1))
        assert sampler.next_accepted(10) == 0
        assert sampler.accepted_indices(5) == [0, 1, 2, 3, 4]

    def test_empty_batch(self):
        sampler = CoinFlipSampler(0.5, rng=RandomSource(1))
        assert sampler.next_accepted(0) is None
        assert sampler.accepted_indices(0) == []

    def test_rate_matches_per_item_decisions(self):
        """Skip-ahead acceptance rate must match Lemma 1's per-item coin flips."""
        batched = CoinFlipSampler(1 / 8, rng=RandomSource(2))
        accepted = len(batched.accepted_indices(80_000))
        assert 0.10 < accepted / 80_000 < 0.15

    def test_indices_strictly_increasing_and_in_range(self):
        sampler = CoinFlipSampler(1 / 4, rng=RandomSource(3))
        indices = sampler.accepted_indices(10_000)
        assert indices == sorted(set(indices))
        assert all(0 <= index < 10_000 for index in indices)

    def test_space_accounting_unchanged_by_batch_api(self):
        sampler = CoinFlipSampler(1 / 1024, rng=RandomSource(4))
        before = sampler.space_bits()
        sampler.accepted_indices(100_000)
        assert sampler.space_bits() == before

    def test_bernoulli_offer_many_matches_extend_statistics(self):
        batched = BernoulliSampler(0.25, rng=RandomSource(5))
        kept = batched.offer_many(list(range(40_000)))
        assert batched.stream_length == 40_000
        assert batched.sample_size == len(kept) == len(batched.items)
        assert 0.22 * 40_000 < len(kept) < 0.28 * 40_000
        assert kept == sorted(kept)


class TestVectorizedHashing:
    def test_hash_many_matches_scalar(self):
        family = UniversalHashFamily(100_000, 997, rng=RandomSource(1))
        function = family.draw()
        items = np.array([0, 1, 2, 999, 99_999, 12_345], dtype=np.int64)
        assert function.hash_many(items).tolist() == [function(int(x)) for x in items]

    def test_hash_many_big_prime_path_matches_scalar(self):
        # Algorithm 1's id hash uses primes far beyond the int64-safe product range.
        function = UniversalHashFunction(
            multiplier=10**14 + 37, offset=10**13 + 1, prime=10**14 + 31, range_size=10**9
        )
        items = np.array([0, 5, 123_456, 10**6], dtype=np.int64)
        assert function.hash_many(items).tolist() == [function(int(x)) for x in items]

    def test_hash_many_rejects_negatives(self):
        function = UniversalHashFamily(1000, 10, rng=RandomSource(2)).draw()
        with pytest.raises(ValueError):
            function.hash_many(np.array([3, -1], dtype=np.int64))

    def test_hash_many_empty(self):
        function = UniversalHashFamily(1000, 10, rng=RandomSource(3)).draw()
        assert function.hash_many(np.array([], dtype=np.int64)).size == 0


class TestBatchedAcceleratedCounters:
    def test_fixed_probability_counter_offer_many_unbiased(self):
        estimates = []
        for seed in range(200):
            counter = AcceleratedCounter(0.125, rng=RandomSource(seed))
            counter.offer_many(4_000)
            estimates.append(counter.estimate())
        mean = sum(estimates) / len(estimates)
        assert abs(mean - 4_000) < 0.05 * 4_000

    def test_offer_many_negative_raises(self):
        counter = AcceleratedCounter(0.5, rng=RandomSource(1))
        with pytest.raises(ValueError):
            counter.offer_many(-1)
        epoch_counter = EpochAcceleratedCounter(0.1, rng=RandomSource(1))
        with pytest.raises(ValueError):
            epoch_counter.offer_many(-1)
        with pytest.raises(ValueError):
            epoch_counter.offer_many_given_successes(5, 9)

    def test_epoch_counter_offer_many_matches_sequential_distribution(self):
        """Batched offers must estimate the same frequency as per-occurrence offers."""
        occurrences = 5_000
        sequential_estimates, batched_estimates = [], []
        for seed in range(60):
            sequential = EpochAcceleratedCounter(0.05, rng=RandomSource(seed))
            for _ in range(occurrences):
                sequential.offer()
            sequential_estimates.append(sequential.estimate())
            batched = EpochAcceleratedCounter(0.05, rng=RandomSource(1_000 + seed))
            batched.offer_many(occurrences)
            batched_estimates.append(batched.estimate())
        sequential_mean = sum(sequential_estimates) / len(sequential_estimates)
        batched_mean = sum(batched_estimates) / len(batched_estimates)
        assert abs(batched_mean - sequential_mean) < 0.1 * occurrences
        assert abs(batched_mean - occurrences) < 0.1 * occurrences

    def test_epoch_counter_conditional_replay_matches_unconditional(self):
        """offer_many_given_successes with a binomial success count is the same law as
        offer_many (binomial thinning)."""
        occurrences = 2_000
        unconditional, conditional = [], []
        for seed in range(60):
            direct = EpochAcceleratedCounter(0.05, rng=RandomSource(seed))
            direct.offer_many(occurrences)
            unconditional.append(direct.subsample_count)
            split_rng = RandomSource(2_000 + seed)
            successes = split_rng.binomial(occurrences, 0.05)
            replayed = EpochAcceleratedCounter(0.05, rng=split_rng)
            replayed.offer_many_given_successes(occurrences, successes)
            conditional.append(replayed.subsample_count)
        mean_unconditional = sum(unconditional) / len(unconditional)
        mean_conditional = sum(conditional) / len(conditional)
        assert abs(mean_unconditional - 0.05 * occurrences) < 0.1 * 0.05 * occurrences * 3
        assert abs(mean_conditional - 0.05 * occurrences) < 0.1 * 0.05 * occurrences * 3


class TestBatchNormalizationHelpers:
    def test_as_item_array_passthrough(self):
        array = np.array([1, 2, 3], dtype=np.int64)
        assert as_item_array(array) is array

    def test_as_item_array_converts(self):
        result = as_item_array([3, 1, 2])
        assert result.dtype == np.int64
        assert result.tolist() == [3, 1, 2]

    def test_validate_universe_message_matches_sequential(self):
        with pytest.raises(ValueError, match=r"item 7 outside universe \[0, 5\)"):
            validate_universe(np.array([1, 7, 2], dtype=np.int64), 5)
        validate_universe(np.array([], dtype=np.int64), 5)  # empty is fine

    def test_aggregate_counts(self):
        values, counts = aggregate_counts(np.array([5, 3, 5, 5, 3, 1], dtype=np.int64))
        assert values.tolist() == [1, 3, 5]
        assert counts.tolist() == [1, 2, 3]

    def test_iter_chunks_over_stream_and_iterable(self):
        stream = Stream(items=list(range(10)), universe_size=10)
        chunks = [chunk.tolist() for chunk in iter_chunks(stream, 4)]
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        lazy = [chunk.tolist() for chunk in iter_chunks(iter(range(5)), 2)]
        assert lazy == [[0, 1], [2, 3], [4]]
        with pytest.raises(ValueError):
            list(iter_chunks([1], 0))


class TestStreamArrayBacking:
    def test_sequence_facade(self):
        stream = Stream(items=[4, 2, 4], universe_size=5)
        assert isinstance(stream.array, np.ndarray)
        assert stream.array.dtype == np.int64
        assert list(stream) == [4, 2, 4]
        assert all(isinstance(item, int) for item in stream)
        assert stream[1] == 2
        assert stream.tolist() == [4, 2, 4]

    def test_vectorized_validation_message(self):
        with pytest.raises(ValueError, match=r"stream item 9 outside universe"):
            Stream(items=[1, 9], universe_size=5)

    def test_empty_stream(self):
        stream = Stream(items=[], universe_size=3)
        assert len(stream) == 0
        assert list(stream) == []


class TestRingRechunking:
    """rechunk_arrays' staging-buffer implementation: exactness and aliasing rules."""

    def test_chunks_survive_deferred_consumption(self):
        """Queued chunks must stay valid after later batches arrive (no reuse bugs)."""
        rng = np.random.default_rng(3)
        batches = [rng.integers(0, 100, size=rng.integers(1, 50)).astype(np.int64)
                   for _ in range(40)]
        expected = np.concatenate(batches)
        # materialize lazily, as the producer queue does: collect every yielded
        # chunk first, verify the concatenation only afterwards
        chunks = list(rechunk_arrays(iter(batches), 16))
        np.testing.assert_array_equal(np.concatenate(chunks), expected)
        assert all(len(chunk) == 16 for chunk in chunks[:-1])

    def test_assembled_chunks_do_not_alias_each_other(self):
        """Boundary-straddling chunks are distinct buffers, not one reused ring slot."""
        batches = [np.arange(i * 10, i * 10 + 10) for i in range(8)]  # 10 never divides 16
        chunks = list(rechunk_arrays(iter(batches), 16))
        for a in range(len(chunks)):
            for b in range(a + 1, len(chunks)):
                assert not np.shares_memory(chunks[a], chunks[b])

    def test_aligned_whole_chunks_are_zero_copy_views(self):
        """With empty staging, a whole in-batch chunk passes through uncopied."""
        big = np.arange(64, dtype=np.int64)
        chunks = list(rechunk_arrays(iter([big]), 16))
        assert len(chunks) == 4
        for chunk in chunks:
            assert np.shares_memory(chunk, big)

    def test_mixed_views_and_staged_chunks(self):
        """A straddling fragment lands in staging; realigned tails stream as views."""
        batches = [np.arange(0, 10), np.arange(10, 42)]  # 10 then 32 items, chunk 16
        chunks = list(rechunk_arrays(iter(batches), 16))
        np.testing.assert_array_equal(np.concatenate(chunks), np.arange(42))
        assert [len(chunk) for chunk in chunks] == [16, 16, 10]
        # chunk 0 straddles the batch boundary: staged, aliases neither input
        assert not np.shares_memory(chunks[0], batches[1])
        # chunk 1 is wholly inside batch 1 and starts with empty staging: a view
        assert np.shares_memory(chunks[1], batches[1])

    def test_read_only_inputs_are_accepted(self):
        """Frames decoded zero-copy arrive read-only; staging copies must not care."""
        batch = np.arange(30, dtype=np.int64)
        batch.flags.writeable = False
        chunks = list(rechunk_arrays(iter([batch, batch]), 16))
        np.testing.assert_array_equal(
            np.concatenate(chunks), np.concatenate([np.arange(30), np.arange(30)])
        )
