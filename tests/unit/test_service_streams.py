"""Tests for multi-stream tenancy: StreamRegistry, stream commands, eviction races.

Three layers: the :class:`~repro.service.StreamRegistry` in isolation (lifecycle,
LRU checkpoint-eviction, bit-for-bit restore), the wire protocol's ``stream``
key and lifecycle commands through a real server, and barrier-synchronized
stress tests on the eviction path — concurrent push/query/evict/restore must
never lose an acked chunk and never serve a stale snapshot.
"""

import os
import threading
from collections import Counter

import numpy as np
import pytest

from repro.baselines.exact import ExactCounter
from repro.baselines.misra_gries import MisraGries
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.observability import MetricRegistry
from repro.pipeline import PipelinedExecutor
from repro.primitives.rng import RandomSource
from repro.service import (
    Checkpointer,
    IngestServer,
    ServiceClient,
    ServiceError,
    StreamRegistry,
    derive_stream_seed,
)

UNIVERSE = 500
LENGTH = 8_000
CHUNK = 256


def make_sketch(seed=1):
    return SimpleListHeavyHitters(
        epsilon=0.02, phi=0.1, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(seed),
    )


def make_stream(seed=3, length=LENGTH):
    rng = RandomSource(seed).numpy_generator()
    heavy = np.full(length // 2, 7, dtype=np.int64)
    rest = rng.integers(0, UNIVERSE, size=length - len(heavy))
    items = np.concatenate([heavy, rest])
    rng.shuffle(items)
    return items.astype(np.int64)


@pytest.fixture
def registry(tmp_path):
    instance = StreamRegistry(
        lambda name: PipelinedExecutor(sketch=ExactCounter(UNIVERSE), chunk_size=CHUNK),
        chunk_size=CHUNK,
        max_live_streams=2,
        spill_dir=str(tmp_path / "spill"),
    )
    yield instance
    instance.close()


class TestStreamRegistryLifecycle:
    def test_create_list_delete(self, registry):
        info = registry.create("alpha")
        assert info["stream"] == "alpha" and info["live"] is True
        registry.create("beta")
        names = [entry["stream"] for entry in registry.list_streams()]
        assert names == ["alpha", "beta"]  # sorted
        deleted = registry.delete("alpha")
        assert deleted["deleted"] is True
        assert [entry["stream"] for entry in registry.list_streams()] == ["beta"]

    def test_duplicate_create_rejected(self, registry):
        registry.create("alpha")
        with pytest.raises(ValueError, match="already exists"):
            registry.create("alpha")

    @pytest.mark.parametrize("bad", ["", None, 7, "default"])
    def test_bad_names_rejected(self, registry, bad):
        with pytest.raises(ValueError):
            registry.create(bad)

    def test_push_creates_implicitly(self, registry):
        received = registry.push("implicit", np.arange(10, dtype=np.int64))
        assert received == 10
        assert registry.stream_info("implicit")["items_received"] == 10

    def test_seal_is_idempotent_but_rejects_new_kwargs(self, registry):
        registry.push("alpha", np.arange(100, dtype=np.int64))
        first = registry.seal("alpha", report_kwargs={"phi": 0.1})
        again = registry.seal("alpha", report_kwargs={"phi": 0.1})
        assert again is first
        with pytest.raises(ValueError, match="already sealed"):
            registry.seal("alpha", report_kwargs={"phi": 0.2})
        with pytest.raises(RuntimeError, match="sealed"):
            registry.push("alpha", np.arange(3, dtype=np.int64))
        with pytest.raises(ValueError, match="sealed"):
            registry.query("alpha", report_kwargs={"phi": 0.2})

    def test_unknown_stream_raises(self, registry):
        with pytest.raises(KeyError):
            registry.stream_info("ghost")
        with pytest.raises(KeyError):
            registry.seal("ghost")

    def test_seal_ingests_the_remainder(self, registry):
        registry.push("alpha", np.arange(CHUNK + 37, dtype=np.int64) % UNIVERSE)
        assert registry.flush_info("alpha")["flushed_to"] == CHUNK
        result = registry.seal("alpha")
        assert result.items_processed == CHUNK + 37

    def test_sealed_stream_survives_checkpoint_refusal(self, registry):
        registry.push("alpha", np.arange(16, dtype=np.int64))
        registry.seal("alpha")
        with pytest.raises(RuntimeError, match="no resumable state"):
            registry.checkpoint_state("alpha")


class TestEvictionRestore:
    def test_lru_eviction_keeps_cap_and_restores_lazily(self, registry):
        for index in range(4):
            registry.push(f"s{index}", np.full(CHUNK, index, dtype=np.int64))
        assert registry.live_count <= 2
        infos = {entry["stream"]: entry for entry in registry.list_streams()}
        assert infos["s0"]["spilled"] and infos["s1"]["spilled"]
        # Touching a spilled stream restores it (and evicts another).
        final, snapshot = registry.query("s0")
        assert final is False
        assert snapshot.sketch.frequencies() == {0: CHUNK}
        assert registry.stream_info("s0")["restores"] == 1
        assert registry.live_count <= 2

    def test_eviction_boundaries_are_chunk_aligned(self, registry):
        registry.push("subject", np.arange(CHUNK * 2 + 10, dtype=np.int64) % UNIVERSE)
        registry.push("a", np.zeros(1, dtype=np.int64))
        registry.push("b", np.zeros(1, dtype=np.int64))  # evicts "subject"
        info = registry.stream_info("subject")
        assert info["spilled"] is True
        assert info["eviction_boundaries"] == [CHUNK * 2]

    def test_acked_remainder_survives_eviction(self, registry):
        # 100 items — less than one chunk, so eviction spills an *empty* sink
        # while the remainder rides along in memory.
        registry.push("subject", np.full(100, 9, dtype=np.int64))
        registry.push("a", np.zeros(1, dtype=np.int64))
        registry.push("b", np.zeros(1, dtype=np.int64))
        assert registry.stream_info("subject")["spilled"] is True
        registry.push("subject", np.full(CHUNK, 9, dtype=np.int64))
        result = registry.seal("subject")
        assert result.sketch.frequencies() == {9: 100 + CHUNK}

    def test_deterministic_sketch_evict_restore_equals_uninterrupted_run(self, tmp_path):
        items = make_stream(5)
        registry = StreamRegistry(
            lambda name: PipelinedExecutor(
                sketch=MisraGries(0.02, UNIVERSE), chunk_size=CHUNK
            ),
            chunk_size=CHUNK,
            max_live_streams=1,
            spill_dir=str(tmp_path / "spill"),
        )
        try:
            for start in range(0, len(items), 512):
                registry.push("subject", items[start:start + 512])
                registry.push("decoy", np.zeros(1, dtype=np.int64))  # evicts subject
            served = registry.seal("subject", report_kwargs={"phi": 0.1})
            assert registry.stream_info("subject")["evictions"] > 0
        finally:
            registry.close()
        solo = PipelinedExecutor(
            sketch=MisraGries(0.02, UNIVERSE), chunk_size=CHUNK
        ).run(iter(items.tolist()), report_kwargs={"phi": 0.1})
        assert dict(served.report.items) == dict(solo.report.items)

    def test_randomized_sketch_evict_restore_equals_round_trip_replay(self, tmp_path):
        """The registry docstring's contract, verified for a seeded sketch.

        Evict→restore re-seeds the RNG (the serialize contract), so the
        reference is an offline replay that round-trips its state through the
        same Checkpointer at the recorded eviction boundaries — after which
        the equality is bit-for-bit, not statistical.
        """
        items = make_stream(11)
        seed = derive_stream_seed(42, "subject")

        def build(name):
            stream_seed = derive_stream_seed(42, name)
            return PipelinedExecutor(
                sketch=SimpleListHeavyHitters(
                    epsilon=0.02, phi=0.1, universe_size=UNIVERSE,
                    stream_length=LENGTH, rng=RandomSource(stream_seed),
                ),
                chunk_size=CHUNK,
            )

        registry = StreamRegistry(
            build, chunk_size=CHUNK, max_live_streams=1,
            spill_dir=str(tmp_path / "spill"),
        )
        try:
            for start in range(0, len(items), 1024):
                registry.push("subject", items[start:start + 1024])
                registry.push("decoy", np.zeros(1, dtype=np.int64))
            boundaries = registry.stream_info("subject")["eviction_boundaries"]
            assert boundaries  # evictions really happened
            served = registry.seal("subject", report_kwargs={})
        finally:
            registry.close()

        replay = PipelinedExecutor(
            sketch=SimpleListHeavyHitters(
                epsilon=0.02, phi=0.1, universe_size=UNIVERSE,
                stream_length=LENGTH, rng=RandomSource(seed),
            ),
            chunk_size=CHUNK,
        )
        pending = list(boundaries)
        ckpt = os.path.join(tmp_path, "replay.ckpt")
        for start in range(0, len(items), CHUNK):
            while pending and replay.items_processed == pending[0]:
                pending.pop(0)
                Checkpointer().save(ckpt, replay.sink_state())
                replay, _ = Checkpointer().restore_pipeline(ckpt, chunk_size=CHUNK)
            replay.ingest_chunk(items[start:start + CHUNK])
        while pending and replay.items_processed == pending[0]:
            pending.pop(0)
            Checkpointer().save(ckpt, replay.sink_state())
            replay, _ = Checkpointer().restore_pipeline(ckpt, chunk_size=CHUNK)
        solo = replay.finalize(report_kwargs={})
        assert dict(served.report.items) == dict(solo.report.items)

    def test_checkpoint_state_does_not_restore_a_spilled_stream(self, registry):
        registry.push("subject", np.full(CHUNK, 3, dtype=np.int64))
        registry.push("a", np.zeros(1, dtype=np.int64))
        registry.push("b", np.zeros(1, dtype=np.int64))
        assert registry.stream_info("subject")["spilled"] is True
        state = registry.checkpoint_state("subject")
        assert state.items_processed == CHUNK
        assert registry.stream_info("subject")["spilled"] is True  # still idle

    def test_per_stream_metrics_families(self, tmp_path):
        metrics = MetricRegistry()
        registry = StreamRegistry(
            lambda name: PipelinedExecutor(
                sketch=ExactCounter(UNIVERSE), chunk_size=CHUNK
            ),
            chunk_size=CHUNK,
            max_live_streams=1,
            spill_dir=str(tmp_path / "spill"),
            registry=metrics,
        )
        try:
            registry.push("a", np.zeros(CHUNK, dtype=np.int64))
            registry.push("b", np.zeros(CHUNK, dtype=np.int64))  # evicts a
            registry.push("a", np.zeros(10, dtype=np.int64))     # restores a
            families = metrics.snapshot()["metrics"]

            def series(name):
                return {
                    tuple(sorted(entry["labels"].items())): entry["value"]
                    for entry in families[name]["series"]
                }

            assert series("repro_service_stream_pushes_total")[
                (("stream", "a"),)
            ] == 2
            assert series("repro_service_stream_items_total")[
                (("stream", "a"),)
            ] == CHUNK + 10
            assert series("repro_service_stream_evictions_total")[
                (("stream", "a"),)
            ] == 1
            assert series("repro_service_stream_restores_total")[
                (("stream", "a"),)
            ] == 1
            live = families["repro_service_live_streams"]["series"][0]["value"]
            assert live <= 1
        finally:
            registry.close()

    def test_derive_stream_seed_is_stable_and_name_dependent(self):
        assert derive_stream_seed(7, "a") == derive_stream_seed(7, "a")
        assert derive_stream_seed(7, "a") != derive_stream_seed(7, "b")
        assert derive_stream_seed(7, "a") != derive_stream_seed(8, "a")
        assert 0 <= derive_stream_seed(None, "a") < (1 << 62)


def tenancy_server(boot, *, max_live=2, seed=42, tcp=False):
    def factory(name):
        return PipelinedExecutor(
            sketch=SimpleListHeavyHitters(
                epsilon=0.02, phi=0.1, universe_size=UNIVERSE,
                stream_length=LENGTH,
                rng=RandomSource(derive_stream_seed(seed, name)),
            ),
            chunk_size=CHUNK,
        )

    return boot(
        PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK),
        tcp=tcp,
        universe_size=UNIVERSE,
        stream_factory=factory,
        max_live_streams=max_live,
    )


class TestServerStreamCommands:
    def test_lifecycle_round_trip(self, service_server):
        server = tenancy_server(service_server)
        with ServiceClient(server.endpoint) as client:
            created = client.stream_create("alpha")
            assert created["stream"] == "alpha" and created["live"] is True
            with pytest.raises(ServiceError, match="already exists"):
                client.stream_create("alpha")
            client.push(np.arange(CHUNK, dtype=np.int64), stream="alpha")
            sealed = client.stream_seal("alpha")
            assert sealed["items_processed"] == CHUNK
            listing = client.stream_list()
            assert [entry["stream"] for entry in listing["streams"]] == ["alpha"]
            assert listing["max_live_streams"] == 2
            deleted = client.stream_delete("alpha")
            assert deleted["deleted"] is True
            assert client.stream_list()["streams"] == []

    def test_named_and_default_streams_are_isolated(self, service_server):
        server = tenancy_server(service_server)
        with ServiceClient(server.endpoint) as client:
            client.push(np.asarray([1, 1, 2], dtype=np.int64), stream="named")
            client.push(np.asarray([3, 3, 3], dtype=np.int64))
            flushed = client.flush(stream="named")
            assert flushed["items_received"] == 3
            client.finish()
            assert client.query().items_processed == 3
            client.stream_seal("named")
            named = client.query(stream="named")
            assert named.final and named.items_processed == 3

    def test_push_stream_resumes_per_stream_cursor(self, service_server):
        server = tenancy_server(service_server)
        items = make_stream(9, length=4_000)
        batches = [items[start:start + 700] for start in range(0, len(items), 700)]
        with ServiceClient(server.endpoint) as client:
            received = client.push_stream(iter(batches), window=4, stream="alpha")
            assert received == len(items)
            assert client.config(stream="alpha")["items_received"] == len(items)
            assert client.config()["items_received"] == 0  # default untouched

    def test_queries_served_across_evictions_match_solo_replay(
        self, service_server, tmp_path
    ):
        server = tenancy_server(service_server, max_live=1)
        streams = {f"s{index}": make_stream(20 + index, length=4_000)
                   for index in range(3)}
        with ServiceClient(server.endpoint) as client:
            for start in range(0, 4_000, 1_000):
                for name, items in streams.items():
                    client.push(items[start:start + 1_000], stream=name)
            for name, items in streams.items():
                client.stream_seal(name)
                served = client.query(stream=name)
                stats = client.stats(stream=name)
                assert stats["evictions"] > 0  # the cap forced real churn
                solo = PipelinedExecutor(
                    sketch=SimpleListHeavyHitters(
                        epsilon=0.02, phi=0.1, universe_size=UNIVERSE,
                        stream_length=LENGTH,
                        rng=RandomSource(derive_stream_seed(42, name)),
                    ),
                    chunk_size=CHUNK,
                )
                path = str(tmp_path / f"{name}.rt.ckpt")
                pending = list(stats["eviction_boundaries"])

                def round_trip_due(replay):
                    while pending and replay.items_processed == pending[0]:
                        pending.pop(0)
                        Checkpointer().save(path, replay.sink_state())
                        replay, _ = Checkpointer().restore_pipeline(
                            path, chunk_size=CHUNK
                        )
                    return replay

                for start in range(0, len(items), CHUNK):
                    solo = round_trip_due(solo)
                    solo.ingest_chunk(items[start:start + CHUNK])
                solo = round_trip_due(solo)
                reference = solo.finalize(report_kwargs={})
                assert dict(served.report.items) == dict(reference.report.items)

    def test_stream_commands_without_registry_are_refused(self, service_server):
        server = service_server(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK),
            universe_size=UNIVERSE,
        )
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ServiceError, match="without named-stream support"):
                client.stream_create("alpha")
            with pytest.raises(ServiceError, match="without named-stream support"):
                client.push(np.asarray([1, 2, 3], dtype=np.int64), stream="alpha")

    def test_default_stream_name_is_refused_on_lifecycle_commands(self, service_server):
        server = tenancy_server(service_server)
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ServiceError, match="implicit stream"):
                client.stream_create("default")
            with pytest.raises(ServiceError, match="requires a 'stream' name"):
                client.stream_seal("")

    def test_commands_that_do_not_accept_a_stream_are_refused(self, service_server):
        server = tenancy_server(service_server)
        with ServiceClient(server.endpoint) as client:
            client.push(np.asarray([1], dtype=np.int64), stream="alpha")
            with pytest.raises(ServiceError, match="does not accept a stream"):
                client._round_trip({"cmd": "metrics", "stream": "alpha"})

    def test_max_live_streams_requires_a_factory(self):
        with pytest.raises(ValueError, match="stream_factory"):
            IngestServer(
                PipelinedExecutor(sketch=make_sketch(), chunk_size=CHUNK),
                port=0, universe_size=UNIVERSE, max_live_streams=2,
            )

    def test_stream_checkpoint_restores_as_default_pipeline(self, service_server, tmp_path):
        server = tenancy_server(service_server)
        items = make_stream(33, length=2_048)
        path = str(tmp_path / "alpha.ckpt")
        with ServiceClient(server.endpoint) as client:
            client.push(items[:1024], stream="alpha")
            reply = client.checkpoint(path, stream="alpha")
            assert reply["stream"] == "alpha"
            assert reply["items_processed"] == 1024
        restored, manifest = Checkpointer().restore_pipeline(path, chunk_size=CHUNK)
        assert manifest["config"]["stream"] == "alpha"
        resumed = service_server(restored, universe_size=UNIVERSE)
        with ServiceClient(resumed.endpoint) as client:
            client.push(items[1024:])
            client.finish()
            assert client.query().items_processed == len(items)

    def test_config_reports_stream_counts(self, service_server):
        server = tenancy_server(service_server)
        with ServiceClient(server.endpoint) as client:
            config = client.config()
            assert config["max_live_streams"] == 2
            assert config["streams"] == 0
            client.push([1], stream="alpha")
            assert client.config()["streams"] == 1


class TestEvictionConcurrencyStress:
    def test_concurrent_pushers_with_forced_eviction_lose_nothing(self, tmp_path):
        """Barrier-released pushers to distinct streams under max_live=1.

        Every push either fully ingests (ack covers its chunks) or raises —
        whatever the evict/restore interleaving, the sealed exact counts must
        equal each stream's pushed items exactly.
        """
        registry = StreamRegistry(
            lambda name: PipelinedExecutor(
                sketch=ExactCounter(UNIVERSE), chunk_size=64
            ),
            chunk_size=64,
            max_live_streams=1,
            spill_dir=str(tmp_path / "spill"),
        )
        workers = 4
        batches_per_worker = 20
        barrier = threading.Barrier(workers)
        errors = []

        def pusher(index):
            rng = RandomSource(100 + index).numpy_generator()
            barrier.wait()
            try:
                for _ in range(batches_per_worker):
                    batch = rng.integers(0, UNIVERSE, size=37).astype(np.int64)
                    registry.push(f"w{index}", batch)
            except Exception as exc:  # pragma: no cover - failure diagnostics
                errors.append(exc)

        try:
            threads = [
                threading.Thread(target=pusher, args=(index,))
                for index in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert errors == []
            for index in range(workers):
                rng = RandomSource(100 + index).numpy_generator()
                expected = Counter()
                for _ in range(batches_per_worker):
                    expected.update(
                        rng.integers(0, UNIVERSE, size=37).astype(np.int64).tolist()
                    )
                result = registry.seal(f"w{index}")
                assert result.sketch.frequencies() == dict(expected)
                info = registry.stream_info(f"w{index}")
                assert info["items_received"] == batches_per_worker * 37
            total_evictions = sum(
                entry["evictions"] for entry in registry.list_streams()
            )
            assert total_evictions > 0
        finally:
            registry.close()

    def test_concurrent_push_query_never_serves_stale_or_torn_state(self, tmp_path):
        """A reader racing a writer sees chunk-aligned, monotonic prefixes only.

        The registry lock makes push/evict/restore/query atomic: every observed
        snapshot must be an exact multiple of the chunk size, itemwise-exact for
        that prefix, and never regress while pushes continue.
        """
        chunk = 64
        registry = StreamRegistry(
            lambda name: PipelinedExecutor(
                sketch=ExactCounter(UNIVERSE), chunk_size=chunk
            ),
            chunk_size=chunk,
            max_live_streams=1,
            spill_dir=str(tmp_path / "spill"),
        )
        total_batches = 60
        barrier = threading.Barrier(3)
        stop = threading.Event()
        failures = []

        def writer():
            barrier.wait()
            try:
                for index in range(total_batches):
                    registry.push(
                        "subject", np.full(37, index % UNIVERSE, dtype=np.int64)
                    )
            except Exception as exc:  # pragma: no cover - failure diagnostics
                failures.append(("writer", exc))
            finally:
                stop.set()

        def churn():
            # Competes for the single live slot, forcing subject evictions.
            barrier.wait()
            index = 0
            try:
                while not stop.is_set():
                    registry.push(
                        f"churn{index % 2}", np.zeros(1, dtype=np.int64)
                    )
                    index += 1
            except Exception as exc:  # pragma: no cover - failure diagnostics
                failures.append(("churn", exc))

        def reader():
            barrier.wait()
            seen = 0
            try:
                while not stop.is_set():
                    try:
                        final, snapshot = registry.query("subject")
                    except KeyError:
                        continue  # not created yet
                    assert final is False
                    processed = snapshot.items_processed
                    assert processed % chunk == 0
                    assert processed >= seen, "snapshot regressed"
                    seen = processed
            except Exception as exc:  # pragma: no cover - failure diagnostics
                failures.append(("reader", exc))

        try:
            threads = [
                threading.Thread(target=target)
                for target in (writer, churn, reader)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert failures == []
            result = registry.seal("subject")
            expected = Counter()
            for index in range(total_batches):
                expected.update([index % UNIVERSE] * 37)
            assert result.sketch.frequencies() == dict(expected)
            assert registry.stream_info("subject")["evictions"] > 0
        finally:
            registry.close()

    def test_concurrent_clients_on_distinct_streams_over_the_wire(self, service_server):
        """Whole-stack race: N clients, N streams, one live slot, TCP framing."""
        server = tenancy_server(service_server, max_live=1, tcp=True)
        workers = 3
        length = 1_500
        barrier = threading.Barrier(workers)
        failures = []

        def client_worker(index):
            items = make_stream(50 + index, length=length)
            try:
                with ServiceClient(server.endpoint) as client:
                    barrier.wait()
                    for start in range(0, length, 250):
                        client.push(items[start:start + 250], stream=f"c{index}")
                    sealed = client.stream_seal(f"c{index}")
                    assert sealed["items_processed"] == length
            except Exception as exc:  # pragma: no cover - failure diagnostics
                failures.append((index, exc))

        threads = [
            threading.Thread(target=client_worker, args=(index,))
            for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert failures == []
        with ServiceClient(server.endpoint) as client:
            listing = client.stream_list()
            assert listing["live_streams"] <= 1
            for entry in listing["streams"]:
                assert entry["sealed"] is True
                assert entry["items_received"] == length
