"""Regression guard for the zero-copy ingest path: read-only batches are fine.

The service layer's ``decode_items`` hands ``insert_many`` a **read-only**
``np.frombuffer`` view of the received frame (no copy anywhere between the socket
and the sketch).  That optimization is only sound if every sketch's batched path
(a) accepts an array it cannot write to and (b) never mutates its input even when
the array *is* writable.  These tests hold all eight sketches (plus the
unknown-length wrapper and the shard router) to both properties.
"""

import numpy as np
import pytest

from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.misra_gries import MisraGries
from repro.baselines.space_saving import SpaceSaving
from repro.baselines.sticky_sampling import StickySampling
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.unknown_length import UnknownLengthWrapper
from repro.primitives.rng import RandomSource
from repro.sharding import ShardRouter

UNIVERSE = 512
LENGTH = 4_096

SKETCH_FACTORIES = {
    "optimal": lambda: OptimalListHeavyHitters(
        epsilon=0.05, phi=0.1, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(11),
    ),
    "simple": lambda: SimpleListHeavyHitters(
        epsilon=0.05, phi=0.1, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(11),
    ),
    "misra-gries": lambda: MisraGries(0.05, UNIVERSE),
    "space-saving": lambda: SpaceSaving(0.05, UNIVERSE),
    "count-min": lambda: CountMinSketch(0.05, 0.1, UNIVERSE, rng=RandomSource(11)),
    "count-sketch": lambda: CountSketch(0.1, 0.1, UNIVERSE, rng=RandomSource(11)),
    "lossy-counting": lambda: LossyCounting(0.05, UNIVERSE),
    "sticky-sampling": lambda: StickySampling(0.05, 0.1, 0.1, UNIVERSE, rng=RandomSource(11)),
    "unknown-length": lambda: UnknownLengthWrapper(
        lambda m: MisraGries(0.05, UNIVERSE, stream_length_hint=m),
        epsilon=0.05,
        rng=RandomSource(11),
    ),
}


def make_batch(writeable: bool) -> np.ndarray:
    rng = RandomSource(3).numpy_generator()
    heavy = np.full(LENGTH // 2, 7, dtype=np.int64)  # keep the sketches non-empty
    rest = rng.integers(0, UNIVERSE, size=LENGTH - len(heavy))
    array = np.concatenate([heavy, rest]).astype(np.int64)
    rng.shuffle(array)
    array.flags.writeable = writeable
    return array


@pytest.mark.parametrize("label", sorted(SKETCH_FACTORIES))
def test_insert_many_accepts_read_only_input(label):
    """A frombuffer-style read-only batch must ingest without error."""
    batch = make_batch(writeable=False)
    sketch = SKETCH_FACTORIES[label]()
    sketch.insert_many(batch)  # must not raise "assignment destination is read-only"
    assert sketch.space_bits() > 0


@pytest.mark.parametrize("label", sorted(SKETCH_FACTORIES))
def test_insert_many_never_mutates_its_input(label):
    """Even a writable batch must come back bit-identical after ingestion."""
    batch = make_batch(writeable=True)
    original = batch.copy()
    sketch = SKETCH_FACTORIES[label]()
    sketch.insert_many(batch)
    np.testing.assert_array_equal(batch, original)


def test_router_accepts_and_preserves_read_only_chunks():
    """ShardRouter.partition is on the served ingest path too."""
    router = ShardRouter(4, UNIVERSE, rng=RandomSource(5))
    batch = make_batch(writeable=False)
    original = batch.copy()
    partitioned = router.partition(batch)
    assert sum(len(part) for part in partitioned) == len(batch)
    np.testing.assert_array_equal(batch, original)
