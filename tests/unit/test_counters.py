"""Unit tests for repro.primitives.counters."""

import pytest

from repro.primitives.counters import SaturatingCounter, TruncatedCounter, VariableLengthCounter


class TestVariableLengthCounter:
    def test_starts_at_zero(self):
        assert int(VariableLengthCounter()) == 0

    def test_increment_and_decrement(self):
        counter = VariableLengthCounter()
        counter.increment()
        counter.increment(5)
        assert int(counter) == 6
        counter.decrement(2)
        assert int(counter) == 4

    def test_decrement_clamps_at_zero(self):
        counter = VariableLengthCounter(3)
        counter.decrement(10)
        assert int(counter) == 0

    def test_space_grows_logarithmically(self):
        counter = VariableLengthCounter()
        counter.increment(1)
        one_bit = counter.space_bits()
        counter.increment(2**20)
        assert counter.space_bits() > one_bit
        assert counter.space_bits() <= 22

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            VariableLengthCounter(-1)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            VariableLengthCounter().increment(-1)


class TestTruncatedCounter:
    def test_truncates_at_cap(self):
        counter = TruncatedCounter(cap=10)
        for _ in range(100):
            counter.increment()
        assert int(counter) == 10
        assert counter.is_saturated

    def test_below_cap_is_exact(self):
        counter = TruncatedCounter(cap=100)
        for _ in range(37):
            counter.increment()
        assert int(counter) == 37
        assert not counter.is_saturated

    def test_space_depends_only_on_cap(self):
        small = TruncatedCounter(cap=10)
        large = TruncatedCounter(cap=10)
        for _ in range(5):
            small.increment()
        for _ in range(1000):
            large.increment()
        assert small.space_bits() == large.space_bits()

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            TruncatedCounter(cap=0)

    def test_initial_value_clamped(self):
        counter = TruncatedCounter(cap=5, initial=100)
        assert int(counter) == 5


class TestSaturatingCounter:
    def test_decrement(self):
        counter = SaturatingCounter(cap=10, initial=5)
        counter.decrement(3)
        assert int(counter) == 2
        counter.decrement(10)
        assert int(counter) == 0

    def test_increment_still_saturates(self):
        counter = SaturatingCounter(cap=4)
        counter.increment(100)
        assert int(counter) == 4
