"""Tests for the service layer (repro.service): protocol, server, client, checkpoints."""

import os
import pickle
import socket
import threading

import numpy as np
import pytest

from repro.baselines.misra_gries import MisraGries
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.results import HeavyHittersReport
from repro.pipeline import ArrayBatchSource, ChunkProducer, PipelinedExecutor, SinkState
from repro.primitives.batching import rechunk_arrays
from repro.primitives.rng import RandomSource
from repro.service import (
    CheckpointError,
    Checkpointer,
    IngestServer,
    ServiceClient,
    ServiceError,
    parse_endpoint,
)
from repro.service.protocol import (
    ProtocolError,
    decode_items,
    encode_items,
    recv_frame,
    report_from_payload,
    report_to_payload,
    send_frame,
)
from repro.sharding import ShardedExecutor, ShardRouter

UNIVERSE = 500
LENGTH = 20_000


def make_sketch(seed=1):
    return SimpleListHeavyHitters(
        epsilon=0.02, phi=0.1, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(seed),
    )


def make_stream(seed=3):
    rng = RandomSource(seed).numpy_generator()
    heavy = np.full(LENGTH // 2, 7, dtype=np.int64)
    rest = rng.integers(0, UNIVERSE, size=LENGTH - len(heavy))
    items = np.concatenate([heavy, rest])
    rng.shuffle(items)
    return items.astype(np.int64)


@pytest.fixture
def server(service_server):
    # The shared boot-factory from conftest.py; TCP because several tests in
    # this module exercise the length-prefixed framing over INET sockets.
    return service_server(
        PipelinedExecutor(sketch=make_sketch(), chunk_size=1024),
        tcp=True,
        universe_size=UNIVERSE,
    )


class TestProtocol:
    def test_frame_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"cmd": "stats", "x": 3}, b"abc")
            header, payload = recv_frame(right)
            assert header["cmd"] == "stats" and header["x"] == 3
            assert header["payload_bytes"] == 3 and payload == b"abc"
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x10partial")
            left.close()
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_header_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_items_round_trip(self):
        count, payload = encode_items([5, 0, 499])
        assert count == 3
        decoded = decode_items({"items": count}, payload)
        assert decoded.tolist() == [5, 0, 499]

    def test_items_length_mismatch_rejected(self):
        _, payload = encode_items([1, 2, 3])
        with pytest.raises(ProtocolError):
            decode_items({"items": 2}, payload)

    def test_encode_items_int64_is_zero_copy(self):
        """An already-int64 batch is framed as a view of its own buffer."""
        array = np.arange(16, dtype=np.int64)
        _, payload = encode_items(array)
        assert isinstance(payload, memoryview)
        assert payload.obj is array or np.shares_memory(
            np.frombuffer(payload, dtype=np.int64), array
        )

    def test_decode_items_is_read_only_and_zero_copy(self):
        """The decoded array views the received buffer and cannot be written."""
        array = np.arange(8, dtype=np.int64)
        buffer = bytearray(array.tobytes())  # what recv_frame's recv_into fills
        decoded = decode_items({"items": 8}, buffer)
        assert decoded.flags.writeable is False
        assert np.shares_memory(decoded, np.frombuffer(buffer, dtype=np.int64))
        with pytest.raises(ValueError):
            decoded[0] = 99

    def test_encode_items_rejects_float_dtype(self):
        with pytest.raises(ValueError, match="non-integer dtype"):
            encode_items(np.array([1.5, 2.0]))
        with pytest.raises(ValueError, match="non-integer dtype"):
            encode_items(np.array([True, False]))

    def test_encode_items_surfaces_int64_overflow(self):
        with pytest.raises(ValueError, match="int64"):
            encode_items(np.array([2**63], dtype=np.uint64))
        with pytest.raises(ValueError, match="int64"):
            encode_items([2**70, 1])

    def test_encode_items_rejects_floats_hidden_in_object_arrays(self):
        """Object-dtype floats must error, not silently truncate to ints."""
        with pytest.raises(ValueError, match="non-integer"):
            encode_items(np.array([1.5, 2.5], dtype=object))
        # honest object-dtype ints still pass
        count, payload = encode_items(np.array([3, 2**40], dtype=object))
        assert decode_items({"items": count}, payload).tolist() == [3, 2**40]

    def test_encode_items_casts_safe_integer_dtypes(self):
        count, payload = encode_items(np.array([1, 2, 3], dtype=np.uint16))
        assert count == 3
        assert decode_items({"items": 3}, payload).tolist() == [1, 2, 3]
        count, payload = encode_items(np.array([7], dtype=np.int32))
        assert decode_items({"items": 1}, payload).tolist() == [7]

    def test_encode_items_empty_batch(self):
        count, payload = encode_items([])
        assert count == 0
        assert decode_items({"items": 0}, payload).size == 0

    def test_oversized_payload_declaration_rejected(self):
        """A header declaring a payload beyond the cap is refused before reading it."""
        from repro.service.protocol import MAX_PAYLOAD_BYTES
        import json as json_module
        import struct as struct_module

        left, right = socket.socketpair()
        try:
            header = json_module.dumps(
                {"cmd": "push", "items": 1, "payload_bytes": MAX_PAYLOAD_BYTES + 8}
            ).encode()
            left.sendall(struct_module.pack("!I", len(header)) + header)
            with pytest.raises(ProtocolError, match="exceeds the cap"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_send_frame_rejects_oversized_payload(self):
        left, right = socket.socketpair()
        try:
            import repro.service.protocol as protocol_module

            huge = memoryview(bytes(8))  # stand-in; cap checked against nbytes
            original = protocol_module.MAX_PAYLOAD_BYTES
            protocol_module.MAX_PAYLOAD_BYTES = 4
            try:
                with pytest.raises(ProtocolError, match="exceeds the cap"):
                    send_frame(left, {"cmd": "push", "items": 1}, huge)
            finally:
                protocol_module.MAX_PAYLOAD_BYTES = original
        finally:
            left.close()
            right.close()

    def test_vectored_send_large_frame_round_trip(self):
        """sendmsg-based framing survives payloads larger than one syscall's worth."""
        payload = np.arange(300_000, dtype=np.int64)
        left, right = socket.socketpair()
        try:
            received = {}

            def reader():
                received["frame"] = recv_frame(right)

            thread = threading.Thread(target=reader)
            thread.start()
            count, buffer = encode_items(payload)
            send_frame(left, {"cmd": "push", "items": count}, buffer)
            thread.join(timeout=10.0)
        finally:
            left.close()
            right.close()
        header, body = received["frame"]
        decoded = decode_items(header, body)
        assert decoded.size == payload.size
        assert decoded[0] == 0 and int(decoded[-1]) == payload.size - 1

    def test_report_payload_round_trip(self):
        report = HeavyHittersReport(items={7: 300.0, 2: 120.5}, stream_length=1000,
                                    epsilon=0.01, phi=0.1)
        back = report_from_payload(report_to_payload(report))
        assert dict(back.items) == dict(report.items)
        assert (back.stream_length, back.epsilon, back.phi) == (1000, 0.01, 0.1)

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:7007") == ("127.0.0.1", 7007)
        assert parse_endpoint("unix:/tmp/x.sock") == "/tmp/x.sock"
        with pytest.raises(ValueError):
            parse_endpoint("no-port")
        with pytest.raises(ValueError):
            parse_endpoint("host:notaport")
        with pytest.raises(ValueError):
            parse_endpoint("unix:")


class TestRechunking:
    def test_rechunk_exact_boundaries(self):
        batches = [np.arange(5), np.arange(5, 6), np.array([], dtype=np.int64), np.arange(6, 13)]
        chunks = list(rechunk_arrays(batches, 4))
        assert [c.tolist() for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12]]

    def test_rechunk_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(rechunk_arrays([np.arange(3)], 0))

    def test_array_batch_source_through_producer(self):
        batches = [np.arange(i, i + 7) for i in range(0, 70, 7)]
        producer = ChunkProducer(ArrayBatchSource(iter(batches)), chunk_size=16)
        chunks = list(producer)
        assert np.concatenate(chunks).tolist() == list(range(70))
        assert all(len(c) == 16 for c in chunks[:-1])


class TestPipelineCheckpointSeam:
    """The pipeline-layer half of checkpointing: sink_state / from_sink_state."""

    def test_manual_drive_matches_run(self):
        items = make_stream()
        via_run = PipelinedExecutor(sketch=make_sketch(11), chunk_size=2048)
        run_result = via_run.run(items)
        manual = PipelinedExecutor(sketch=make_sketch(11), chunk_size=2048)
        from repro.primitives.batching import iter_chunks

        for chunk in iter_chunks(items, 2048):
            manual.ingest_chunk(chunk)
        manual_result = manual.finalize()
        assert dict(manual_result.report.items) == dict(run_result.report.items)
        assert manual_result.items_processed == run_result.items_processed
        assert manual_result.chunks == run_result.chunks

    def test_run_refuses_after_manual_drive(self):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=64)
        executor.ingest_chunk(np.arange(10))
        with pytest.raises(RuntimeError):
            executor.run(np.arange(10))

    def test_ingest_and_sink_state_refused_after_finalize(self):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=64)
        executor.ingest_chunk(np.arange(10))
        executor.finalize()
        with pytest.raises(RuntimeError):
            executor.ingest_chunk(np.arange(10))
        with pytest.raises(RuntimeError):
            executor.finalize()
        with pytest.raises(RuntimeError):
            executor.sink_state()

    def test_sink_state_is_a_pure_read_and_resumes(self):
        items = make_stream()
        half = 10 * 1024
        executor = PipelinedExecutor(sketch=MisraGries(0.02, UNIVERSE), chunk_size=1024)
        from repro.primitives.batching import iter_chunks

        for chunk in iter_chunks(items[:half], 1024):
            executor.ingest_chunk(chunk)
        state = executor.sink_state()
        assert state.kind == "single" and state.items_processed == half
        # the original continues unperturbed
        for chunk in iter_chunks(items[half:], 1024):
            executor.ingest_chunk(chunk)
        original = executor.finalize(report_kwargs={"phi": 0.1})
        # the resumed copy sees the same tail and must agree (deterministic sketch)
        resumed = PipelinedExecutor.from_sink_state(state, chunk_size=1024)
        for chunk in iter_chunks(items[half:], 1024):
            resumed.ingest_chunk(chunk)
        resumed_result = resumed.finalize(report_kwargs={"phi": 0.1})
        assert dict(resumed_result.report.items) == dict(original.report.items)
        assert resumed_result.items_processed == original.items_processed

    def test_from_sink_state_rejects_unknown_kind(self):
        state = SinkState(kind="mystery", sketches=[make_sketch()], router=None,
                          items_processed=0, shard_sizes=[0], chunks=0)
        with pytest.raises(ValueError):
            PipelinedExecutor.from_sink_state(state)

    def test_from_shards_validates(self):
        router = ShardRouter(2, UNIVERSE, rng=RandomSource(5))
        with pytest.raises(ValueError):
            ShardedExecutor.from_shards([], router)
        with pytest.raises(ValueError):
            ShardedExecutor.from_shards([make_sketch()], router)
        restored = ShardedExecutor.from_shards([make_sketch(1), make_sketch(2)], router)
        with pytest.raises(RuntimeError):
            restored.run_chunks([np.arange(4)])
        restored.ingest_chunk(np.arange(4))  # the supported resume path


class TestCheckpointer:
    def test_save_load_round_trip(self, tmp_path):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=256)
        executor.ingest_chunk(np.arange(256))
        path = os.path.join(tmp_path, "nested", "dir", "state.ckpt")
        manifest = Checkpointer().save(path, executor.sink_state(), config={"epsilon": 0.02})
        assert manifest["items_processed"] == 256
        state, loaded_manifest = Checkpointer().load(path)
        assert isinstance(state, SinkState)
        assert loaded_manifest["config"]["epsilon"] == 0.02

    def test_load_rejects_non_checkpoint_pickle(self, tmp_path):
        path = os.path.join(tmp_path, "junk.ckpt")
        with open(path, "wb") as handle:
            pickle.dump({"not": "a checkpoint"}, handle)
        with pytest.raises(CheckpointError):
            Checkpointer().load(path)

    def test_load_rejects_garbage_bytes(self, tmp_path):
        path = os.path.join(tmp_path, "garbage.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a pickle")
        with pytest.raises(CheckpointError):
            Checkpointer().load(path)

    def test_load_rejects_unknown_format(self, tmp_path):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=256)
        path = os.path.join(tmp_path, "future.ckpt")
        Checkpointer().save(path, executor.sink_state())
        with open(path, "rb") as handle:
            envelope = pickle.load(handle)
        envelope["format"] = 999
        with open(path, "wb") as handle:
            pickle.dump(envelope, handle)
        with pytest.raises(CheckpointError):
            Checkpointer().load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Checkpointer().load(os.path.join(tmp_path, "absent.ckpt"))


class TestIngestServer:
    def test_config_and_counters(self, server):
        with ServiceClient(server.endpoint) as client:
            config = client.config()
            assert config["protocol"] == 1
            assert config["chunk_size"] == 1024
            assert config["items_received"] == 0
            client.push([1, 2, 3])
            assert client.config()["items_received"] == 3

    def test_push_outside_universe_rejected_without_poisoning(self, server):
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ServiceError, match="outside the universe"):
                client.push([UNIVERSE + 5])
            with pytest.raises(ServiceError, match="outside the universe"):
                client.push([-1])
            # the server is still healthy
            client.push([1, 2, 3])
            client.finish()
            assert client.query().items_processed == 3

    def test_push_backpressure_with_tiny_queue(self, service_server):
        """A depth-1 push queue must stall pushes, not drop or error them."""
        instance = service_server(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=256),
            universe_size=UNIVERSE, push_queue_depth=1,
        )
        with ServiceClient(instance.endpoint) as client:
            for _ in range(20):
                client.push(np.zeros(512, dtype=np.int64))
            client.finish()
            assert client.query().items_processed == 20 * 512

    def test_push_queue_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            IngestServer(PipelinedExecutor(sketch=make_sketch()), port=0,
                         push_queue_depth=0)

    def test_flush_on_restored_server_with_different_chunk_size(
        self, service_server, tmp_path
    ):
        """The flush target counts from the restored prefix, not from item zero."""
        first = PipelinedExecutor(sketch=MisraGries(0.02, UNIVERSE), chunk_size=1024)
        first.ingest_chunk(np.zeros(1024, dtype=np.int64))
        ckpt = os.path.join(tmp_path, "prefix.ckpt")
        Checkpointer().save(ckpt, first.sink_state())
        # restore with a chunk size the 1024-item prefix is NOT a multiple of
        restored, _ = Checkpointer().restore_pipeline(ckpt, chunk_size=1000)
        instance = service_server(restored, universe_size=UNIVERSE)
        with ServiceClient(instance.endpoint) as client:
            client.push(np.zeros(2500, dtype=np.int64))
            reply = client.flush(timeout=10.0)
            assert reply["flushed_to"] == 1024 + 2000
            assert reply["items_processed"] >= 1024 + 2000
            client.finish()
            assert client.query().items_processed == 1024 + 2500

    def test_query_reports_space_bits(self, server):
        with ServiceClient(server.endpoint) as client:
            client.push(np.zeros(2048, dtype=np.int64))
            client.flush()
            assert client.query().space_bits > 0
            client.finish()
            assert client.query().space_bits > 0

    def test_flush_covers_complete_chunks_only(self, server):
        with ServiceClient(server.endpoint) as client:
            client.push(np.zeros(1024 + 100, dtype=np.int64))
            reply = client.flush()
            assert reply["flushed_to"] == 1024
            assert reply["items_processed"] >= 1024

    def test_query_mid_ingest_then_final(self, server):
        items = make_stream()
        with ServiceClient(server.endpoint) as client:
            client.push(items[:4096])
            client.flush()
            live = client.query()
            assert live.final is False
            assert live.items_processed == 4096
            assert live.report.stream_length == 4096
            client.push(items[4096:])
            client.finish()
            final = client.query()
            assert final.final is True
            assert final.items_processed == len(items)
            assert 7 in final.report

    def test_stats_mid_ingest_and_final(self, server):
        with ServiceClient(server.endpoint) as client:
            client.push(np.zeros(2048, dtype=np.int64))
            client.flush()
            stats = client.stats()
            assert stats["final"] is False
            assert stats["space_bits"] > 0
            assert stats["items_processed"] == 2048
            client.finish()
            stats = client.stats()
            assert stats["final"] is True
            assert stats["space_bits"] > 0
            assert "space_breakdown" in stats

    def test_push_after_finish_rejected(self, server):
        with ServiceClient(server.endpoint) as client:
            client.push([1, 2])
            client.finish()
            with pytest.raises(ServiceError, match="finished"):
                client.push([3])

    def test_finish_is_idempotent(self, server):
        with ServiceClient(server.endpoint) as client:
            client.push([1, 2, 3])
            first = client.finish()
            second = client.finish()
            assert first["items_processed"] == second["items_processed"] == 3

    def test_unknown_command_is_an_error_reply(self, server):
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ServiceError, match="unknown command"):
                client._round_trip({"cmd": "frobnicate"})

    def test_query_empty_prefix(self, server):
        with ServiceClient(server.endpoint) as client:
            live = client.query()
            assert live.items_processed == 0
            assert len(live.report) == 0

    def test_checkpoint_requires_path(self, server):
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ServiceError, match="path"):
                client._round_trip({"cmd": "checkpoint"})

    def test_checkpoint_after_finish_is_an_error(self, server, tmp_path):
        with ServiceClient(server.endpoint) as client:
            client.push([1, 2, 3])
            client.finish()
            with pytest.raises(ServiceError):
                client.checkpoint(os.path.join(tmp_path, "late.ckpt"))

    def test_two_concurrent_clients(self, server):
        items = make_stream()
        with ServiceClient(server.endpoint) as pusher, ServiceClient(server.endpoint) as reader:
            pusher.push(items[:2048])
            pusher.flush()
            assert reader.query().items_processed == 2048
            assert reader.config()["items_received"] == 2048

    def test_shutdown_stops_serve_forever(self, service_server):
        server = service_server(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=1024),
            tcp=True, universe_size=UNIVERSE,
        )
        waiter = threading.Thread(target=server.serve_forever, daemon=True)
        waiter.start()
        with ServiceClient(server.endpoint) as client:
            client.push([1, 2, 3])
            client.shutdown()
        waiter.join(timeout=10.0)
        assert not waiter.is_alive()

    def test_unix_socket_endpoint(self, tmp_path):
        path = os.path.join(tmp_path, "svc.sock")
        server = IngestServer(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=1024),
            unix_socket=path, universe_size=UNIVERSE,
        ).start()
        try:
            assert server.endpoint == f"unix:{path}"
            with ServiceClient(server.endpoint) as client:
                client.push([4, 5, 6])
                client.finish()
                assert client.query().items_processed == 3
        finally:
            server.close()
        assert not os.path.exists(path)

    def test_unix_socket_successor_survives_predecessor_teardown(self, tmp_path):
        """A late close() of an old server must not unlink a successor's socket."""
        path = os.path.join(tmp_path, "hh.sock")

        def make_server():
            return IngestServer(
                PipelinedExecutor(sketch=make_sketch(), chunk_size=64),
                unix_socket=path, universe_size=UNIVERSE,
            ).start()

        first = make_server()
        with ServiceClient(first.endpoint) as client:
            client.push([1, 2, 3])
            client.shutdown()   # deferred teardown races the successor's bind
        second = make_server()
        first.close()           # late explicit close: must leave second's file alone
        with ServiceClient(second.endpoint) as client:
            client.push([4, 5, 6])
            client.finish()
            assert client.query().items_processed == 3
        second.close()
        assert not os.path.exists(path)

    def test_requires_fresh_pipeline(self):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=64)
        executor.run(np.arange(10))
        with pytest.raises(ValueError):
            IngestServer(executor, port=0)

    def test_config_grants_push_credits(self, server):
        with ServiceClient(server.endpoint) as client:
            assert client.config()["push_credits"] == 64  # the default queue depth

    def test_push_stream_pipelines_and_counts(self, server):
        items = make_stream()
        batches = [items[start:start + 700] for start in range(0, len(items), 700)]
        with ServiceClient(server.endpoint) as client:
            received = client.push_stream(iter(batches), window=8)
            assert received == len(items)
            client.finish()
            final = client.query()
            assert final.items_processed == len(items)
            assert 7 in final.report

    def test_push_stream_equals_push_bit_for_bit(self, service_server):
        """Windowed and round-trip pushes must produce identical reports."""
        items = make_stream()
        reports = []
        for window in (None, 1):
            instance = service_server(
                PipelinedExecutor(sketch=make_sketch(31), chunk_size=1024),
                universe_size=UNIVERSE,
            )
            with ServiceClient(instance.endpoint) as client:
                batches = [items[s:s + 999] for s in range(0, len(items), 999)]
                if window is None:
                    client.push_stream(iter(batches))
                else:
                    for batch in batches:
                        client.push(batch)
                client.finish()
                reports.append(dict(client.query().report.items))
        assert reports[0] == reports[1]

    def test_push_stream_respects_credit_cap_with_tiny_queue(self, service_server):
        """window >> push_queue_depth must still complete (credits cap the window)."""
        instance = service_server(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=256),
            universe_size=UNIVERSE, push_queue_depth=2,
        )
        with ServiceClient(instance.endpoint) as client:
            assert client.config()["push_credits"] == 2
            batches = [np.zeros(512, dtype=np.int64) for _ in range(30)]
            received = client.push_stream(iter(batches), window=1000)
            assert received == 30 * 512
            client.finish()
            assert client.query().items_processed == 30 * 512

    def test_push_stream_error_mid_window_drains_and_raises(self, server):
        """A rejected batch surfaces as ServiceError and the connection stays usable."""
        good = np.zeros(100, dtype=np.int64)
        bad = np.full(100, UNIVERSE + 3, dtype=np.int64)  # outside the universe
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ServiceError, match="outside the universe"):
                client.push_stream(iter([good, bad, good, good]), window=4)
            # in-flight acks were drained: the same connection keeps working
            client.push(good)
            client.finish()
            # 3 good batches were accepted before/around the bad one, +1 after
            assert client.query().items_processed == 4 * 100

    def test_push_stream_local_failure_mid_window_keeps_connection_usable(self, server):
        """A bad batch raising in encode_items mid-window must not desync the socket."""
        good = np.zeros(100, dtype=np.int64)
        bad_local = np.array([1.5, 2.5])  # rejected client-side, never sent
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ValueError, match="non-integer dtype"):
                client.push_stream(iter([good, good, bad_local, good]), window=8)
            # the two sent frames' acks were drained, so the next command gets
            # its own reply — not a stale push ack
            flushed = client.flush()
            assert flushed["items_received"] == 2 * 100
            client.finish()
            assert client.query().items_processed == 2 * 100

    def test_push_stream_rejects_bad_window(self, server):
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ValueError, match="window"):
                client.push_stream(iter([[1]]), window=0)

    def test_push_rejects_float_and_overflow_before_sending(self, server):
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ValueError, match="non-integer dtype"):
                client.push(np.array([1.25, 2.5]))
            with pytest.raises(ValueError, match="int64"):
                client.push([2**70])
            # nothing was sent: the server still works and counted nothing
            assert client.config()["items_received"] == 0

    def test_mid_window_disconnect_drops_connection_without_corrupting_sink(
        self, server, caplog
    ):
        """A client dying mid-frame loses only the partial frame; complete ones land."""
        import logging as logging_module
        import struct as struct_module
        import json as json_module

        complete = np.arange(300, dtype=np.int64)
        with caplog.at_level(logging_module.WARNING, logger="repro.service"):
            raw = socket.create_connection(server.address)
            try:
                # two complete push frames, unacked (a pipelined window)...
                for _ in range(2):
                    count, payload = encode_items(complete)
                    send_frame(raw, {"cmd": "push", "items": count}, payload)
                # ...then a frame that dies half-way through its declared payload:
                # a half-close (FIN) mid-payload is EOF mid-frame on the server
                header = json_module.dumps(
                    {"cmd": "push", "items": 300, "payload_bytes": 2400}
                ).encode()
                raw.sendall(struct_module.pack("!I", len(header)) + header)
                raw.sendall(b"\x01" * 100)  # 100 of 2400 payload bytes
                raw.shutdown(socket.SHUT_WR)
                # the handler thread logs asynchronously; wait for it
                for _ in range(200):
                    if any("protocol error" in message for message in caplog.messages):
                        break
                    threading.Event().wait(0.02)
            finally:
                raw.close()
            # the server dropped that connection but stays healthy for others
            with ServiceClient(server.endpoint) as client:
                client.finish()
                assert client.query().items_processed == 2 * 300
        assert any("protocol error" in message for message in caplog.messages)

    def test_sketch_failure_surfaces_as_error_reply(self, service_server):
        # No universe hint: validation happens inside the sketch, on the
        # ingestion thread; the failure must surface in replies, not hang.
        server = service_server(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=8),
            universe_size=None,
        )
        server.universe_size = None
        with ServiceClient(server.endpoint) as client:
            client.push(np.full(64, UNIVERSE + 7, dtype=np.int64))
            with pytest.raises(ServiceError, match="ingestion failed"):
                client.flush()
