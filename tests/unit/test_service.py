"""Tests for the service layer (repro.service): protocol, server, client, checkpoints."""

import os
import pickle
import socket
import threading

import numpy as np
import pytest

from repro.baselines.misra_gries import MisraGries
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.results import HeavyHittersReport
from repro.pipeline import ArrayBatchSource, ChunkProducer, PipelinedExecutor, SinkState
from repro.primitives.batching import rechunk_arrays
from repro.primitives.rng import RandomSource
from repro.service import (
    CheckpointError,
    Checkpointer,
    IngestServer,
    ServiceClient,
    ServiceError,
    parse_endpoint,
)
from repro.service.protocol import (
    ProtocolError,
    decode_items,
    encode_items,
    recv_frame,
    report_from_payload,
    report_to_payload,
    send_frame,
)
from repro.sharding import ShardedExecutor, ShardRouter

UNIVERSE = 500
LENGTH = 20_000


def make_sketch(seed=1):
    return SimpleListHeavyHitters(
        epsilon=0.02, phi=0.1, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(seed),
    )


def make_stream(seed=3):
    rng = RandomSource(seed).numpy_generator()
    heavy = np.full(LENGTH // 2, 7, dtype=np.int64)
    rest = rng.integers(0, UNIVERSE, size=LENGTH - len(heavy))
    items = np.concatenate([heavy, rest])
    rng.shuffle(items)
    return items.astype(np.int64)


@pytest.fixture
def server():
    instance = IngestServer(
        PipelinedExecutor(sketch=make_sketch(), chunk_size=1024),
        port=0,
        universe_size=UNIVERSE,
    ).start()
    yield instance
    instance.close()


class TestProtocol:
    def test_frame_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"cmd": "stats", "x": 3}, b"abc")
            header, payload = recv_frame(right)
            assert header["cmd"] == "stats" and header["x"] == 3
            assert header["payload_bytes"] == 3 and payload == b"abc"
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x00\x10partial")
            left.close()
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_header_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_items_round_trip(self):
        count, payload = encode_items([5, 0, 499])
        assert count == 3
        decoded = decode_items({"items": count}, payload)
        assert decoded.tolist() == [5, 0, 499]

    def test_items_length_mismatch_rejected(self):
        _, payload = encode_items([1, 2, 3])
        with pytest.raises(ProtocolError):
            decode_items({"items": 2}, payload)

    def test_report_payload_round_trip(self):
        report = HeavyHittersReport(items={7: 300.0, 2: 120.5}, stream_length=1000,
                                    epsilon=0.01, phi=0.1)
        back = report_from_payload(report_to_payload(report))
        assert dict(back.items) == dict(report.items)
        assert (back.stream_length, back.epsilon, back.phi) == (1000, 0.01, 0.1)

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:7007") == ("127.0.0.1", 7007)
        assert parse_endpoint("unix:/tmp/x.sock") == "/tmp/x.sock"
        with pytest.raises(ValueError):
            parse_endpoint("no-port")
        with pytest.raises(ValueError):
            parse_endpoint("host:notaport")
        with pytest.raises(ValueError):
            parse_endpoint("unix:")


class TestRechunking:
    def test_rechunk_exact_boundaries(self):
        batches = [np.arange(5), np.arange(5, 6), np.array([], dtype=np.int64), np.arange(6, 13)]
        chunks = list(rechunk_arrays(batches, 4))
        assert [c.tolist() for c in chunks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11], [12]]

    def test_rechunk_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(rechunk_arrays([np.arange(3)], 0))

    def test_array_batch_source_through_producer(self):
        batches = [np.arange(i, i + 7) for i in range(0, 70, 7)]
        producer = ChunkProducer(ArrayBatchSource(iter(batches)), chunk_size=16)
        chunks = list(producer)
        assert np.concatenate(chunks).tolist() == list(range(70))
        assert all(len(c) == 16 for c in chunks[:-1])


class TestPipelineCheckpointSeam:
    """The pipeline-layer half of checkpointing: sink_state / from_sink_state."""

    def test_manual_drive_matches_run(self):
        items = make_stream()
        via_run = PipelinedExecutor(sketch=make_sketch(11), chunk_size=2048)
        run_result = via_run.run(items)
        manual = PipelinedExecutor(sketch=make_sketch(11), chunk_size=2048)
        from repro.primitives.batching import iter_chunks

        for chunk in iter_chunks(items, 2048):
            manual.ingest_chunk(chunk)
        manual_result = manual.finalize()
        assert dict(manual_result.report.items) == dict(run_result.report.items)
        assert manual_result.items_processed == run_result.items_processed
        assert manual_result.chunks == run_result.chunks

    def test_run_refuses_after_manual_drive(self):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=64)
        executor.ingest_chunk(np.arange(10))
        with pytest.raises(RuntimeError):
            executor.run(np.arange(10))

    def test_ingest_and_sink_state_refused_after_finalize(self):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=64)
        executor.ingest_chunk(np.arange(10))
        executor.finalize()
        with pytest.raises(RuntimeError):
            executor.ingest_chunk(np.arange(10))
        with pytest.raises(RuntimeError):
            executor.finalize()
        with pytest.raises(RuntimeError):
            executor.sink_state()

    def test_sink_state_is_a_pure_read_and_resumes(self):
        items = make_stream()
        half = 10 * 1024
        executor = PipelinedExecutor(sketch=MisraGries(0.02, UNIVERSE), chunk_size=1024)
        from repro.primitives.batching import iter_chunks

        for chunk in iter_chunks(items[:half], 1024):
            executor.ingest_chunk(chunk)
        state = executor.sink_state()
        assert state.kind == "single" and state.items_processed == half
        # the original continues unperturbed
        for chunk in iter_chunks(items[half:], 1024):
            executor.ingest_chunk(chunk)
        original = executor.finalize(report_kwargs={"phi": 0.1})
        # the resumed copy sees the same tail and must agree (deterministic sketch)
        resumed = PipelinedExecutor.from_sink_state(state, chunk_size=1024)
        for chunk in iter_chunks(items[half:], 1024):
            resumed.ingest_chunk(chunk)
        resumed_result = resumed.finalize(report_kwargs={"phi": 0.1})
        assert dict(resumed_result.report.items) == dict(original.report.items)
        assert resumed_result.items_processed == original.items_processed

    def test_from_sink_state_rejects_unknown_kind(self):
        state = SinkState(kind="mystery", sketches=[make_sketch()], router=None,
                          items_processed=0, shard_sizes=[0], chunks=0)
        with pytest.raises(ValueError):
            PipelinedExecutor.from_sink_state(state)

    def test_from_shards_validates(self):
        router = ShardRouter(2, UNIVERSE, rng=RandomSource(5))
        with pytest.raises(ValueError):
            ShardedExecutor.from_shards([], router)
        with pytest.raises(ValueError):
            ShardedExecutor.from_shards([make_sketch()], router)
        restored = ShardedExecutor.from_shards([make_sketch(1), make_sketch(2)], router)
        with pytest.raises(RuntimeError):
            restored.run_chunks([np.arange(4)])
        restored.ingest_chunk(np.arange(4))  # the supported resume path


class TestCheckpointer:
    def test_save_load_round_trip(self, tmp_path):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=256)
        executor.ingest_chunk(np.arange(256))
        path = os.path.join(tmp_path, "nested", "dir", "state.ckpt")
        manifest = Checkpointer().save(path, executor.sink_state(), config={"epsilon": 0.02})
        assert manifest["items_processed"] == 256
        state, loaded_manifest = Checkpointer().load(path)
        assert isinstance(state, SinkState)
        assert loaded_manifest["config"]["epsilon"] == 0.02

    def test_load_rejects_non_checkpoint_pickle(self, tmp_path):
        path = os.path.join(tmp_path, "junk.ckpt")
        with open(path, "wb") as handle:
            pickle.dump({"not": "a checkpoint"}, handle)
        with pytest.raises(CheckpointError):
            Checkpointer().load(path)

    def test_load_rejects_garbage_bytes(self, tmp_path):
        path = os.path.join(tmp_path, "garbage.ckpt")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a pickle")
        with pytest.raises(CheckpointError):
            Checkpointer().load(path)

    def test_load_rejects_unknown_format(self, tmp_path):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=256)
        path = os.path.join(tmp_path, "future.ckpt")
        Checkpointer().save(path, executor.sink_state())
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["manifest"]["format"] = 999
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)
        with pytest.raises(CheckpointError):
            Checkpointer().load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Checkpointer().load(os.path.join(tmp_path, "absent.ckpt"))


class TestIngestServer:
    def test_config_and_counters(self, server):
        with ServiceClient(server.endpoint) as client:
            config = client.config()
            assert config["protocol"] == 1
            assert config["chunk_size"] == 1024
            assert config["items_received"] == 0
            client.push([1, 2, 3])
            assert client.config()["items_received"] == 3

    def test_push_outside_universe_rejected_without_poisoning(self, server):
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ServiceError, match="outside the universe"):
                client.push([UNIVERSE + 5])
            with pytest.raises(ServiceError, match="outside the universe"):
                client.push([-1])
            # the server is still healthy
            client.push([1, 2, 3])
            client.finish()
            assert client.query().items_processed == 3

    def test_push_backpressure_with_tiny_queue(self):
        """A depth-1 push queue must stall pushes, not drop or error them."""
        instance = IngestServer(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=256),
            port=0, universe_size=UNIVERSE, push_queue_depth=1,
        ).start()
        try:
            with ServiceClient(instance.endpoint) as client:
                for _ in range(20):
                    client.push(np.zeros(512, dtype=np.int64))
                client.finish()
                assert client.query().items_processed == 20 * 512
        finally:
            instance.close()

    def test_push_queue_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            IngestServer(PipelinedExecutor(sketch=make_sketch()), port=0,
                         push_queue_depth=0)

    def test_flush_on_restored_server_with_different_chunk_size(self, tmp_path):
        """The flush target counts from the restored prefix, not from item zero."""
        first = PipelinedExecutor(sketch=MisraGries(0.02, UNIVERSE), chunk_size=1024)
        first.ingest_chunk(np.zeros(1024, dtype=np.int64))
        ckpt = os.path.join(tmp_path, "prefix.ckpt")
        Checkpointer().save(ckpt, first.sink_state())
        # restore with a chunk size the 1024-item prefix is NOT a multiple of
        restored, _ = Checkpointer().restore_pipeline(ckpt, chunk_size=1000)
        instance = IngestServer(restored, port=0, universe_size=UNIVERSE).start()
        try:
            with ServiceClient(instance.endpoint) as client:
                client.push(np.zeros(2500, dtype=np.int64))
                reply = client.flush(timeout=10.0)
                assert reply["flushed_to"] == 1024 + 2000
                assert reply["items_processed"] >= 1024 + 2000
                client.finish()
                assert client.query().items_processed == 1024 + 2500
        finally:
            instance.close()

    def test_query_reports_space_bits(self, server):
        with ServiceClient(server.endpoint) as client:
            client.push(np.zeros(2048, dtype=np.int64))
            client.flush()
            assert client.query().space_bits > 0
            client.finish()
            assert client.query().space_bits > 0

    def test_flush_covers_complete_chunks_only(self, server):
        with ServiceClient(server.endpoint) as client:
            client.push(np.zeros(1024 + 100, dtype=np.int64))
            reply = client.flush()
            assert reply["flushed_to"] == 1024
            assert reply["items_processed"] >= 1024

    def test_query_mid_ingest_then_final(self, server):
        items = make_stream()
        with ServiceClient(server.endpoint) as client:
            client.push(items[:4096])
            client.flush()
            live = client.query()
            assert live.final is False
            assert live.items_processed == 4096
            assert live.report.stream_length == 4096
            client.push(items[4096:])
            client.finish()
            final = client.query()
            assert final.final is True
            assert final.items_processed == len(items)
            assert 7 in final.report

    def test_stats_mid_ingest_and_final(self, server):
        with ServiceClient(server.endpoint) as client:
            client.push(np.zeros(2048, dtype=np.int64))
            client.flush()
            stats = client.stats()
            assert stats["final"] is False
            assert stats["space_bits"] > 0
            assert stats["items_processed"] == 2048
            client.finish()
            stats = client.stats()
            assert stats["final"] is True
            assert stats["space_bits"] > 0
            assert "space_breakdown" in stats

    def test_push_after_finish_rejected(self, server):
        with ServiceClient(server.endpoint) as client:
            client.push([1, 2])
            client.finish()
            with pytest.raises(ServiceError, match="finished"):
                client.push([3])

    def test_finish_is_idempotent(self, server):
        with ServiceClient(server.endpoint) as client:
            client.push([1, 2, 3])
            first = client.finish()
            second = client.finish()
            assert first["items_processed"] == second["items_processed"] == 3

    def test_unknown_command_is_an_error_reply(self, server):
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ServiceError, match="unknown command"):
                client._round_trip({"cmd": "frobnicate"})

    def test_query_empty_prefix(self, server):
        with ServiceClient(server.endpoint) as client:
            live = client.query()
            assert live.items_processed == 0
            assert len(live.report) == 0

    def test_checkpoint_requires_path(self, server):
        with ServiceClient(server.endpoint) as client:
            with pytest.raises(ServiceError, match="path"):
                client._round_trip({"cmd": "checkpoint"})

    def test_checkpoint_after_finish_is_an_error(self, server, tmp_path):
        with ServiceClient(server.endpoint) as client:
            client.push([1, 2, 3])
            client.finish()
            with pytest.raises(ServiceError):
                client.checkpoint(os.path.join(tmp_path, "late.ckpt"))

    def test_two_concurrent_clients(self, server):
        items = make_stream()
        with ServiceClient(server.endpoint) as pusher, ServiceClient(server.endpoint) as reader:
            pusher.push(items[:2048])
            pusher.flush()
            assert reader.query().items_processed == 2048
            assert reader.config()["items_received"] == 2048

    def test_shutdown_stops_serve_forever(self):
        server = IngestServer(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=1024),
            port=0, universe_size=UNIVERSE,
        ).start()
        waiter = threading.Thread(target=server.serve_forever, daemon=True)
        waiter.start()
        with ServiceClient(server.endpoint) as client:
            client.push([1, 2, 3])
            client.shutdown()
        waiter.join(timeout=10.0)
        assert not waiter.is_alive()

    def test_unix_socket_endpoint(self, tmp_path):
        path = os.path.join(tmp_path, "svc.sock")
        server = IngestServer(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=1024),
            unix_socket=path, universe_size=UNIVERSE,
        ).start()
        try:
            assert server.endpoint == f"unix:{path}"
            with ServiceClient(server.endpoint) as client:
                client.push([4, 5, 6])
                client.finish()
                assert client.query().items_processed == 3
        finally:
            server.close()
        assert not os.path.exists(path)

    def test_unix_socket_successor_survives_predecessor_teardown(self, tmp_path):
        """A late close() of an old server must not unlink a successor's socket."""
        path = os.path.join(tmp_path, "hh.sock")

        def make_server():
            return IngestServer(
                PipelinedExecutor(sketch=make_sketch(), chunk_size=64),
                unix_socket=path, universe_size=UNIVERSE,
            ).start()

        first = make_server()
        with ServiceClient(first.endpoint) as client:
            client.push([1, 2, 3])
            client.shutdown()   # deferred teardown races the successor's bind
        second = make_server()
        first.close()           # late explicit close: must leave second's file alone
        with ServiceClient(second.endpoint) as client:
            client.push([4, 5, 6])
            client.finish()
            assert client.query().items_processed == 3
        second.close()
        assert not os.path.exists(path)

    def test_requires_fresh_pipeline(self):
        executor = PipelinedExecutor(sketch=make_sketch(), chunk_size=64)
        executor.run(np.arange(10))
        with pytest.raises(ValueError):
            IngestServer(executor, port=0)

    def test_sketch_failure_surfaces_as_error_reply(self):
        # No universe hint: validation happens inside the sketch, on the
        # ingestion thread; the failure must surface in replies, not hang.
        server = IngestServer(
            PipelinedExecutor(sketch=make_sketch(), chunk_size=8),
            port=0, universe_size=None,
        )
        server.universe_size = None
        server.start()
        try:
            with ServiceClient(server.endpoint) as client:
                client.push(np.full(64, UNIVERSE + 7, dtype=np.int64))
                with pytest.raises(ServiceError, match="ingestion failed"):
                    client.flush()
        finally:
            server.close()
