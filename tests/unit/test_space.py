"""Unit tests for repro.primitives.space."""

import pytest

from repro.primitives.space import SpaceMeter, bits_for_range, bits_for_value


class TestBitsForValue:
    def test_zero_and_one_take_one_bit(self):
        assert bits_for_value(0) == 1
        assert bits_for_value(1) == 1

    def test_powers_of_two(self):
        assert bits_for_value(2) == 2
        assert bits_for_value(3) == 2
        assert bits_for_value(4) == 3
        assert bits_for_value(255) == 8
        assert bits_for_value(256) == 9

    def test_monotone(self):
        previous = 0
        for value in range(0, 2000, 7):
            current = bits_for_value(value)
            assert current >= previous
            previous = current

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bits_for_value(-1)


class TestBitsForRange:
    def test_single_value(self):
        assert bits_for_range(1) == 1

    def test_exact_powers(self):
        assert bits_for_range(2) == 1
        assert bits_for_range(4) == 2
        assert bits_for_range(1024) == 10

    def test_non_powers_round_up(self):
        assert bits_for_range(3) == 2
        assert bits_for_range(1000) == 10

    def test_non_positive_raises(self):
        with pytest.raises(ValueError):
            bits_for_range(0)


class TestSpaceMeter:
    def test_empty_meter(self):
        meter = SpaceMeter()
        assert meter.total_bits() == 0
        assert meter.peak_bits() == 0
        assert meter.breakdown() == {}

    def test_set_and_total(self):
        meter = SpaceMeter()
        meter.set_component("a", 10)
        meter.set_component("b", 20)
        assert meter.total_bits() == 30
        assert meter.get_component("a") == 10
        assert meter.get_component("missing") == 0

    def test_add_component(self):
        meter = SpaceMeter()
        meter.add_component("a", 5)
        meter.add_component("a", 7)
        assert meter.get_component("a") == 12

    def test_peak_tracks_maximum(self):
        meter = SpaceMeter()
        meter.set_component("a", 100)
        meter.set_component("a", 10)
        assert meter.total_bits() == 10
        assert meter.peak_bits() == 100
        assert meter.peak_component("a") == 100

    def test_negative_bits_rejected(self):
        meter = SpaceMeter()
        with pytest.raises(ValueError):
            meter.set_component("a", -1)

    def test_merge_with_prefix(self):
        inner = SpaceMeter()
        inner.set_component("table", 8)
        outer = SpaceMeter()
        outer.set_component("own", 2)
        outer.merge(inner, prefix="inner.")
        assert outer.get_component("inner.table") == 8
        assert outer.total_bits() == 10

    def test_iteration(self):
        meter = SpaceMeter()
        meter.set_component("x", 1)
        meter.set_component("y", 2)
        assert dict(iter(meter)) == {"x": 1, "y": 2}
