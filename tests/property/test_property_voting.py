"""Property-based tests for rankings and the exact scoring rules."""

from hypothesis import given, settings, strategies as st

from repro.voting.rankings import Ranking, kendall_tau_distance
from repro.voting.scores import (
    borda_scores,
    maximin_scores,
    pairwise_defeats,
    plurality_scores,
    veto_scores,
)


@st.composite
def rankings(draw, min_candidates=1, max_candidates=8):
    n = draw(st.integers(min_value=min_candidates, max_value=max_candidates))
    return Ranking(draw(st.permutations(list(range(n)))))


@st.composite
def elections(draw, min_votes=1, max_votes=20, min_candidates=2, max_candidates=6):
    n = draw(st.integers(min_value=min_candidates, max_value=max_candidates))
    num_votes = draw(st.integers(min_value=min_votes, max_value=max_votes))
    votes = [
        Ranking(draw(st.permutations(list(range(n))))) for _ in range(num_votes)
    ]
    return votes


class TestRankingProperties:
    @given(rankings())
    def test_positions_are_a_bijection(self, ranking):
        positions = [ranking.position_of(c) for c in range(ranking.num_candidates)]
        assert sorted(positions) == list(range(ranking.num_candidates))

    @given(rankings())
    def test_borda_contributions_sum_to_pairs(self, ranking):
        n = ranking.num_candidates
        total = sum(ranking.candidates_beaten_by(c) for c in range(n))
        assert total == n * (n - 1) // 2

    @given(rankings())
    def test_reverse_is_involution(self, ranking):
        assert ranking.reversed().reversed() == ranking

    @given(rankings(min_candidates=2))
    def test_kendall_distance_to_reverse_is_maximal(self, ranking):
        n = ranking.num_candidates
        assert kendall_tau_distance(ranking, ranking.reversed()) == n * (n - 1) // 2


class TestScoreProperties:
    @given(elections())
    @settings(max_examples=60)
    def test_borda_total_is_fixed(self, votes):
        n = votes[0].num_candidates
        scores = borda_scores(votes)
        assert sum(scores.values()) == len(votes) * n * (n - 1) // 2

    @given(elections())
    @settings(max_examples=60)
    def test_pairwise_matrix_is_complementary(self, votes):
        n = votes[0].num_candidates
        matrix = pairwise_defeats(votes)
        for i in range(n):
            assert matrix[i][i] == 0
            for j in range(n):
                if i != j:
                    assert matrix[i][j] + matrix[j][i] == len(votes)

    @given(elections())
    @settings(max_examples=60)
    def test_borda_score_equals_pairwise_row_sum(self, votes):
        """Borda score of i = sum over j of D(i, j) — a classic identity."""
        n = votes[0].num_candidates
        matrix = pairwise_defeats(votes)
        scores = borda_scores(votes)
        for i in range(n):
            assert scores[i] == sum(matrix[i][j] for j in range(n) if j != i)

    @given(elections())
    @settings(max_examples=60)
    def test_maximin_bounded_by_votes(self, votes):
        scores = maximin_scores(votes)
        for score in scores.values():
            assert 0 <= score <= len(votes)

    @given(elections())
    @settings(max_examples=60)
    def test_maximin_at_most_borda_average(self, votes):
        """maximin(i) <= Borda(i) / (n - 1) since the min is at most the average."""
        n = votes[0].num_candidates
        borda = borda_scores(votes)
        maximin = maximin_scores(votes)
        for candidate in range(n):
            assert maximin[candidate] <= borda[candidate] / (n - 1) + 1e-9

    @given(elections())
    @settings(max_examples=60)
    def test_plurality_and_veto_sum_to_votes(self, votes):
        plurality = plurality_scores(votes)
        veto = veto_scores(votes)
        assert sum(plurality.values()) == len(votes)
        assert sum(veto.values()) == len(votes)
