"""Property tests: recovery equals an uninterrupted replay, for any crash point.

The durability contract (see docs/DURABILITY.md) says a crash changes *when*
ingestion happens, never *what* it computes: for any sketch, any chunk size,
any batch carving, and any crash point — including one that tears the final
journal record mid-write — :func:`repro.durability.recover_sink` must rebuild
exactly the state an uninterrupted run over the journaled prefix would hold.
WAL-only recovery performs no serialization round-trip (a fresh sink is built
with the same constructor recipe and fed the same chunks), so the equality is
bit-for-bit for *randomized* sketches too: same ``RandomSource`` seed, same
draws, same report.

The torn-write fuzz is exhaustive rather than sampled: the final record is
truncated at **every** byte boundary (and its last byte flipped), and each
damaged journal must repair to exactly the intact prefix — never an error,
never a partial record leaking into the recovered state.
"""

import os
import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.misra_gries import MisraGries
from repro.baselines.space_saving import SpaceSaving
from repro.baselines.sticky_sampling import StickySampling
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.durability import WriteAheadLog, list_segments, recover_sink, replay, tear_tail
from repro.pipeline import PipelinedExecutor
from repro.primitives.rng import RandomSource

UNIVERSE = 64
LENGTH = 1_000  # nominal stream length for sketches that need it upfront
EPSILON = 0.05
PHI = 0.1
DELTA = 0.1
SEED = 11

SKETCHES = {
    "optimal": lambda: OptimalListHeavyHitters(
        epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(SEED)),
    "simple": lambda: SimpleListHeavyHitters(
        epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(SEED)),
    "misra-gries": lambda: MisraGries(EPSILON, UNIVERSE),
    "space-saving": lambda: SpaceSaving(EPSILON, UNIVERSE),
    "count-min": lambda: CountMinSketch(
        EPSILON, DELTA, UNIVERSE, rng=RandomSource(SEED)),
    "count-sketch": lambda: CountSketch(
        EPSILON, DELTA, UNIVERSE, rng=RandomSource(SEED)),
    "lossy-counting": lambda: LossyCounting(EPSILON, UNIVERSE),
    "sticky-sampling": lambda: StickySampling(
        EPSILON, PHI, DELTA, UNIVERSE, rng=RandomSource(SEED)),
}

items_strategy = st.lists(
    st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=1, max_size=500
)


def journal(directory, items, batch_sizes):
    """Append ``items`` carved into the drawn batch sizes; return the batches."""
    batches = []
    cursor = 0
    with WriteAheadLog(str(directory), fsync="off") as wal:
        for size in batch_sizes:
            if cursor >= len(items):
                break
            batch = np.asarray(items[cursor:cursor + size], dtype=np.int64)
            wal.append(batch)
            batches.append(batch)
            cursor += size
        if cursor < len(items):
            batch = np.asarray(items[cursor:], dtype=np.int64)
            wal.append(batch)
            batches.append(batch)
    return batches


def recovered_equals_offline(wal_dir, make_sketch, chunk_size, journaled):
    """Assert recovery over ``wal_dir`` equals a plain replay of ``journaled``."""
    recovered = recover_sink(
        str(wal_dir), lambda: PipelinedExecutor(
            sketch=make_sketch(), chunk_size=chunk_size),
        chunk_size=chunk_size, fsync="off",
    )
    recovered.wal.close()
    assert recovered.items_recovered_total == journaled.size
    if recovered.tail.size:
        recovered.sink.ingest_chunk(recovered.tail)

    offline = PipelinedExecutor(sketch=make_sketch(), chunk_size=chunk_size)
    for offset in range(0, journaled.size, chunk_size):
        offline.ingest_chunk(journaled[offset:offset + chunk_size])

    assert recovered.sink.items_processed == offline.items_processed == journaled.size
    assert (dict(recovered.sink.snapshot().report.items)
            == dict(offline.snapshot().report.items))


@pytest.mark.parametrize("sketch_name", sorted(SKETCHES))
@settings(max_examples=12, deadline=None)
@given(
    items=items_strategy,
    chunk_size=st.sampled_from([1, 3, 16, 64]),
    batch_sizes=st.lists(st.integers(1, 80), min_size=1, max_size=20),
    crash_kind=st.sampled_from(["clean", "torn"]),
    torn_bytes=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_crash_point_sweep_recovers_the_acked_prefix(
    tmp_path_factory, sketch_name, items, chunk_size, batch_sizes,
    crash_kind, torn_bytes, data,
):
    """Any SIGKILL point — between appends or mid-append — recovers exactly."""
    wal_dir = tmp_path_factory.mktemp(f"wal-{sketch_name}")
    batches = journal(wal_dir, items, batch_sizes)
    # The crash lands after a drawn number of acked appends...
    keep = data.draw(st.integers(min_value=0, max_value=len(batches)),
                     label="acked_appends")
    survivors = batches[:keep]
    rebuild = np.concatenate(survivors) if survivors else np.empty(0, np.int64)
    shutil.rmtree(wal_dir)
    journal(wal_dir, rebuild, [b.size for b in survivors] or [1])
    # ... optionally mid-append: tear bytes off the journal's tail (possibly
    # eating several records — a deep torn write).  Whatever replays after
    # repair is the journal's surviving prefix; recovery must equal an
    # uninterrupted run over exactly that prefix.
    if crash_kind == "torn" and keep:
        tear_tail(str(wal_dir), torn_bytes)
        WriteAheadLog.repair(str(wal_dir))
        pieces = [chunk for _, chunk in replay(str(wal_dir))]
        rebuild = (np.concatenate(pieces) if pieces
                   else np.empty(0, dtype=np.int64))
    make_sketch = SKETCHES[sketch_name]
    recovered_equals_offline(wal_dir, make_sketch, chunk_size, rebuild)


def test_torn_write_fuzz_every_byte_of_the_final_record(tmp_path):
    """Exhaustive: truncating the final record at any byte repairs cleanly."""
    first = np.arange(10, dtype=np.int64)
    last = np.arange(100, 106, dtype=np.int64)
    pristine = tmp_path / "pristine"
    with WriteAheadLog(str(pristine), fsync="off") as wal:
        wal.append(first)
        wal.append(last)
    segment = list_segments(str(pristine))[-1].path
    intact_size = os.path.getsize(segment)
    final_record_bytes = 8 + last.size * 8  # record header + payload

    for torn in range(1, final_record_bytes):
        damaged = tmp_path / f"torn-{torn}"
        shutil.copytree(pristine, damaged)
        tear_tail(str(damaged), torn)
        removed = WriteAheadLog.repair(str(damaged))
        # Repair drops the whole torn record, down to the intact prefix...
        assert removed == final_record_bytes - torn
        pieces = [items for _, items in replay(str(damaged))]
        np.testing.assert_array_equal(np.concatenate(pieces), first)
        # ... and the repaired journal accepts appends again.
        with WriteAheadLog(str(damaged), fsync="off") as wal:
            assert wal.position == first.size
            wal.append(last)
        pieces = [items for _, items in replay(str(damaged))]
        np.testing.assert_array_equal(
            np.concatenate(pieces), np.concatenate([first, last]))
        shutil.rmtree(damaged)

    # Byte flip (torn:bytes=0): same file size, CRC catches it, record drops.
    flipped = tmp_path / "flipped"
    shutil.copytree(pristine, flipped)
    tear_tail(str(flipped), 0)
    assert os.path.getsize(list_segments(str(flipped))[-1].path) == intact_size
    assert WriteAheadLog.repair(str(flipped)) == final_record_bytes
    pieces = [items for _, items in replay(str(flipped))]
    np.testing.assert_array_equal(np.concatenate(pieces), first)


def test_sub_chunk_tail_never_leaks_into_the_sink(tmp_path):
    """Replay hands back < chunk_size leftovers untouched, exactly once."""
    items = np.arange(70, dtype=np.int64)
    with WriteAheadLog(str(tmp_path / "wal"), fsync="off") as wal:
        wal.append(items[:50])
        wal.append(items[50:])
    recovered = recover_sink(
        str(tmp_path / "wal"), lambda: PipelinedExecutor(
            sketch=MisraGries(EPSILON, 128), chunk_size=32),
        chunk_size=32, fsync="off",
    )
    recovered.wal.close()
    assert recovered.sink.items_processed == 64
    np.testing.assert_array_equal(recovered.tail, items[64:])
