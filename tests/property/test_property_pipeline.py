"""Property tests: queue-backed pipelined replay equals eager replay, always.

The pipeline contract (see :mod:`repro.pipeline`) says pipelining changes *when*
parsing happens, never *what* the sketches see: for any stream, chunk size, queue
depth and shard count, the queue-backed replay must deliver exactly the same item
sequence — and therefore, for a deterministic sketch, exactly the same state — as an
eager in-process replay.
"""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactCounter
from repro.baselines.misra_gries import MisraGries
from repro.pipeline import ChunkProducer, PipelinedExecutor
from repro.primitives.rng import RandomSource
from repro.sharding import ShardedExecutor
from repro.sharding.router import chunk_stream

UNIVERSE = 64

items_strategy = st.lists(
    st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=0, max_size=400
)


@settings(max_examples=40, deadline=None)
@given(items=items_strategy, chunk_size=st.integers(1, 64), queue_depth=st.integers(1, 5))
def test_producer_preserves_the_item_sequence(items, chunk_size, queue_depth):
    chunks = list(ChunkProducer(iter(items), chunk_size=chunk_size, queue_depth=queue_depth))
    delivered = np.concatenate(chunks).tolist() if chunks else []
    assert delivered == items
    assert all(chunk.size <= chunk_size for chunk in chunks)


@settings(max_examples=40, deadline=None)
@given(items=items_strategy, chunk_size=st.integers(1, 64), queue_depth=st.integers(1, 4))
def test_pipelined_single_sketch_equals_eager_replay(items, chunk_size, queue_depth):
    eager = ExactCounter(UNIVERSE)
    for chunk in chunk_stream(items, chunk_size):
        eager.insert_many(chunk)
    executor = PipelinedExecutor(
        sketch=ExactCounter(UNIVERSE), chunk_size=chunk_size, queue_depth=queue_depth
    )
    result = executor.run(iter(items))
    assert result.sketch.frequencies() == eager.frequencies()
    assert result.sketch.frequencies() == dict(Counter(items))
    assert result.items_processed == len(items)


@settings(max_examples=25, deadline=None)
@given(
    items=items_strategy,
    chunk_size=st.integers(1, 64),
    queue_depth=st.integers(1, 4),
    shards=st.integers(1, 3),
    seed=st.integers(0, 2**20),
)
def test_pipelined_sharded_equals_serial_sharded(items, chunk_size, queue_depth, shards, seed):
    def build():
        return ShardedExecutor(
            factory=lambda shard: MisraGries(0.05, UNIVERSE),
            num_shards=shards,
            universe_size=UNIVERSE,
            rng=RandomSource(seed),
        )

    serial = build().run_chunks(
        chunk_stream(items, chunk_size), report_kwargs={"phi": 0.2}
    )
    pipelined = PipelinedExecutor(
        executor=build(), chunk_size=chunk_size, queue_depth=queue_depth
    )
    result = pipelined.run(iter(items), report_kwargs={"phi": 0.2})
    assert dict(result.report.items) == dict(serial.report.items)
    assert result.shard_sizes == serial.shard_sizes
    assert result.items_processed == sum(serial.shard_sizes)
