"""Property-based tests for the paper's core algorithms.

Hypothesis drives the *workload* (planted frequency profiles, universe sizes, seeds) and
the tests assert the guarantees of Definitions 1, 4 and 5 hold on every generated
instance.  Streams are kept small so the whole suite stays fast; the algorithms' sampling
probabilities saturate at 1 on such streams, which makes the guarantees deterministic up
to hash collisions — exactly the regime where a property test can demand they always
hold.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.maximum import EpsilonMaximum
from repro.core.minimum import EpsilonMinimum
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream
from repro.streams.truth import exact_frequencies


@st.composite
def planted_profiles(draw):
    """A planted heavy-hitter profile: (universe, heavy fractions, seed)."""
    universe = draw(st.integers(min_value=50, max_value=400))
    num_heavy = draw(st.integers(min_value=1, max_value=4))
    fractions = draw(
        st.lists(
            st.floats(min_value=0.08, max_value=0.25),
            min_size=num_heavy,
            max_size=num_heavy,
        ).filter(lambda fs: sum(fs) <= 0.8)
    )
    heavy_items = {index * 3 + 1: fraction for index, fraction in enumerate(fractions)}
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return universe, heavy_items, seed


class TestHeavyHittersProperties:
    @given(planted_profiles())
    @settings(max_examples=25, deadline=None)
    def test_definition_one_holds_on_planted_streams(self, profile):
        universe, heavy_items, seed = profile
        stream = planted_heavy_hitters_stream(
            6000, universe, heavy_items, rng=RandomSource(seed)
        )
        truth = exact_frequencies(stream)
        algo = SimpleListHeavyHitters(
            epsilon=0.04, phi=0.07, universe_size=universe,
            stream_length=len(stream), rng=RandomSource(seed + 1),
        )
        algo.consume(stream)
        report = algo.report()
        assert report.contains_all_heavy(truth)
        assert report.excludes_all_light(truth)
        assert report.max_frequency_error(truth) <= 0.04 * len(stream)

    @given(planted_profiles())
    @settings(max_examples=20, deadline=None)
    def test_report_never_exceeds_phi_budget(self, profile):
        """At most ~1/(phi - eps) items can be reported, whatever the stream."""
        universe, heavy_items, seed = profile
        stream = planted_heavy_hitters_stream(
            4000, universe, heavy_items, rng=RandomSource(seed)
        )
        epsilon, phi = 0.04, 0.07
        algo = SimpleListHeavyHitters(
            epsilon=epsilon, phi=phi, universe_size=universe,
            stream_length=len(stream), rng=RandomSource(seed + 2),
        )
        algo.consume(stream)
        report = algo.report()
        assert len(report) <= 1.0 / (phi - epsilon) + 2

    @given(planted_profiles())
    @settings(max_examples=20, deadline=None)
    def test_space_accounting_is_stable_over_the_run(self, profile):
        """The declared space never depends on which items happened to arrive."""
        universe, heavy_items, seed = profile
        stream = planted_heavy_hitters_stream(
            3000, universe, heavy_items, rng=RandomSource(seed)
        )
        algo = SimpleListHeavyHitters(
            epsilon=0.05, phi=0.1, universe_size=universe,
            stream_length=len(stream), rng=RandomSource(seed + 3),
        )
        algo.insert(stream[0])
        after_one = algo.space_bits()
        algo.consume(stream[1:])
        assert algo.space_bits() == after_one


class TestMaximumProperties:
    @given(planted_profiles())
    @settings(max_examples=25, deadline=None)
    def test_estimate_within_eps_of_true_maximum(self, profile):
        universe, heavy_items, seed = profile
        stream = planted_heavy_hitters_stream(
            5000, universe, heavy_items, rng=RandomSource(seed)
        )
        truth = exact_frequencies(stream)
        epsilon = 0.05
        algo = EpsilonMaximum(
            epsilon=epsilon, universe_size=universe, stream_length=len(stream),
            rng=RandomSource(seed + 4),
        )
        algo.consume(stream)
        result = algo.report()
        assert result.is_correct(truth)

    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=1, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_constant_stream_is_always_identified(self, item, copies):
        universe = 32
        algo = EpsilonMaximum(
            epsilon=0.2, universe_size=universe, stream_length=copies,
            rng=RandomSource(item),
        )
        algo.consume([item] * copies)
        result = algo.report()
        assert result.item == item
        assert abs(result.estimated_frequency - copies) <= 0.5 * copies + 1


class TestMinimumProperties:
    @given(
        st.integers(min_value=4, max_value=12),
        st.integers(min_value=0, max_value=5_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_absent_item_regime(self, universe, seed):
        """If some universe item never appears, the answer's true frequency must be
        within eps*m of zero."""
        rng = RandomSource(seed)
        present = list(range(universe - 1))  # the last item never appears
        stream = [present[rng.choice_index(len(present))] for _ in range(3000)]
        truth = exact_frequencies(stream)
        algo = EpsilonMinimum(
            epsilon=0.1, universe_size=universe, stream_length=len(stream),
            rng=RandomSource(seed + 1),
        )
        algo.consume(stream)
        result = algo.report()
        # The eps*m bound holds with probability 1-delta per run; a uniform stream puts
        # every present item's frequency within sampling noise of eps*m, so allow a few
        # standard deviations of slack (sd ~ sqrt(m/universe)) lest the example search
        # hunt down the boundary case where the answer's frequency is eps*m + O(sd).
        slack = 4.0 * math.sqrt(len(stream) / max(1, universe - 1))
        assert truth.get(result.item, 0) <= 0.1 * len(stream) + slack

    @given(st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=15, deadline=None)
    def test_strongly_separated_minimum_is_found(self, seed):
        """One item is 100x rarer than the rest; the report must not name a frequent item."""
        universe = 8
        stream = []
        for item in range(universe - 1):
            stream.extend([item] * 2000)
        stream.extend([universe - 1] * 20)
        stream = RandomSource(seed).shuffle(stream)
        truth = exact_frequencies(stream)
        algo = EpsilonMinimum(
            epsilon=0.05, universe_size=universe, stream_length=len(stream),
            rng=RandomSource(seed + 7),
        )
        algo.consume(stream)
        result = algo.report()
        assert result.is_correct(truth, universe_size=universe)
