"""Property-based tests (hypothesis) for the primitive substrates."""

import math

from hypothesis import given, settings, strategies as st

from repro.primitives.hashing import UniversalHashFamily, next_prime
from repro.primitives.rng import RandomSource
from repro.primitives.sampling import CoinFlipSampler, round_down_to_power_of_two_probability
from repro.primitives.space import SpaceMeter, bits_for_range, bits_for_value


class TestSpaceProperties:
    @given(st.integers(min_value=0, max_value=10**12))
    def test_bits_for_value_sufficient(self, value):
        """2^bits is always enough to represent the value."""
        bits = bits_for_value(value)
        assert 2 ** bits > value
        assert bits >= 1

    @given(st.integers(min_value=0, max_value=10**9), st.integers(min_value=0, max_value=10**9))
    def test_bits_for_value_monotone(self, a, b):
        low, high = min(a, b), max(a, b)
        assert bits_for_value(low) <= bits_for_value(high)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_bits_for_range_covers_all_indices(self, count):
        assert 2 ** bits_for_range(count) >= count

    @given(st.dictionaries(st.text(min_size=1, max_size=8), st.integers(min_value=0, max_value=10**6), max_size=8))
    def test_space_meter_total_is_sum(self, components):
        meter = SpaceMeter()
        for name, bits in components.items():
            meter.set_component(name, bits)
        assert meter.total_bits() == sum(components.values())
        assert meter.peak_bits() >= meter.total_bits()


class TestHashingProperties:
    @given(st.integers(min_value=2, max_value=10**6))
    def test_next_prime_is_at_least_input(self, value):
        p = next_prime(value)
        assert p >= value
        # No divisor below sqrt(p).
        assert all(p % d != 0 for d in range(2, min(int(math.isqrt(p)) + 1, 1000)))

    @given(
        st.integers(min_value=2, max_value=10**5),
        st.integers(min_value=2, max_value=1000),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=50)
    def test_hash_output_always_in_range(self, universe, range_size, seed):
        family = UniversalHashFamily(universe, range_size, rng=RandomSource(seed))
        h = family.draw()
        for item in range(0, universe, max(1, universe // 13)):
            assert 0 <= h(item) < range_size


class TestSamplingProperties:
    @given(st.floats(min_value=1e-9, max_value=1.0, allow_nan=False))
    def test_power_of_two_rounding_is_below_input(self, probability):
        rounded = round_down_to_power_of_two_probability(probability)
        assert rounded <= probability + 1e-12
        assert rounded > 0
        # 1/rounded is a power of two.
        inverse = 1.0 / rounded
        assert abs(inverse - 2 ** round(math.log2(inverse))) < 1e-6

    @given(st.floats(min_value=1e-6, max_value=1.0), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40)
    def test_coin_flip_sampler_space_is_loglog(self, probability, seed):
        sampler = CoinFlipSampler(probability, rng=RandomSource(seed))
        # num_coins = log2(1/p); the state is just that number.
        assert sampler.space_bits() <= max(1, math.ceil(math.log2(max(2, sampler.num_coins + 1)))) + 1
