"""Property-based tests for the Misra-Gries table (the substrate both the baseline and
the paper's algorithms rely on)."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.baselines.misra_gries import MisraGriesTable

streams = st.lists(st.integers(min_value=0, max_value=30), min_size=0, max_size=400)
capacities = st.integers(min_value=1, max_value=20)


class TestMisraGriesInvariants:
    @given(streams, capacities)
    @settings(max_examples=100)
    def test_never_overestimates(self, stream, capacity):
        table = MisraGriesTable(capacity)
        truth = Counter()
        for item in stream:
            table.update(item)
            truth[item] += 1
        for item in set(stream):
            assert table.get(item) <= truth[item]

    @given(streams, capacities)
    @settings(max_examples=100)
    def test_undercount_bounded_by_m_over_k(self, stream, capacity):
        table = MisraGriesTable(capacity)
        truth = Counter()
        for item in stream:
            table.update(item)
            truth[item] += 1
        bound = len(stream) / capacity
        for item in set(stream):
            assert table.get(item) >= truth[item] - bound - 1e-9

    @given(streams, capacities)
    @settings(max_examples=100)
    def test_capacity_never_exceeded(self, stream, capacity):
        table = MisraGriesTable(capacity)
        for item in stream:
            table.update(item)
            assert len(table) <= capacity

    @given(streams, capacities)
    @settings(max_examples=100)
    def test_total_stored_counts_never_exceed_stream_length(self, stream, capacity):
        table = MisraGriesTable(capacity)
        for item in stream:
            table.update(item)
        assert sum(table.counters.values()) <= len(stream)

    @given(streams, capacities)
    @settings(max_examples=60)
    def test_majority_item_survives(self, stream, capacity):
        """Any item with frequency > m / (capacity + 1) must still be in the table."""
        table = MisraGriesTable(capacity)
        truth = Counter()
        for item in stream:
            table.update(item)
            truth[item] += 1
        threshold = len(stream) / (capacity + 1)
        for item, count in truth.items():
            if count > threshold:
                assert item in table
