"""Property tests: k interleaved named streams each equal their solo replay, always.

The tenancy contract (see :mod:`repro.service.registry`) says multi-tenancy
changes *where* a stream's sink lives, never *what* it computes: for any
interleaving of pushes across named streams, any chunk size, and any
``max_live_streams`` cap (including caps that force LRU checkpoint-eviction on
every push), each stream's sealed report must be bit-for-bit the report of a
solo offline replay of just that stream's items at the same seed and chunk
size.  Deterministic sketches make the equality checkable directly — eviction's
save/restore round-trip must be completely invisible.
"""

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactCounter
from repro.baselines.misra_gries import MisraGries
from repro.pipeline import PipelinedExecutor
from repro.service import StreamRegistry
from repro.sharding.router import chunk_stream

UNIVERSE = 64

items_strategy = st.lists(
    st.integers(min_value=0, max_value=UNIVERSE - 1), min_size=0, max_size=400
)

# Up to 4 named streams, each with its own item sequence.
streams_strategy = st.lists(items_strategy, min_size=1, max_size=4)

# How the pushes interleave: a sequence of (stream index, batch length) picks.
# Indices are taken modulo the stream count; lengths carve each stream's items
# into prefix batches, so every schedule is valid for every drawn stream list.
schedule_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 50)), min_size=0, max_size=60
)


def _registry(chunk_size: int, max_live, make_sketch) -> StreamRegistry:
    return StreamRegistry(
        lambda name: PipelinedExecutor(sketch=make_sketch(), chunk_size=chunk_size),
        chunk_size=chunk_size,
        max_live_streams=max_live,
    )


def _interleave(registry: StreamRegistry, streams, schedule) -> None:
    """Push every stream's items according to the schedule, then drain the rest."""
    cursors = [0] * len(streams)
    for index in range(len(streams)):
        # A zero-item push creates the stream, so empty drawn streams still
        # exist (and can be sealed) like their non-empty siblings.
        registry.push(f"s{index}", np.empty(0, dtype=np.int64))
    for pick, length in schedule:
        index = pick % len(streams)
        items = streams[index]
        cursor = cursors[index]
        if cursor >= len(items):
            continue
        batch = np.asarray(items[cursor:cursor + length], dtype=np.int64)
        registry.push(f"s{index}", batch)
        cursors[index] += len(batch)
    for index, items in enumerate(streams):
        if cursors[index] < len(items):
            tail = np.asarray(items[cursors[index]:], dtype=np.int64)
            registry.push(f"s{index}", tail)


@settings(max_examples=40, deadline=None)
@given(
    streams=streams_strategy,
    schedule=schedule_strategy,
    chunk_size=st.integers(1, 64),
    max_live=st.integers(1, 4),
)
def test_interleaved_streams_equal_solo_replay(streams, schedule, chunk_size, max_live):
    registry = _registry(chunk_size, max_live, lambda: MisraGries(0.05, UNIVERSE))
    try:
        _interleave(registry, streams, schedule)
        for index, items in enumerate(streams):
            served = registry.seal(f"s{index}", report_kwargs={"phi": 0.2})
            solo = PipelinedExecutor(
                sketch=MisraGries(0.05, UNIVERSE), chunk_size=chunk_size
            ).run(iter(items), report_kwargs={"phi": 0.2})
            assert dict(served.report.items) == dict(solo.report.items)
            assert served.items_processed == len(items)
    finally:
        registry.close()


@settings(max_examples=40, deadline=None)
@given(
    streams=streams_strategy,
    schedule=schedule_strategy,
    chunk_size=st.integers(1, 64),
)
def test_exact_counts_isolate_across_streams(streams, schedule, chunk_size):
    # max_live_streams=1 is the harshest cap: every switch of the interleaving
    # to another stream evicts the previous one.  Exact counters prove no item
    # ever leaks between streams and none is lost to an evict/restore cycle.
    registry = _registry(chunk_size, 1, lambda: ExactCounter(UNIVERSE))
    try:
        _interleave(registry, streams, schedule)
        for index, items in enumerate(streams):
            result = registry.seal(f"s{index}")
            assert result.sketch.frequencies() == dict(Counter(items))
    finally:
        registry.close()


@settings(max_examples=25, deadline=None)
@given(
    streams=st.lists(items_strategy, min_size=2, max_size=3),
    schedule=schedule_strategy,
    chunk_size=st.integers(1, 64),
    query_every=st.integers(1, 5),
)
def test_mid_ingest_queries_are_chunk_aligned_and_isolated(
    streams, schedule, chunk_size, query_every
):
    # Interleave pushes with mid-ingest queries under the harshest cap; each
    # query must answer from the queried stream's own chunk-aligned prefix,
    # exactly as the default stream's snapshot semantics promise.
    registry = _registry(chunk_size, 1, lambda: ExactCounter(UNIVERSE))
    cursors = [0] * len(streams)
    try:
        for index in range(len(streams)):
            registry.push(f"s{index}", np.empty(0, dtype=np.int64))
        for step, (pick, length) in enumerate(schedule):
            index = pick % len(streams)
            items = streams[index]
            cursor = cursors[index]
            if cursor < len(items):
                batch = np.asarray(items[cursor:cursor + length], dtype=np.int64)
                registry.push(f"s{index}", batch)
                cursors[index] += len(batch)
            if step % query_every == 0:
                final, snapshot = registry.query(f"s{index}")
                assert final is False
                prefix_length = (
                    cursors[index] - cursors[index] % chunk_size
                )
                expected = Counter(items[:prefix_length])
                assert snapshot.sketch.frequencies() == dict(expected)
        for index, items in enumerate(streams):
            if cursors[index] < len(items):
                tail = np.asarray(items[cursors[index]:], dtype=np.int64)
                registry.push(f"s{index}", tail)
            result = registry.seal(f"s{index}")
            assert result.sketch.frequencies() == dict(Counter(items))
    finally:
        registry.close()


@settings(max_examples=25, deadline=None)
@given(
    items=items_strategy,
    chunk_size=st.integers(1, 64),
    evict_every=st.integers(1, 8),
)
def test_forced_evict_restore_cycles_are_invisible(items, chunk_size, evict_every):
    # Two streams under max_live_streams=1: touching the decoy after every
    # ``evict_every`` batches forces the subject through a full evict→restore
    # cycle mid-stream, repeatedly.  The sealed report must still equal the
    # uninterrupted solo replay bit for bit.
    registry = _registry(chunk_size, 1, lambda: MisraGries(0.05, UNIVERSE))
    try:
        registry.push("subject", np.empty(0, dtype=np.int64))
        registry.push("decoy", np.asarray([0], dtype=np.int64))
        for chunk in chunk_stream(items, evict_every):
            registry.push("subject", np.asarray(chunk, dtype=np.int64))
            registry.query("decoy")  # LRU-evicts "subject"
        served = registry.seal("subject", report_kwargs={"phi": 0.2})
        solo = PipelinedExecutor(
            sketch=MisraGries(0.05, UNIVERSE), chunk_size=chunk_size
        ).run(iter(items), report_kwargs={"phi": 0.2})
        assert dict(served.report.items) == dict(solo.report.items)
        info = registry.stream_info("subject")
        if len(items) > 0:
            assert info["evictions"] > 0
            assert info["restores"] > 0
    finally:
        registry.close()
