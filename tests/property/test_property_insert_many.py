"""Equivalence of batched (``insert_many``) and sequential (``insert``) ingestion.

The contract (see :mod:`repro.core.base`) distinguishes two strengths:

* **exact** overrides reproduce sequential state bit for bit — the Count-Min /
  CountSketch tables (counter additions commute), Lossy Counting fed window-aligned
  chunks, Sticky Sampling while its sampling rate is 1, and the base-class default
  loop;
* **statistical** overrides change RNG consumption order or decrement interleaving but
  keep the estimator and its ε/ϕ guarantees — Misra–Gries, Space-Saving, the two paper
  algorithms, and the general-chunk paths of Lossy Counting / Sticky Sampling.

The tests below pin each override to its documented strength: exact paths are compared
field by field, statistical paths are held to the same accuracy guarantees the
sequential path is tested for (fixed seeds, planted ground truth).  A final test locks
the acceptance criterion that batching never changes the *space accounting*.
"""

import numpy as np
import pytest

from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.baselines.exact import ExactCounter
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.misra_gries import MisraGries
from repro.baselines.space_saving import SpaceSaving
from repro.baselines.sticky_sampling import StickySampling
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream, zipfian_stream
from repro.streams.truth import exact_frequencies

UNIVERSE = 2_000
LENGTH = 12_000
HEAVY = {3: 0.25, 11: 0.12, 42: 0.08}
PHI = 0.07
EPSILON = 0.02

# Chunk sizes chosen to exercise ragged boundaries (prime), tiny batches, and
# one-big-batch ingestion.
CHUNKINGS = [997, 1, 12_000, 5_000]


def _planted(seed=5):
    return planted_heavy_hitters_stream(
        LENGTH, UNIVERSE, HEAVY, rng=RandomSource(seed)
    )


def _consume_chunked(algorithm, stream, chunk):
    array = stream.array
    for start in range(0, len(array), chunk):
        algorithm.insert_many(array[start : start + chunk])
    return algorithm


def _true_heavy_items(stream, phi):
    truth = exact_frequencies(stream)
    return {item for item, count in truth.items() if count > phi * len(stream)}


class TestDefaultPathIsExact:
    """The base-class default (a loop over insert) must be bitwise exact."""

    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_exact_counter_matches(self, chunk):
        stream = _planted()
        sequential = ExactCounter(universe_size=UNIVERSE).consume(stream)
        batched = _consume_chunked(ExactCounter(universe_size=UNIVERSE), stream, chunk)
        assert batched.counts == sequential.counts
        assert batched.items_processed == sequential.items_processed


class TestExactOverrides:
    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_count_min_table_identical(self, chunk):
        stream = _planted()
        sequential = CountMinSketch(EPSILON, 0.1, UNIVERSE, rng=RandomSource(1))
        batched = CountMinSketch(EPSILON, 0.1, UNIVERSE, rng=RandomSource(1))
        sequential.consume(stream)
        _consume_chunked(batched, stream, chunk)
        assert np.array_equal(batched.table, sequential.table)
        assert batched.items_processed == sequential.items_processed

    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_count_sketch_table_identical(self, chunk):
        stream = _planted()
        sequential = CountSketch(0.05, 0.1, UNIVERSE, rng=RandomSource(2))
        batched = CountSketch(0.05, 0.1, UNIVERSE, rng=RandomSource(2))
        sequential.consume(stream)
        _consume_chunked(batched, stream, chunk)
        assert np.array_equal(batched.table, sequential.table)

    def test_lossy_counting_window_aligned_chunks_identical(self):
        stream = _planted()
        sequential = LossyCounting(EPSILON, UNIVERSE).consume(stream)
        batched = LossyCounting(EPSILON, UNIVERSE)
        _consume_chunked(batched, stream, batched.bucket_width)
        assert batched.entries == sequential.entries
        assert batched.current_bucket == sequential.current_bucket

    def test_sticky_sampling_rate_one_regime_identical(self):
        # Keep the stream strictly inside the first window, where the sampling rate
        # is 1 and neither path consumes randomness (nor reaches the randomized
        # window-advance thinning).
        sticky = StickySampling(0.05, 0.2, 0.1, UNIVERSE, rng=RandomSource(3))
        short = _planted().prefix(min(sticky.window_size - 1, LENGTH))
        sequential = StickySampling(0.05, 0.2, 0.1, UNIVERSE, rng=RandomSource(3))
        sequential.consume(short)
        batched = StickySampling(0.05, 0.2, 0.1, UNIVERSE, rng=RandomSource(3))
        _consume_chunked(batched, short, 611)
        assert batched.entries == sequential.entries


class TestStatisticalOverridesKeepGuarantees:
    """Batched paths must satisfy the same guarantees the sequential paths are held to."""

    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_misra_gries_deterministic_guarantee(self, chunk):
        stream = _planted()
        truth = exact_frequencies(stream)
        batched = _consume_chunked(MisraGries(EPSILON, UNIVERSE), stream, chunk)
        for item, count in truth.items():
            estimate = batched.estimate(item)
            assert count - EPSILON * LENGTH <= estimate <= count
        report = batched.report(phi=PHI)
        assert _true_heavy_items(stream, PHI) <= set(report.items)

    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_space_saving_deterministic_guarantee(self, chunk):
        stream = _planted()
        truth = exact_frequencies(stream)
        batched = _consume_chunked(SpaceSaving(EPSILON, UNIVERSE), stream, chunk)
        for item in batched.counts:
            true_count = truth.get(item, 0)
            assert true_count <= batched.counts[item] <= true_count + LENGTH / batched.capacity
        report = batched.report(phi=PHI)
        assert _true_heavy_items(stream, PHI) <= set(report.items)

    @pytest.mark.parametrize("chunk", CHUNKINGS)
    def test_lossy_counting_guarantee_any_chunking(self, chunk):
        stream = _planted()
        truth = exact_frequencies(stream)
        batched = _consume_chunked(LossyCounting(EPSILON, UNIVERSE), stream, chunk)
        for item, (count, _delta) in batched.entries.items():
            assert count <= truth[item]
            assert truth[item] - count <= EPSILON * LENGTH
        report = batched.report(phi=PHI)
        assert _true_heavy_items(stream, PHI) <= set(report.items)

    @pytest.mark.parametrize("chunk", CHUNKINGS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sticky_sampling_finds_planted_heavies(self, chunk, seed):
        stream = _planted()
        batched = _consume_chunked(
            StickySampling(EPSILON, PHI, 0.1, UNIVERSE, rng=RandomSource(seed)),
            stream,
            chunk,
        )
        report = batched.report()
        assert _true_heavy_items(stream, PHI) <= set(report.items)

    @pytest.mark.parametrize("chunk", CHUNKINGS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_simple_batched_report_matches_sequential_quality(self, chunk, seed):
        stream = _planted()
        heavy = _true_heavy_items(stream, PHI)

        def build():
            return SimpleListHeavyHitters(
                epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
                stream_length=LENGTH, rng=RandomSource(seed),
            )

        sequential = build().consume(stream)
        batched = _consume_chunked(build(), stream, chunk)
        assert set(sequential.report().items) == heavy
        assert set(batched.report().items) == heavy
        for item in heavy:
            true_count = exact_frequencies(stream)[item]
            assert abs(batched.estimate(item) - true_count) <= EPSILON * LENGTH

    @pytest.mark.parametrize("chunk", CHUNKINGS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_optimal_batched_report_matches_sequential_quality(self, chunk, seed):
        stream = _planted()
        heavy = _true_heavy_items(stream, PHI)

        def build():
            return OptimalListHeavyHitters(
                epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
                stream_length=LENGTH, rng=RandomSource(seed),
            )

        sequential = build().consume(stream)
        batched = _consume_chunked(build(), stream, chunk)
        assert set(sequential.report().items) == heavy
        assert set(batched.report().items) == heavy

    def test_optimal_sample_rate_matches(self):
        """The skip-ahead sampler must sample at the same rate as per-item coin flips."""
        stream = zipfian_stream(30_000, UNIVERSE, skew=1.2, rng=RandomSource(9))
        build = lambda s: OptimalListHeavyHitters(
            epsilon=0.05, phi=0.1, universe_size=UNIVERSE,
            stream_length=10 ** 6, rng=RandomSource(s),
        )
        sequential = build(1).consume(stream)
        batched = _consume_chunked(build(1), stream, 4_096)
        assert sequential.sample_size > 0 and batched.sample_size > 0
        ratio = batched.sample_size / sequential.sample_size
        assert 0.7 <= ratio <= 1.4


class TestSpaceAccountingUnchangedByBatching:
    """Acceptance: the fast path is a time optimization only — space_breakdown() after
    batch ingestion equals sequential ingestion of the same sampled set."""

    def test_deterministic_sketches_equal_breakdown(self):
        stream = _planted()
        cases = {
            "misra-gries": lambda: MisraGries(EPSILON, UNIVERSE, stream_length_hint=LENGTH),
            "space-saving": lambda: SpaceSaving(EPSILON, UNIVERSE),
            "count-min": lambda: CountMinSketch(
                EPSILON, 0.1, UNIVERSE, rng=RandomSource(4), track_heavy_candidates=False
            ),
            "count-sketch": lambda: CountSketch(
                0.05, 0.1, UNIVERSE, rng=RandomSource(4), track_heavy_candidates=False
            ),
        }
        for label, build in cases.items():
            sequential = build().consume(stream)
            batched = _consume_chunked(build(), stream, 997)
            assert dict(batched.space_breakdown()) == dict(sequential.space_breakdown()), label

    def test_lossy_counting_equal_breakdown_window_chunks(self):
        stream = _planted()
        sequential = LossyCounting(EPSILON, UNIVERSE).consume(stream)
        batched = LossyCounting(EPSILON, UNIVERSE)
        _consume_chunked(batched, stream, batched.bucket_width)
        assert dict(batched.space_breakdown()) == dict(sequential.space_breakdown())

    def test_sticky_sampling_equal_breakdown_rate_one(self):
        sticky = StickySampling(0.05, 0.2, 0.1, UNIVERSE, rng=RandomSource(3))
        short = _planted().prefix(min(sticky.window_size - 1, LENGTH))
        sequential = StickySampling(0.05, 0.2, 0.1, UNIVERSE, rng=RandomSource(3))
        sequential.consume(short)
        batched = StickySampling(0.05, 0.2, 0.1, UNIVERSE, rng=RandomSource(3))
        _consume_chunked(batched, short, 61)
        assert dict(batched.space_breakdown()) == dict(sequential.space_breakdown())

    def test_simple_equal_breakdown(self):
        # Every component of Algorithm 1's accounting is capacity-derived, so exact
        # equality holds even though batch ingestion is only statistically equivalent.
        stream = _planted()
        build = lambda: SimpleListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
            stream_length=LENGTH, rng=RandomSource(6),
        )
        sequential = build().consume(stream)
        batched = _consume_chunked(build(), stream, 997)
        assert dict(batched.space_breakdown()) == dict(sequential.space_breakdown())

    def test_optimal_breakdown_components(self):
        """Parameter-derived components are exactly equal; the T2/T3 counter bits are
        content-dependent (the batch path draws statistically-equivalent counters), so
        they are held to a tight relative tolerance, and no new components appear."""
        stream = _planted()
        build = lambda: OptimalListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
            stream_length=LENGTH, rng=RandomSource(6),
        )
        sequential = build().consume(stream)
        batched = _consume_chunked(build(), stream, 997)
        sequential_parts = dict(sequential.space_breakdown())
        batched_parts = dict(batched.space_breakdown())
        assert set(batched_parts) == set(sequential_parts)
        for component in ("sampler", "T1", "hash_functions"):
            assert batched_parts[component] == sequential_parts[component]
        assert batched_parts["T2_T3"] == pytest.approx(
            sequential_parts["T2_T3"], rel=0.15
        )
