"""Property tests for merge semantics (the combine step of the sharded subsystem).

The mergeability claims each sketch's ``merge`` documents are checked against their
definitions, not assumed:

* **Misra–Gries / Space-Saving** — a merged pair of summaries over an arbitrary split
  of a stream satisfies the same deterministic additive error bound (within the
  guarantee) as a single instance run on the concatenated stream;
* **Count-Min / CountSketch** — with shared hash functions the merge is *exactly* the
  single-run table (linear sketches);
* **accelerated-counter sketches** — hash-sharded Algorithm 2 (and Algorithm 1) stay
  within the (ε,ϕ) bound of Definition 1 on Zipf and planted-frequency streams;
* **HeavyHittersReport.merge** — compatibility checks and combined thresholds.
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.baselines.exact import ExactCounter
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.misra_gries import MisraGries, MisraGriesTable
from repro.baselines.space_saving import SpaceSaving
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.results import HeavyHittersReport
from repro.primitives.rng import RandomSource
from repro.sharding import ShardedExecutor, merge_all, share_hash_functions
from repro.streams.generators import planted_heavy_hitters_stream, zipfian_stream
from repro.streams.truth import exact_frequencies

streams = st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=500)
capacities = st.integers(min_value=1, max_value=16)
splits = st.floats(min_value=0.0, max_value=1.0)


def _split(stream, fraction):
    cut = int(len(stream) * fraction)
    return stream[:cut], stream[cut:]


class TestMisraGriesMerge:
    @given(streams, capacities, splits)
    @settings(max_examples=100)
    def test_merged_table_keeps_combined_error_bound(self, stream, capacity, fraction):
        left, right = _split(stream, fraction)
        merged = MisraGriesTable(capacity)
        other = MisraGriesTable(capacity)
        for item in left:
            merged.update(item)
        for item in right:
            other.update(item)
        merged.merge(other)
        truth = Counter(stream)
        bound = len(stream) / capacity
        assert len(merged) <= capacity
        for item in truth:
            assert merged.get(item) <= truth[item]
            assert merged.get(item) >= truth[item] - bound - 1e-9

    @given(streams, splits)
    @settings(max_examples=60)
    def test_merged_summary_matches_single_run_within_guarantee(self, stream, fraction):
        """Merged shards and a single run agree on every estimate within εm each way."""
        epsilon = 0.125
        left, right = _split(stream, fraction)
        single = MisraGries(epsilon, universe_size=64)
        single.insert_many(stream) if stream else None
        a, b = MisraGries(epsilon, universe_size=64), MisraGries(epsilon, universe_size=64)
        if left:
            a.insert_many(left)
        if right:
            b.insert_many(right)
        a.merge(b)
        assert a.items_processed == len(stream)
        truth = Counter(stream)
        bound = epsilon * len(stream)
        for item in truth:
            # Both sides are within εm of the truth, hence within 2εm of each other;
            # assert each against the truth (the guarantee actually promised).
            assert truth[item] - bound <= a.estimate(item) <= truth[item]
            assert truth[item] - bound <= single.estimate(item) <= truth[item]

    def test_capacity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MisraGriesTable(4).merge(MisraGriesTable(5))
        with pytest.raises(ValueError):
            a, b = MisraGries(0.1, 10), MisraGries(0.2, 10)
            a.merge(b)


class TestSpaceSavingMerge:
    @given(streams, splits)
    @settings(max_examples=60)
    def test_merged_summary_within_guarantee(self, stream, fraction):
        epsilon = 0.125
        left, right = _split(stream, fraction)
        a, b = SpaceSaving(epsilon, 64), SpaceSaving(epsilon, 64)
        if left:
            a.insert_many(left)
        if right:
            b.insert_many(right)
        a.merge(b)
        assert a.items_processed == len(stream)
        assert len(a.counts) <= a.capacity
        truth = Counter(stream)
        bound = epsilon * len(stream)
        for item in truth:
            if item in a.counts:
                # Stored items: the inputs' ±εmᵢ guarantees add.
                assert abs(a.estimate(item) - truth[item]) <= bound + 1e-9
            else:
                # Pruned/absent items: true frequency at most 2ε(m₁+m₂).
                assert truth[item] <= 2 * bound + 1e-9

    def test_disjoint_supports_preserve_overestimates(self):
        """Hash-routed shards have disjoint supports: estimates stay >= truth."""
        rng = RandomSource(3)
        stream = zipfian_stream(4000, 128, skew=1.4, rng=rng)
        evens = [item for item in stream if item % 2 == 0]
        odds = [item for item in stream if item % 2 == 1]
        a, b = SpaceSaving(0.05, 128), SpaceSaving(0.05, 128)
        a.insert_many(evens)
        b.insert_many(odds)
        a.merge(b)
        truth = Counter(stream)
        for item, count in truth.items():
            if item in a.counts:
                assert a.counts[item] >= count


class TestLinearSketchMergeIsExact:
    @given(streams, splits)
    @settings(max_examples=40)
    def test_count_min_merge_equals_single_run(self, stream, fraction):
        left, right = _split(stream, fraction)
        single = CountMinSketch(0.1, 0.2, 64, rng=RandomSource(7))
        shards = [
            CountMinSketch(0.1, 0.2, 64, rng=RandomSource(7)),
            CountMinSketch(0.1, 0.2, 64, rng=RandomSource(8)),
        ]
        share_hash_functions(shards)
        if stream:
            single.insert_many(stream)
        if left:
            shards[0].insert_many(left)
        if right:
            shards[1].insert_many(right)
        merged = merge_all(shards)
        assert (merged.table == single.table).all()
        assert merged.items_processed == single.items_processed

    @given(streams, splits)
    @settings(max_examples=40)
    def test_count_sketch_merge_equals_single_run(self, stream, fraction):
        left, right = _split(stream, fraction)
        single = CountSketch(0.2, 0.2, 64, rng=RandomSource(9))
        shards = [
            CountSketch(0.2, 0.2, 64, rng=RandomSource(9)),
            CountSketch(0.2, 0.2, 64, rng=RandomSource(10)),
        ]
        share_hash_functions(shards)
        if stream:
            single.insert_many(stream)
        if left:
            shards[0].insert_many(left)
        if right:
            shards[1].insert_many(right)
        merged = merge_all(shards)
        assert (merged.table == single.table).all()

    def test_unshared_hash_functions_rejected(self):
        a = CountMinSketch(0.1, 0.2, 64, rng=RandomSource(1))
        b = CountMinSketch(0.1, 0.2, 64, rng=RandomSource(2))
        with pytest.raises(ValueError):
            a.merge(b)


class TestExactAndLossyMerge:
    @given(streams, splits)
    @settings(max_examples=60)
    def test_exact_counter_merge_is_lossless(self, stream, fraction):
        left, right = _split(stream, fraction)
        a, b = ExactCounter(64), ExactCounter(64)
        for item in left:
            a.insert(item)
        for item in right:
            b.insert(item)
        a.merge(b)
        assert a.frequencies() == dict(Counter(stream))

    @given(streams, splits)
    @settings(max_examples=60)
    def test_lossy_counting_merge_keeps_guarantee(self, stream, fraction):
        epsilon = 0.125
        left, right = _split(stream, fraction)
        a, b = LossyCounting(epsilon, 64), LossyCounting(epsilon, 64)
        if left:
            a.insert_many(left)
        if right:
            b.insert_many(right)
        a.merge(b)
        truth = Counter(stream)
        bound = epsilon * len(stream)
        for item in truth:
            assert a.estimate(item) <= truth[item]
            assert a.estimate(item) >= truth[item] - bound - 1e-9


ZIPF = ("zipf", 1.2)
PLANTED = ("planted", {7: 0.22, 13: 0.11, 29: 0.08})


def _stream_for(kind, seed, length=40_000, universe=4096):
    name, parameter = kind
    if name == "zipf":
        return zipfian_stream(length, universe, skew=parameter, rng=RandomSource(seed))
    return planted_heavy_hitters_stream(length, universe, parameter, rng=RandomSource(seed))


class TestShardedAcceleratedCounters:
    """Sharded paper algorithms stay within the (ε,ϕ) bound of Definition 1."""

    @pytest.mark.parametrize("kind", [ZIPF, PLANTED], ids=["zipf", "planted"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_optimal_within_guarantee(self, kind, shards):
        epsilon, phi = 0.02, 0.06
        stream = _stream_for(kind, seed=31 + shards)
        truth = exact_frequencies(stream)
        rng = RandomSource(17 + shards)
        executor = ShardedExecutor(
            factory=lambda shard: OptimalListHeavyHitters(
                epsilon=epsilon, phi=phi, universe_size=stream.universe_size,
                stream_length=len(stream), rng=rng.spawn(shard),
            ),
            num_shards=shards,
            universe_size=stream.universe_size,
            rng=rng,
        )
        result = executor.run(stream, batch_size=8192)
        report = result.report
        assert report.stream_length == len(stream)
        assert report.contains_all_heavy(truth)
        assert report.excludes_all_light(truth)
        assert report.max_frequency_error(truth) <= epsilon * len(stream)

    @pytest.mark.parametrize("kind", [ZIPF, PLANTED], ids=["zipf", "planted"])
    def test_sharded_simple_within_guarantee(self, kind):
        epsilon, phi = 0.02, 0.06
        stream = _stream_for(kind, seed=53)
        truth = exact_frequencies(stream)
        rng = RandomSource(71)
        executor = ShardedExecutor(
            factory=lambda shard: SimpleListHeavyHitters(
                epsilon=epsilon, phi=phi, universe_size=stream.universe_size,
                stream_length=len(stream), rng=rng.spawn(shard),
            ),
            num_shards=3,
            universe_size=stream.universe_size,
            rng=rng,
        )
        result = executor.run(stream, batch_size=8192)
        report = result.report
        assert report.contains_all_heavy(truth)
        assert report.excludes_all_light(truth)
        assert report.max_frequency_error(truth) <= epsilon * len(stream)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_sharded_matches_single_instance_within_guarantee(self, shards):
        """The acceptance comparison: merged report vs single-instance report."""
        epsilon, phi = 0.02, 0.06
        stream = _stream_for(ZIPF, seed=97)
        truth = exact_frequencies(stream)
        single = OptimalListHeavyHitters(
            epsilon=epsilon, phi=phi, universe_size=stream.universe_size,
            stream_length=len(stream), rng=RandomSource(5),
        )
        single.consume(stream, batch_size=8192)
        single_report = single.report()
        rng = RandomSource(6)
        executor = ShardedExecutor(
            factory=lambda shard: OptimalListHeavyHitters(
                epsilon=epsilon, phi=phi, universe_size=stream.universe_size,
                stream_length=len(stream), rng=rng.spawn(shard),
            ),
            num_shards=shards,
            universe_size=stream.universe_size,
            rng=rng,
        )
        sharded_report = executor.run(stream, batch_size=8192).report
        # Both reports satisfy Definition 1 against the same truth, so they can only
        # disagree on items in the (ϕ−ε, ϕ]·m band; check that directly.
        for report in (single_report, sharded_report):
            assert report.contains_all_heavy(truth)
            assert report.excludes_all_light(truth)
        band_low = (phi - epsilon) * len(stream)
        band_high = phi * len(stream)
        for item in set(single_report.items).symmetric_difference(sharded_report.items):
            assert band_low < truth.get(item, 0) <= band_high


class TestSamplingRateCompatibility:
    def test_stream_length_mismatch_rejected_by_both_algorithms(self):
        # The sampling rate is derived from the stream length; merging instances
        # built for different lengths would mix samples drawn at different rates.
        for algorithm_type in (OptimalListHeavyHitters, SimpleListHeavyHitters):
            a = algorithm_type(
                epsilon=0.05, phi=0.15, universe_size=256,
                stream_length=10_000, rng=RandomSource(1),
            )
            b = algorithm_type(
                epsilon=0.05, phi=0.15, universe_size=256,
                stream_length=20_000, rng=RandomSource(2),
            )
            share_hash_functions([a, b])
            with pytest.raises(ValueError):
                a.merge(b)


class TestReportMerge:
    def test_estimates_add_and_length_combines(self):
        left = HeavyHittersReport({1: 500.0}, 1000, epsilon=0.02, phi=0.1)
        right = HeavyHittersReport({1: 200.0, 2: 450.0}, 3000, epsilon=0.02, phi=0.1)
        merged = left.merge(right, rethreshold=False)
        assert merged.stream_length == 4000
        assert merged.items == {1: 700.0, 2: 450.0}

    def test_rethreshold_drops_globally_light_items(self):
        # Item 2 is heavy for the right shard alone but light at the combined scale.
        left = HeavyHittersReport({1: 5000.0}, 10_000, epsilon=0.02, phi=0.1)
        right = HeavyHittersReport({2: 120.0}, 1000, epsilon=0.02, phi=0.1)
        merged = left.merge(right)
        assert 1 in merged and 2 not in merged
        threshold = (0.1 - 0.02) * merged.stream_length
        assert all(estimate > threshold for estimate in merged.items.values())

    def test_rethreshold_keeps_underestimated_heavy_items(self):
        # A Misra-Gries-style shard report can carry a phi-heavy item with an
        # estimate as low as f - eps*m_shard, just above (phi - eps)*m_shard; the
        # combined filter must not evict it (the code-review repro case).
        epsilon, phi = 0.1, 0.3
        # Item 1: f = 601 of m = 2000 (phi-heavy: 601 > 600); MG undercount leaves 483.
        left = HeavyHittersReport({1: 483.0}, 1900, epsilon=epsilon, phi=phi)
        right = HeavyHittersReport({}, 100, epsilon=epsilon, phi=phi)
        merged = left.merge(right)
        assert 1 in merged

    def test_incompatible_guarantees_rejected(self):
        base = HeavyHittersReport({}, 10, epsilon=0.02, phi=0.1)
        with pytest.raises(ValueError):
            base.merge(HeavyHittersReport({}, 10, epsilon=0.03, phi=0.1))
        with pytest.raises(ValueError):
            base.merge(HeavyHittersReport({}, 10, epsilon=0.02, phi=0.2))
        with pytest.raises(TypeError):
            base.merge("not a report")
