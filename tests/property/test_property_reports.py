"""Property-based tests for the report predicates and the exact-counter oracle."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.baselines.exact import ExactCounter
from repro.core.results import HeavyHittersReport

streams = st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=300)


class TestExactCounterAsOracle:
    @given(streams)
    @settings(max_examples=80)
    def test_exact_report_always_satisfies_definition(self, stream):
        """The exact counter's report satisfies Definition 1 for any (eps, phi)."""
        counter = ExactCounter(universe_size=16)
        for item in stream:
            counter.insert(item)
        truth = counter.frequencies()
        report = counter.report(epsilon=0.1, phi=0.3)
        assert report.satisfies_definition(truth)

    @given(streams, st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=80)
    def test_heavy_hitter_count_bounded_by_inverse_phi(self, stream, phi):
        counter = ExactCounter(universe_size=16)
        for item in stream:
            counter.insert(item)
        heavy = counter.heavy_hitters(phi)
        assert len(heavy) <= 1.0 / phi

    @given(streams)
    @settings(max_examples=80)
    def test_frequencies_sum_to_stream_length(self, stream):
        counter = ExactCounter(universe_size=16)
        for item in stream:
            counter.insert(item)
        assert sum(counter.frequencies().values()) == len(stream)
        assert counter.frequencies() == dict(Counter(stream))


class TestReportPredicateConsistency:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=1, max_value=100),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=80)
    def test_truthful_report_satisfies_definition(self, truth):
        """A report that returns exactly the heavy items with exact counts always passes."""
        stream_length = sum(truth.values())
        epsilon, phi = 0.1, 0.3
        items = {
            item: float(count)
            for item, count in truth.items()
            if count > (phi - epsilon / 2) * stream_length
        }
        report = HeavyHittersReport(
            items=items, stream_length=stream_length, epsilon=epsilon, phi=phi
        )
        assert report.contains_all_heavy(truth)
        assert report.excludes_all_light(truth)
        assert report.max_frequency_error(truth) == 0.0

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=1, max_value=100),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=0.0, max_value=0.2),
    )
    @settings(max_examples=80)
    def test_definition_is_monotone_in_error(self, truth, noise_fraction):
        """If estimates within eps/2 of truth are reported above the midpoint threshold,
        the definition holds; this mirrors how the algorithms pick their thresholds."""
        stream_length = sum(truth.values())
        epsilon, phi = 0.4, 0.6
        noise = noise_fraction * epsilon / 2 * stream_length
        items = {}
        for item, count in truth.items():
            estimate = count + noise
            if estimate > (phi - epsilon / 2) * stream_length:
                items[item] = estimate
        report = HeavyHittersReport(
            items=items, stream_length=stream_length, epsilon=epsilon, phi=phi
        )
        assert report.contains_all_heavy(truth)
        assert report.excludes_all_light(truth)
