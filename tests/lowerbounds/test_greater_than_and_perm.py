"""Tests for the Greater-Than (Theorem 14) and ε-Perm/Borda (Theorem 12) reductions."""

import pytest

from repro.core.borda import ListBorda
from repro.core.maximum import EpsilonMaximum
from repro.lowerbounds.greater_than import GreaterThanInstance, GreaterThanReduction
from repro.lowerbounds.perm import BordaPermReduction, PermInstance
from repro.primitives.rng import RandomSource
from repro.voting.elections import Election


class TestGreaterThanInstance:
    def test_answer(self):
        assert GreaterThanInstance(x=5, y=3).answer is True
        assert GreaterThanInstance(x=2, y=7).answer is False

    def test_equal_exponents_rejected(self):
        with pytest.raises(ValueError):
            GreaterThanInstance(x=3, y=3)

    def test_random_instance(self):
        instance = GreaterThanInstance.random(10, rng=RandomSource(1))
        assert instance.x != instance.y
        assert 0 <= instance.x <= 10


class TestGreaterThanReduction:
    def test_epsilon_constraint(self):
        with pytest.raises(ValueError):
            GreaterThanReduction(epsilon=0.3)

    def test_stream_lengths_are_exponential(self):
        reduction = GreaterThanReduction(epsilon=0.2)
        instance = GreaterThanInstance(x=6, y=3)
        assert len(reduction.alice_stream(instance)) == 64
        assert len(reduction.bob_stream(instance)) == 8

    def test_reduction_decodes_with_streaming_maximum(self):
        """Any eps-Maximum algorithm over {0, 1} decides Greater-Than."""
        reduction = GreaterThanReduction(epsilon=0.2)
        correct = 0
        cases = [
            GreaterThanInstance(x=8, y=4),
            GreaterThanInstance(x=4, y=9),
            GreaterThanInstance(x=11, y=6),
            GreaterThanInstance(x=3, y=10),
        ]
        for index, instance in enumerate(cases):

            def factory(universe_size, stream_length):
                return EpsilonMaximum(
                    epsilon=0.2, universe_size=universe_size,
                    stream_length=stream_length, rng=RandomSource(500 + index),
                )

            run = reduction.run(instance, factory)
            correct += run.correct
            # The message is the algorithm state; it must be at least a few bits.
            assert run.message_bits >= 1
        assert correct == len(cases)


class TestPermInstance:
    def test_block_structure(self):
        instance = PermInstance(permutation=(3, 1, 0, 2), num_blocks=2, query_item=0)
        assert instance.block_size == 2
        assert instance.block_of(3) == 0
        assert instance.block_of(0) == 1
        assert instance.answer == 1

    def test_random_instance(self):
        instance = PermInstance.random(8, 4, rng=RandomSource(2))
        assert sorted(instance.permutation) == list(range(8))
        assert 0 <= instance.answer < 4

    def test_block_count_must_divide(self):
        with pytest.raises(ValueError):
            PermInstance.random(7, 3)

    def test_communication_lower_bound(self):
        instance = PermInstance.random(8, 4, rng=RandomSource(3))
        assert instance.communication_lower_bound_bits() == pytest.approx(16.0)


class TestBordaPermReduction:
    def test_alice_vote_is_valid_ranking(self):
        instance = PermInstance.random(8, 4, rng=RandomSource(4))
        reduction = BordaPermReduction(instance)
        vote = reduction.alice_vote()
        assert vote.num_candidates == 3 * 8
        assert sorted(vote.order) == list(range(24))

    def test_bob_votes_are_valid(self):
        instance = PermInstance.random(6, 3, rng=RandomSource(5))
        reduction = BordaPermReduction(instance, bob_vote_pairs=2)
        votes = reduction.bob_votes()
        assert len(votes) == 4
        for vote in votes:
            assert vote.top() == instance.query_item
            assert sorted(vote.order) == list(range(18))

    def test_exact_borda_scores_decode_the_block(self):
        """With exact Borda scores, the query item's score pins down its block."""
        for seed in range(4):
            instance = PermInstance.random(8, 4, rng=RandomSource(10 + seed))
            reduction = BordaPermReduction(instance)
            election = Election(
                num_candidates=reduction.num_candidates,
                votes=[reduction.alice_vote()] + reduction.bob_votes(),
            )
            scores = election.borda_scores()
            decoded = reduction.decode_block(scores[instance.query_item])
            assert decoded == instance.answer, seed

    def test_expected_score_ranges_are_disjoint_across_blocks(self):
        instance = PermInstance.random(12, 4, rng=RandomSource(20))
        reduction = BordaPermReduction(instance)
        ranges = [reduction.expected_score_for_block(b) for b in range(4)]
        for (low_a, high_a), (low_b, high_b) in zip(ranges, ranges[1:]):
            assert high_b < low_a  # later blocks have strictly lower scores

    def test_reduction_with_streaming_borda(self):
        """ListBorda (with small enough epsilon) carries enough information to decode."""
        instance = PermInstance.random(8, 4, rng=RandomSource(30))
        reduction = BordaPermReduction(instance)

        def factory(num_candidates, stream_length):
            return ListBorda(
                epsilon=0.02, num_candidates=num_candidates,
                stream_length=stream_length, rng=RandomSource(31),
            )

        run = reduction.run(factory, repetitions=40)
        assert run.correct
        assert run.message_bits > 0
