"""Tests for the Indexing reductions (Theorems 9, 10, 11)."""

import pytest

from repro.baselines.exact import ExactCounter
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.maximum import EpsilonMaximum
from repro.lowerbounds.indexing import (
    HeavyHittersIndexingReduction,
    IndexingInstance,
    MaximumIndexingReduction,
    MinimumIndexingReduction,
)
from repro.primitives.rng import RandomSource


class TestIndexingInstance:
    def test_random_instance_shape(self):
        instance = IndexingInstance.random(4, 10, rng=RandomSource(1))
        assert instance.length == 10
        assert all(0 <= value < 4 for value in instance.values)
        assert 0 <= instance.query_index < 10

    def test_answer(self):
        instance = IndexingInstance(alphabet_size=3, values=(2, 0, 1), query_index=2)
        assert instance.answer == 1

    def test_communication_lower_bound(self):
        instance = IndexingInstance(alphabet_size=4, values=(0,) * 8, query_index=0)
        assert instance.communication_lower_bound_bits() == pytest.approx(16.0)


class TestHeavyHittersReduction:
    def setup_method(self):
        self.reduction = HeavyHittersIndexingReduction(epsilon=0.1, phi=0.25, stream_length=4000)

    def test_construction_constraints(self):
        with pytest.raises(ValueError):
            HeavyHittersIndexingReduction(epsilon=0.2, phi=0.3, stream_length=100)

    def test_pair_encoding_roundtrip(self):
        for row in range(self.reduction.num_rows):
            for column in range(self.reduction.num_columns):
                item = self.reduction.encode_pair(row, column)
                assert self.reduction.decode_pair(item) == (row, column)
                assert 0 <= item < self.reduction.universe_size

    def test_planted_item_is_phi_heavy(self):
        """The gadget really makes (x_i, i) the only phi-heavy item."""
        instance = self.reduction.random_instance(rng=RandomSource(2))
        alice = self.reduction.alice_stream(instance)
        bob = self.reduction.bob_stream(instance)
        stream = alice + bob
        target = self.reduction.encode_pair(instance.answer, instance.query_index)
        count = stream.count(target)
        assert count > 0.25 * len(stream)
        # Every other item stays strictly below the target's frequency.
        from collections import Counter

        counts = Counter(stream)
        for item, c in counts.items():
            if item != target:
                assert c < count

    def test_reduction_decodes_with_exact_oracle(self):
        """With an exact heavy-hitters oracle the decoding is always right."""
        for seed in range(5):
            instance = self.reduction.random_instance(rng=RandomSource(seed))

            def factory(universe_size, stream_length):
                counter = ExactCounter(universe_size)
                original_report = counter.report
                counter.report = lambda: original_report(epsilon=0.1, phi=0.24)
                return counter

            run = self.reduction.run(instance, factory)
            assert run.correct, seed

    def test_reduction_decodes_with_streaming_algorithm(self):
        """The real thing: Algorithm 1 as the message carrier decodes the index."""
        correct = 0
        trials = 5
        for seed in range(trials):
            instance = self.reduction.random_instance(rng=RandomSource(100 + seed))

            def factory(universe_size, stream_length):
                return SimpleListHeavyHitters(
                    epsilon=0.1, phi=0.25, universe_size=universe_size,
                    stream_length=stream_length, rng=RandomSource(200 + seed),
                )

            run = self.reduction.run(instance, factory)
            correct += run.correct
            assert run.message_bits > 0
        assert correct >= trials - 1


class TestMaximumReduction:
    def test_reduction_with_exact_oracle(self):
        reduction = MaximumIndexingReduction(epsilon=0.2, stream_length=2000)
        for seed in range(5):
            instance = reduction.random_instance(rng=RandomSource(seed))

            def factory(universe_size, stream_length):
                counter = ExactCounter(universe_size)

                class _MaxReport:
                    def __init__(self, counter):
                        self.counter = counter

                    def insert(self, item):
                        self.counter.insert(item)

                    def space_bits(self):
                        return self.counter.space_bits()

                    def report(self):
                        from repro.core.results import MaximumResult

                        item, count = self.counter.most_common(1)[0]
                        return MaximumResult(
                            item=item, estimated_frequency=float(count),
                            stream_length=self.counter.items_processed, epsilon=0.2,
                        )

                return _MaxReport(counter)

            run = reduction.run(instance, factory)
            assert run.correct

    def test_reduction_with_streaming_maximum(self):
        reduction = MaximumIndexingReduction(epsilon=0.25, stream_length=4000)
        correct = 0
        trials = 4
        for seed in range(trials):
            instance = reduction.random_instance(rng=RandomSource(300 + seed))

            def factory(universe_size, stream_length):
                return EpsilonMaximum(
                    epsilon=0.05, universe_size=universe_size,
                    stream_length=stream_length, rng=RandomSource(400 + seed),
                )

            run = reduction.run(instance, factory)
            correct += run.correct
        assert correct >= trials - 1


class TestMinimumReduction:
    def test_stream_construction(self):
        reduction = MinimumIndexingReduction(epsilon=0.5)
        instance = IndexingInstance(alphabet_size=2, values=(1, 0, 1, 0, 1, 0, 1, 0, 1, 0),
                                    query_index=1)
        alice = reduction.alice_stream(instance)
        bob = reduction.bob_stream(instance)
        # Alice inserts 2 copies per set bit; Bob 2 copies per non-query position + 1 reserve.
        assert len(alice) == 2 * sum(instance.values)
        assert len(bob) == 2 * (reduction.length - 1) + 1

    def test_reduction_with_exact_minimum(self):
        reduction = MinimumIndexingReduction(epsilon=0.3)
        for seed in range(6):
            instance = reduction.random_instance(rng=RandomSource(seed))

            def factory(universe_size, stream_length):
                counter = ExactCounter(universe_size)

                class _MinReport:
                    def __init__(self, counter):
                        self.counter = counter

                    def insert(self, item):
                        self.counter.insert(item)

                    def space_bits(self):
                        return self.counter.space_bits()

                    def report(self):
                        from repro.core.results import MinimumResult

                        counts = self.counter.frequencies()
                        candidates = {
                            item: counts.get(item, 0) for item in range(universe_size)
                        }
                        item = min(candidates, key=lambda key: (candidates[key], key))
                        return MinimumResult(
                            item=item, estimated_frequency=float(candidates[item]),
                            stream_length=self.counter.items_processed, epsilon=0.3,
                        )

                return _MinReport(counter)

            run = reduction.run(instance, factory)
            assert run.correct, seed

    def test_information_lower_bound_scales_with_inverse_epsilon(self):
        fine = MinimumIndexingReduction(epsilon=0.01)
        coarse = MinimumIndexingReduction(epsilon=0.1)
        assert fine.length > coarse.length
