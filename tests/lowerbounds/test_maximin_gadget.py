"""Tests for the Theorem 13 gadget (Indexing -> eps-Maximin via Hamming distances)."""

import pytest

from repro.core.maximin import ListMaximin
from repro.lowerbounds.maximin_gadget import MaximinGadgetInstance, MaximinIndexingReduction
from repro.primitives.rng import RandomSource
from repro.voting.elections import Election
from repro.voting.scores import maximin_scores


class TestGadgetInstance:
    def test_random_instance_shape(self):
        instance = MaximinGadgetInstance.random(6, 16, rng=RandomSource(1))
        assert instance.num_candidates == 6
        assert instance.num_columns == 16
        assert instance.hidden_bit in (0, 1)
        assert all(value in (0, 1) for row in instance.matrix for value in row)

    def test_hamming_distance_encodes_the_bit(self):
        for seed in range(8):
            instance = MaximinGadgetInstance.random(4, 36, rng=RandomSource(seed))
            midpoint = instance.num_columns / 2
            distance = instance.hamming_distance()
            if instance.hidden_bit == 1:
                assert distance > midpoint
            else:
                assert distance < midpoint

    def test_information_lower_bound(self):
        instance = MaximinGadgetInstance.random(5, 25, rng=RandomSource(2))
        assert instance.information_lower_bound_bits() == 125.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MaximinGadgetInstance.random(1, 16)
        with pytest.raises(ValueError):
            MaximinGadgetInstance.random(4, 2)


class TestReductionConstruction:
    def test_votes_are_valid_rankings(self):
        instance = MaximinGadgetInstance.random(4, 16, rng=RandomSource(3))
        reduction = MaximinIndexingReduction(instance)
        for vote in reduction.alice_votes() + reduction.bob_votes():
            assert sorted(vote.order) == list(range(8))

    def test_alice_votes_respect_matrix(self):
        instance = MaximinGadgetInstance.random(4, 16, rng=RandomSource(4))
        reduction = MaximinIndexingReduction(instance)
        votes = reduction.alice_votes()
        for column, vote in enumerate(votes):
            for row in range(instance.num_candidates):
                complement = instance.num_candidates + row
                if instance.matrix[row][column] == 1:
                    assert vote.prefers(row, complement)
                else:
                    assert vote.prefers(complement, row)

    def test_exact_maximin_score_matches_identity(self):
        """The algebraic core of Theorem 13: j's maximin score (after Bob's votes) equals
        the number of Alice columns with P_j = 1, P_i = 0."""
        for seed in range(5):
            instance = MaximinGadgetInstance.random(4, 20, rng=RandomSource(10 + seed))
            reduction = MaximinIndexingReduction(instance)
            election = Election(
                num_candidates=reduction.num_election_candidates,
                votes=reduction.alice_votes() + reduction.bob_votes(),
            )
            scores = election.maximin_scores()
            assert scores[instance.row_j] == reduction.expected_j_beats_i_count()

    def test_exact_scores_decode_the_bit(self):
        for seed in range(6):
            instance = MaximinGadgetInstance.random(4, 36, rng=RandomSource(20 + seed))
            reduction = MaximinIndexingReduction(instance)
            scores = maximin_scores(reduction.alice_votes() + reduction.bob_votes())
            decoded = reduction.decode_bit(float(scores[instance.row_j]))
            assert decoded == instance.hidden_bit, seed


class TestReductionWithStreamingAlgorithm:
    def test_streaming_maximin_decodes(self):
        """ListMaximin with eps below the gap/columns ratio carries enough information."""
        correct = 0
        trials = 4
        for seed in range(trials):
            instance = MaximinGadgetInstance.random(4, 64, rng=RandomSource(30 + seed))
            reduction = MaximinIndexingReduction(instance)

            def factory(num_candidates, stream_length, s=seed):
                return ListMaximin(
                    epsilon=0.02, num_candidates=num_candidates,
                    stream_length=stream_length, rng=RandomSource(40 + s),
                )

            run = reduction.run(factory)
            correct += run.correct
            assert run.message_bits > 0
            assert run.metadata["hamming_distance"] == instance.hamming_distance()
        assert correct >= trials - 1
