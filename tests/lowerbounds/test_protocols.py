"""Tests for the one-way protocol simulation framework (repro.lowerbounds.protocols)."""

import pytest

from repro.baselines.exact import ExactCounter
from repro.lowerbounds.protocols import OneWayProtocolRun, StreamingChannel


class TestStreamingChannel:
    def test_phases_feed_the_algorithm_in_order(self):
        counter = ExactCounter(universe_size=4)
        channel = StreamingChannel(counter)
        channel.alice_phase([0, 0, 1])
        channel.bob_phase([2, 2, 2, 3])
        assert counter.frequencies() == {0: 2, 1: 1, 2: 3, 3: 1}
        assert channel.alice_items == 3
        assert channel.bob_items == 4

    def test_message_bits_snapshot_taken_at_handoff(self):
        """The message size is the state *at the hand-off*, not at the end."""
        counter = ExactCounter(universe_size=100)
        channel = StreamingChannel(counter)
        channel.alice_phase([1])
        at_handoff = channel.message_bits()
        channel.bob_phase(list(range(50)))
        assert channel.message_bits() == at_handoff
        assert counter.space_bits() > at_handoff

    def test_bob_before_alice_rejected(self):
        channel = StreamingChannel(ExactCounter(universe_size=4))
        with pytest.raises(RuntimeError):
            channel.bob_phase([1])

    def test_message_bits_before_handoff_rejected(self):
        channel = StreamingChannel(ExactCounter(universe_size=4))
        with pytest.raises(RuntimeError):
            channel.message_bits()

    def test_report_delegates_to_algorithm(self):
        counter = ExactCounter(universe_size=4)
        channel = StreamingChannel(counter)
        channel.alice_phase([1, 1, 1, 0])
        channel.bob_phase([])
        report = channel.report(phi=0.5) if False else counter.report(phi=0.5)
        assert list(report.items) == [1]


class TestOneWayProtocolRun:
    def test_correct_flag(self):
        run = OneWayProtocolRun(
            decoded=3, expected=3, message_bits=10, information_lower_bound_bits=2.0,
        )
        assert run.correct
        wrong = OneWayProtocolRun(
            decoded=2, expected=3, message_bits=10, information_lower_bound_bits=2.0,
        )
        assert not wrong.correct

    def test_metadata_default(self):
        run = OneWayProtocolRun(
            decoded=True, expected=True, message_bits=1, information_lower_bound_bits=1.0,
        )
        assert run.metadata == {}
