"""Service round-trip equivalence: served == offline, and checkpoint → resume == replay.

These are the acceptance tests of the service layer's headline guarantees (see
repro/service/__init__.py): with identical seeds and chunk size, the report served
over a real socket equals the offline ``run_chunks`` replay bit for bit, and a
checkpoint → restart → resume run equals the offline replay that round-trips its
state through the same Checkpointer at the same chunk boundary.
"""

import os
import threading

import pytest

from repro.baselines.misra_gries import MisraGries
from repro.cli import main
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.analysis.harness import run_service_comparison
from repro.pipeline import PipelinedExecutor
from repro.primitives.batching import iter_chunks
from repro.primitives.rng import RandomSource
from repro.service import Checkpointer, ServiceClient
from repro.sharding import ShardedExecutor
from repro.streams.generators import zipfian_stream
from repro.streams.io import save_stream

UNIVERSE = 2_000
LENGTH = 40_000
CHUNK = 2_048
ROUTER_SEED = 77


def sketch_factory(index: int) -> SimpleListHeavyHitters:
    return SimpleListHeavyHitters(
        epsilon=0.02, phi=0.05, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(900 + index),
    )


def build_executor(shards: int) -> ShardedExecutor:
    return ShardedExecutor(
        factory=sketch_factory, num_shards=shards, universe_size=UNIVERSE,
        rng=RandomSource(ROUTER_SEED),
    )


@pytest.fixture(scope="module")
def stream():
    return zipfian_stream(LENGTH, UNIVERSE, skew=1.2, rng=RandomSource(6))


@pytest.mark.parametrize("shards", [1, 3])
def test_served_equals_offline_bit_for_bit(stream, shards, service_server):
    offline = build_executor(shards).run_chunks(iter_chunks(stream.array, CHUNK))
    server = service_server(
        PipelinedExecutor(executor=build_executor(shards), chunk_size=CHUNK),
        universe_size=UNIVERSE,
    )
    with ServiceClient(server.endpoint) as client:
        # push in batches deliberately misaligned with the chunk size
        for start in range(0, LENGTH, 1_111):
            client.push(stream.array[start:start + 1_111])
        client.finish()
        served = client.query()
    assert served.items_processed == offline.items_processed == LENGTH
    assert dict(served.report.items) == dict(offline.report.items)


def test_served_equals_offline_misra_gries(stream, service_server):
    offline = MisraGries(epsilon=0.02, universe_size=UNIVERSE, stream_length_hint=LENGTH)
    offline.consume(stream, batch_size=CHUNK)
    offline_report = offline.report(phi=0.05)
    server = service_server(
        PipelinedExecutor(
            sketch=MisraGries(epsilon=0.02, universe_size=UNIVERSE, stream_length_hint=LENGTH),
            chunk_size=CHUNK,
        ),
        universe_size=UNIVERSE, report_kwargs={"phi": 0.05},
    )
    with ServiceClient(server.endpoint) as client:
        client.push(stream.array)
        client.finish()
        served = client.query()
    assert dict(served.report.items) == dict(offline_report.items)


@pytest.mark.parametrize("shards", [1, 3])
def test_checkpoint_restart_resume_bit_for_bit(stream, shards, tmp_path, service_server):
    """Resume == offline replay that round-trips state at the same boundary."""
    half = (LENGTH // (2 * CHUNK)) * CHUNK
    ckpt = os.path.join(tmp_path, "served.ckpt")

    server = service_server(
        PipelinedExecutor(executor=build_executor(shards), chunk_size=CHUNK),
        universe_size=UNIVERSE,
    )
    with ServiceClient(server.endpoint) as client:
        client.push(stream.array[:half])
        client.flush()
        info = client.checkpoint(ckpt)
        assert info["items_processed"] == half
        client.shutdown()

    restored, manifest = Checkpointer().restore_pipeline(ckpt)
    assert manifest["items_processed"] == half
    server = service_server(restored, universe_size=UNIVERSE)
    with ServiceClient(server.endpoint) as client:
        client.push(stream.array[half:])
        client.finish()
        resumed = client.query()
    assert resumed.items_processed == LENGTH

    # the offline reference: same seeds, same boundary, same Checkpointer round-trip
    replay = PipelinedExecutor(executor=build_executor(shards), chunk_size=CHUNK)
    for chunk in iter_chunks(stream.array[:half], CHUNK):
        replay.ingest_chunk(chunk)
    offline_ckpt = os.path.join(tmp_path, "offline.ckpt")
    Checkpointer().save(offline_ckpt, replay.sink_state())
    replay_resumed, _ = Checkpointer().restore_pipeline(offline_ckpt, chunk_size=CHUNK)
    for chunk in iter_chunks(stream.array[half:], CHUNK):
        replay_resumed.ingest_chunk(chunk)
    reference = replay_resumed.finalize()
    assert dict(resumed.report.items) == dict(reference.report.items)


def test_two_restores_of_one_checkpoint_are_identical(stream, tmp_path):
    half = 8 * CHUNK
    ckpt = os.path.join(tmp_path, "fork.ckpt")
    original = PipelinedExecutor(executor=build_executor(2), chunk_size=CHUNK)
    for chunk in iter_chunks(stream.array[:half], CHUNK):
        original.ingest_chunk(chunk)
    Checkpointer().save(ckpt, original.sink_state())
    reports = []
    for _ in range(2):
        resumed, _ = Checkpointer().restore_pipeline(ckpt)
        for chunk in iter_chunks(stream.array[half:], CHUNK):
            resumed.ingest_chunk(chunk)
        reports.append(dict(resumed.finalize().report.items))
    assert reports[0] == reports[1]


def test_deterministic_sketch_resumes_identical_to_uninterrupted(stream, tmp_path):
    """Misra–Gries holds the stronger property: resume == never-interrupted run."""
    uninterrupted = MisraGries(epsilon=0.02, universe_size=UNIVERSE)
    uninterrupted.consume(stream, batch_size=CHUNK)
    expected = uninterrupted.report(phi=0.05)

    half = 9 * CHUNK
    ckpt = os.path.join(tmp_path, "mg.ckpt")
    first = PipelinedExecutor(sketch=MisraGries(epsilon=0.02, universe_size=UNIVERSE),
                              chunk_size=CHUNK)
    for chunk in iter_chunks(stream.array[:half], CHUNK):
        first.ingest_chunk(chunk)
    Checkpointer().save(ckpt, first.sink_state())
    resumed, _ = Checkpointer().restore_pipeline(ckpt)
    for chunk in iter_chunks(stream.array[half:], CHUNK):
        resumed.ingest_chunk(chunk)
    result = resumed.finalize(report_kwargs={"phi": 0.05})
    assert dict(result.report.items) == dict(expected.items)


def test_run_service_comparison_rows(stream, tmp_path):
    path = os.path.join(tmp_path, "trace.txt")
    save_stream(stream, path)
    rows = run_service_comparison(
        sketch_factory, path, 0.05, shards=2, chunk_size=CHUNK,
        push_batch=1_500, rng=RandomSource(13), push_window=8, query_repeats=4,
    )
    assert [row.label for row in rows] == ["offline", "served", "pipelined", "resumed"]
    served, pipelined, resumed = rows[1], rows[2], rows[3]
    assert served.measurements["identical_report"] == 1.0
    assert served.measurements["report_symmetric_difference"] == 0.0
    assert served.measurements["pushed_items_per_second"] > 0
    # the credit-windowed push must be as invisible in the report as the
    # round-trip push: same seeds, same re-chunker, bit-for-bit equal
    assert pipelined.measurements["identical_report"] == 1.0
    assert pipelined.measurements["report_symmetric_difference"] == 0.0
    assert pipelined.measurements["pushed_items_per_second"] > 0
    # the repeated mid-ingest queries at a fixed prefix must hit the snapshot
    # cache: one miss (the first query builds the merged copy), hits afterwards
    assert pipelined.measurements["snapshot_cache_misses"] == 1.0
    assert pipelined.measurements["snapshot_cache_hits"] >= 3.0
    assert len(pipelined.measurements["query_latency_series"]) == 4
    assert pipelined.measurements["query_cached_seconds_median"] > 0
    assert resumed.measurements["identical_report"] == 1.0
    assert resumed.measurements["checkpoint_items"] % CHUNK == 0
    for row in rows:
        assert row.measurements["recall"] == 1.0


def test_push_stream_served_equals_offline(stream, service_server):
    """push_stream with a deep window reproduces the offline replay bit for bit."""
    offline = build_executor(2).run_chunks(iter_chunks(stream.array, CHUNK))
    server = service_server(
        PipelinedExecutor(executor=build_executor(2), chunk_size=CHUNK),
        universe_size=UNIVERSE, push_queue_depth=16,
    )
    with ServiceClient(server.endpoint) as client:
        batches = (stream.array[start:start + 1_111]
                   for start in range(0, LENGTH, 1_111))
        received = client.push_stream(batches, window=64)  # capped to 16 credits
        assert received == LENGTH
        client.finish()
        served = client.query()
    assert served.items_processed == offline.items_processed == LENGTH
    assert dict(served.report.items) == dict(offline.report.items)


class TestServiceCLI:
    """The serve / push / query / checkpoint commands, driven in-process."""

    def _serve_in_thread(self, tmp_path, extra_args=(), name="ready.txt"):
        ready = os.path.join(tmp_path, name)
        args = ["serve", "--port", "0", "--ready-file", ready, *extra_args]
        thread = threading.Thread(target=main, args=(args,), daemon=True)
        thread.start()
        for _ in range(200):
            if os.path.exists(ready) and os.path.getsize(ready):
                break
            threading.Event().wait(0.05)
        else:
            raise AssertionError("server never wrote its ready file")
        with open(ready, "r", encoding="utf-8") as handle:
            return thread, handle.read().strip()

    def test_cli_round_trip_matches_offline(self, tmp_path, capsys, stream):
        trace = os.path.join(tmp_path, "trace.txt")
        save_stream(stream, trace)
        assert main(["heavy-hitters", trace, "--epsilon", "0.02", "--phi", "0.05",
                     "--seed", "5", "--batch-size", str(CHUNK)]) == 0
        offline_lines = [line for line in capsys.readouterr().out.splitlines()
                         if line.startswith(("item\t", "item ", "reported:"))]
        thread, endpoint = self._serve_in_thread(
            tmp_path,
            extra_args=["--universe", str(UNIVERSE), "--stream-length", str(LENGTH),
                        "--epsilon", "0.02", "--phi", "0.05", "--seed", "5",
                        "--chunk-size", str(CHUNK)],
        )
        assert main(["push", trace, "--connect", endpoint,
                     "--batch-size", "3000", "--finish"]) == 0
        capsys.readouterr()
        assert main(["query", "--connect", endpoint, "--shutdown"]) == 0
        served_out = capsys.readouterr().out
        served_lines = [line for line in served_out.splitlines()
                        if line.startswith(("item\t", "item ", "reported:"))]
        assert "final: true" in served_out
        assert served_lines == offline_lines
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_cli_checkpoint_restore_flow(self, tmp_path, capsys, stream):
        trace = os.path.join(tmp_path, "trace.txt")
        save_stream(stream, trace)
        ckpt = os.path.join(tmp_path, "state.ckpt")
        half = (LENGTH // (2 * CHUNK)) * CHUNK
        thread, endpoint = self._serve_in_thread(
            tmp_path,
            extra_args=["--universe", str(UNIVERSE), "--stream-length", str(LENGTH),
                        "--seed", "5", "--chunk-size", str(CHUNK)],
        )
        assert main(["push", trace, "--connect", endpoint, "--limit", str(half)]) == 0
        assert main(["checkpoint", ckpt, "--connect", endpoint, "--shutdown"]) == 0
        thread.join(timeout=10.0)
        out = capsys.readouterr().out
        assert f"items_processed: {half}" in out
        thread, endpoint = self._serve_in_thread(
            tmp_path, extra_args=["--restore", ckpt], name="ready2.txt"
        )
        assert main(["push", trace, "--connect", endpoint, "--skip", str(half),
                     "--finish"]) == 0
        capsys.readouterr()
        assert main(["query", "--connect", endpoint, "--shutdown"]) == 0
        out = capsys.readouterr().out
        assert f"items_processed: {LENGTH}" in out
        assert "final: true" in out
        thread.join(timeout=10.0)

    def test_serve_requires_sizing_flags(self, capsys):
        with pytest.raises(SystemExit, match="stream-length"):
            main(["serve", "--port", "0"])

    def test_push_rejects_negative_slice_flags(self, tmp_path):
        trace = os.path.join(tmp_path, "t.txt")
        with pytest.raises(SystemExit):
            main(["push", trace, "--connect", "127.0.0.1:1", "--skip", "-1"])
        with pytest.raises(SystemExit):
            main(["push", trace, "--connect", "127.0.0.1:1", "--limit", "-2"])

    def test_push_rejects_non_positive_window(self, tmp_path):
        trace = os.path.join(tmp_path, "t.txt")
        with pytest.raises(SystemExit, match="window"):
            main(["push", trace, "--connect", "127.0.0.1:1", "--window", "0"])

    def test_cli_windowed_push_matches_offline(self, tmp_path, capsys, stream):
        """push --window W must diff clean against the offline CLI replay."""
        trace = os.path.join(tmp_path, "trace.txt")
        save_stream(stream, trace)
        assert main(["heavy-hitters", trace, "--epsilon", "0.02", "--phi", "0.05",
                     "--seed", "5", "--batch-size", str(CHUNK)]) == 0
        offline_lines = [line for line in capsys.readouterr().out.splitlines()
                         if line.startswith(("item\t", "item ", "reported:"))]
        thread, endpoint = self._serve_in_thread(
            tmp_path,
            extra_args=["--universe", str(UNIVERSE), "--stream-length", str(LENGTH),
                        "--epsilon", "0.02", "--phi", "0.05", "--seed", "5",
                        "--chunk-size", str(CHUNK)],
            name="ready_window.txt",
        )
        assert main(["push", trace, "--connect", endpoint,
                     "--batch-size", "3000", "--window", "8", "--finish"]) == 0
        capsys.readouterr()
        assert main(["query", "--connect", endpoint, "--shutdown"]) == 0
        served_lines = [line for line in capsys.readouterr().out.splitlines()
                        if line.startswith(("item\t", "item ", "reported:"))]
        assert served_lines == offline_lines
        thread.join(timeout=10.0)

    def test_explicit_zero_sizes_rejected_not_defaulted(self, tmp_path):
        """An explicit 0 must error, never silently become the default."""
        trace = os.path.join(tmp_path, "t.txt")
        with pytest.raises(SystemExit, match="chunk-size"):
            main(["serve", "--universe", "10", "--stream-length", "10",
                  "--chunk-size", "0"])
        with pytest.raises(SystemExit, match="queue-depth"):
            main(["serve", "--restore", "nope.ckpt", "--queue-depth", "0"])
        with pytest.raises(SystemExit, match="batch-size"):
            main(["push", trace, "--connect", "127.0.0.1:1", "--batch-size", "0"])
        with pytest.raises(SystemExit, match="batch-size"):
            main(["heavy-hitters", trace, "--batch-size", "0"])
