"""Integration tests: the paper's algorithms against baselines on shared workloads.

These tests exercise the whole stack (stream generators -> algorithms -> reports ->
metrics) the same way the benchmark harness does, and assert the qualitative claims of
the paper: everyone meets the accuracy guarantee, the paper's algorithms track the
Table 1 space shape, and the measured space scales in the right parameter.
"""

import pytest

from repro.analysis.harness import run_heavy_hitter_comparison
from repro.analysis.metrics import evaluate_heavy_hitters
from repro.analysis.theory import scaling_exponent
from repro.baselines.count_min import CountMinSketch
from repro.baselines.misra_gries import MisraGries
from repro.baselines.space_saving import SpaceSaving
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream, zipfian_stream
from repro.streams.truth import exact_frequencies

EPSILON = 0.02
PHI = 0.05
UNIVERSE = 4000


@pytest.fixture(scope="module")
def planted_stream():
    return planted_heavy_hitters_stream(
        30000,
        UNIVERSE,
        {1: 0.18, 2: 0.11, 3: 0.07, 4: 0.052, 5: 0.02},
        rng=RandomSource(42),
    )


@pytest.fixture(scope="module")
def zipf_stream():
    return zipfian_stream(30000, UNIVERSE, skew=1.3, rng=RandomSource(43))


def all_algorithms(stream_length):
    return {
        "simple (Thm 1)": lambda: SimpleListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
            stream_length=stream_length, rng=RandomSource(1),
        ),
        "optimal (Thm 2)": lambda: OptimalListHeavyHitters(
            epsilon=EPSILON, phi=PHI, universe_size=UNIVERSE,
            stream_length=stream_length, rng=RandomSource(2),
        ),
        "misra-gries": lambda: MisraGries(epsilon=EPSILON, universe_size=UNIVERSE),
        "space-saving": lambda: SpaceSaving(epsilon=EPSILON, universe_size=UNIVERSE),
        "count-min": lambda: CountMinSketch(
            epsilon=EPSILON, delta=0.05, universe_size=UNIVERSE, rng=RandomSource(3),
        ),
    }


class TestAccuracyAcrossAlgorithms:
    def test_everyone_finds_the_planted_heavy_hitters(self, planted_stream):
        truth = exact_frequencies(planted_stream)
        for label, factory in all_algorithms(len(planted_stream)).items():
            algorithm = factory()
            algorithm.consume(planted_stream)
            report = (
                algorithm.report(phi=PHI)
                if label in ("misra-gries", "space-saving", "count-min")
                else algorithm.report()
            )
            accuracy = evaluate_heavy_hitters(report, truth)
            assert accuracy.recall == 1.0, label
            assert accuracy.precision == 1.0, label

    def test_paper_algorithms_meet_definition_on_zipf(self, zipf_stream):
        truth = exact_frequencies(zipf_stream)
        for label, factory in all_algorithms(len(zipf_stream)).items():
            if "Thm" not in label:
                continue
            algorithm = factory()
            algorithm.consume(zipf_stream)
            assert algorithm.report().satisfies_definition(truth), label

    def test_harness_comparison_rows(self, planted_stream):
        rows = run_heavy_hitter_comparison(
            all_algorithms(len(planted_stream)), planted_stream, phi=PHI
        )
        assert len(rows) == 5
        for row in rows:
            assert row.measurements["space_bits"] > 0
            assert row.measurements["recall"] >= 0.99


class TestSpaceShape:
    def test_simple_algorithm_space_is_sublinear_in_log_universe(self):
        """Sweeping n: Misra-Gries space grows by eps^-1 bits per doubling of n, the
        paper's algorithm by only ~phi^-1 bits per doubling (T2) — so the gap widens."""
        stream = planted_heavy_hitters_stream(
            8000, 1024, {1: 0.3, 2: 0.1}, rng=RandomSource(44)
        )
        gaps = []
        for log_n in (10, 20, 40):
            universe = 2 ** log_n
            ours = SimpleListHeavyHitters(
                epsilon=0.01, phi=0.1, universe_size=universe,
                stream_length=len(stream), rng=RandomSource(4),
            )
            theirs = MisraGries(epsilon=0.01, universe_size=universe,
                                stream_length_hint=len(stream))
            ours.consume(stream)
            theirs.consume(stream)
            gaps.append(theirs.space_bits() - ours.space_bits())
        assert gaps[0] < gaps[1] < gaps[2]

    def test_measured_space_scales_linearly_in_inverse_epsilon(self):
        stream = zipfian_stream(6000, 500, skew=1.3, rng=RandomSource(45))
        inverse_epsilons = [16, 32, 64, 128]
        measured = []
        for inverse_epsilon in inverse_epsilons:
            algo = SimpleListHeavyHitters(
                epsilon=1.0 / inverse_epsilon, phi=0.1, universe_size=500,
                stream_length=len(stream), rng=RandomSource(5),
            )
            algo.consume(stream)
            measured.append(algo.space_breakdown()["T1"])
        exponent = scaling_exponent(inverse_epsilons, measured)
        assert 0.7 <= exponent <= 1.3

    def test_update_time_roughly_constant_per_item(self, zipf_stream):
        """The O(1) update claim, loosely: per-item time does not blow up with eps."""
        import time

        times = []
        for epsilon in (0.05, 0.01):
            algo = SimpleListHeavyHitters(
                epsilon=epsilon, phi=0.1, universe_size=UNIVERSE,
                stream_length=len(zipf_stream), rng=RandomSource(6),
            )
            start = time.perf_counter()
            algo.consume(zipf_stream)
            times.append(time.perf_counter() - start)
        # A 5x finer epsilon should not cost 10x the time (sampling dominates).
        assert times[1] < 10 * times[0] + 0.5
