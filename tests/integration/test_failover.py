"""End-to-end failover tests: replicated serving, degraded answers, clean shutdown."""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.analysis.harness import run_replication_comparison
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.pipeline import PipelinedExecutor
from repro.primitives.rng import RandomSource
from repro.replication import FaultPlan, ReplicaGroup, ReplicaSupervisor
from repro.service import Checkpointer, RetryPolicy, ServiceClient
from repro.streams.generators import zipfian_stream
from repro.streams.io import save_stream
from repro.streams.truth import exact_frequencies

UNIVERSE = 1000
LENGTH = 30_000
CHUNK = 2000


def make_sketch(seed):
    return SimpleListHeavyHitters(
        epsilon=0.02, phi=0.1, universe_size=UNIVERSE, stream_length=LENGTH,
        rng=RandomSource(seed),
    )


def factory(index):
    return make_sketch(900 + index)


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("failover") / "trace.txt")
    stream = zipfian_stream(LENGTH, UNIVERSE, skew=1.2, rng=RandomSource(11))
    save_stream(stream, path)
    return path


class TestReplicationComparison:
    """The acceptance criteria of the replication harness, asserted end to end."""

    @pytest.fixture(scope="class")
    def rows(self, trace):
        return run_replication_comparison(
            factory, trace, phi=0.1, replicas=3, chunk_size=CHUNK,
            kill_replica=1, heal_after_chunks=2,
        )

    def test_three_legs_reported(self, rows):
        assert [row.label for row in rows] == [
            "single", "replicated(r=3)", "failover(r=3)",
        ]

    def test_full_quorum_report_matches_single_shape(self, rows):
        replicated = rows[1].measurements
        assert replicated["shape_ok"] == 1.0
        assert replicated["replica0_identical_to_single"] == 1.0
        assert replicated["satisfies_definition"] == 1.0
        assert replicated["quorum"] == 2.0

    def test_reseeded_replacement_equals_uninterrupted_reference(self, rows):
        failover = rows[2].measurements
        assert failover["identical_report"] == 1.0
        assert failover["heal_chunk"] > failover["kill_chunk"]
        assert failover["failover_seconds"] > 0.0

    def test_degraded_window_answers_satisfy_definition(self, rows):
        failover = rows[2].measurements
        assert failover["degraded_queries"] > 0
        assert failover["degraded_queries_valid"] == 1.0
        assert failover["satisfies_definition"] == 1.0

    def test_no_failover_leg_for_single_replica(self, trace):
        rows = run_replication_comparison(
            factory, trace, phi=0.1, replicas=1, chunk_size=CHUNK,
            kill_replica=None,
        )
        assert [row.label for row in rows] == ["single", "replicated(r=1)"]


class TestServedDegradedQueries:
    def test_replica_loss_mid_push_serves_degraded_then_heals(self, trace, service_server):
        replicas = [
            PipelinedExecutor(sketch=factory(index), chunk_size=CHUNK)
            for index in range(3)
        ]
        group = ReplicaGroup(
            replicas, chunk_size=CHUNK,
            supervisor=ReplicaSupervisor(heal_after_chunks=3),
            fault_plan=FaultPlan.kill_replica(1, after_chunk=4),
        )
        server = service_server(group, universe_size=UNIVERSE)
        truth_items = np.fromiter(
            (item for item in open(trace) if not item.startswith("#")),
            dtype=np.int64,
        )
        degraded_seen = []
        with ServiceClient(server.endpoint) as client:
            assert client.config()["replicas"] == 3
            for start in range(0, LENGTH, CHUNK):
                client.push(truth_items[start:start + CHUNK])
                client.flush()  # ingestion is async; pin the chunk boundary
                result = client.query()
                degraded_seen.append(result.degraded)
                if result.degraded:
                    # Still a valid Definition 1 answer from the survivors.
                    truth = exact_frequencies(truth_items[:start + CHUNK])
                    assert result.report.satisfies_definition(truth)
            stats = client.stats()
            events = [event["event"] for event in stats["events"]]
            assert events == ["replica-failed", "replica-healed"]
            assert stats["live_replicas"] == 3
            client.finish()
            final = client.query()
            assert final.final and not final.degraded
            assert final.report.satisfies_definition(
                exact_frequencies(truth_items)
            )
        assert any(degraded_seen), "the degraded window was never observed"
        assert not degraded_seen[-1], "the heal never cleared the degraded flag"

    def test_group_checkpoint_restore_round_trips_through_server(self, trace, tmp_path, service_server):
        group = ReplicaGroup(
            [PipelinedExecutor(sketch=factory(index), chunk_size=CHUNK)
             for index in range(3)],
            chunk_size=CHUNK,
        )
        server = service_server(group, universe_size=UNIVERSE)
        items = np.fromiter(
            (item for item in open(trace) if not item.startswith("#")),
            dtype=np.int64,
        )
        half = (LENGTH // 2) // CHUNK * CHUNK
        ckpt = str(tmp_path / "group.ckpt")
        with ServiceClient(server.endpoint) as client:
            client.push(items[:half])
            client.flush()
            reply = client.checkpoint(ckpt)
            assert reply["kind"] == "replicated"
        restored, manifest = Checkpointer().restore_pipeline(ckpt, chunk_size=CHUNK)
        assert isinstance(restored, ReplicaGroup)
        assert restored.items_processed == half
        assert manifest["config"]["replicas"] == 3
        resumed_server = service_server(restored, universe_size=UNIVERSE)
        with ServiceClient(resumed_server.endpoint) as client:
            client.push(items[half:])
            client.finish()
            result = client.query()
        # The resumed replicated run equals the uninterrupted offline group.
        baseline = ReplicaGroup(
            [PipelinedExecutor(sketch=factory(index), chunk_size=CHUNK)
             for index in range(3)],
            chunk_size=CHUNK,
        )
        for start in range(0, LENGTH, CHUNK):
            baseline.ingest_chunk(items[start:start + CHUNK])
        assert dict(result.report.items) == dict(baseline.finalize().report.items)


class TestSigtermShutdown:
    def test_sigterm_writes_final_checkpoint_and_exits(self, trace, tmp_path):
        ready = str(tmp_path / "ready.txt")
        ckpt = str(tmp_path / "final.ckpt")
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--universe", str(UNIVERSE), "--stream-length", str(LENGTH),
             "--epsilon", "0.02", "--phi", "0.1", "--seed", "900",
             "--chunk-size", str(CHUNK), "--replicas", "2",
             "--checkpoint-path", ckpt, "--ready-file", ready],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if os.path.exists(ready) and os.path.getsize(ready):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("server never wrote its ready file")
            with open(ready, "r", encoding="utf-8") as handle:
                endpoint = handle.read().strip()
            items = np.fromiter(
                (item for item in open(trace) if not item.startswith("#")),
                dtype=np.int64,
            )
            pushed = (LENGTH // 2) // CHUNK * CHUNK
            with ServiceClient(endpoint) as client:
                client.push(items[:pushed])
                client.flush()
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30.0)
            assert process.returncode == 0, output.decode()
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert os.path.exists(ckpt), "SIGTERM did not write the final checkpoint"
        state, manifest = Checkpointer().load(ckpt)
        assert state.kind == "replicated"
        assert state.items_processed == pushed
        assert manifest["config"]["replicas"] == 2
        # The listener really closed: the endpoint must refuse connections.
        with pytest.raises((ConnectionError, OSError)):
            ServiceClient(endpoint, retry=RetryPolicy(attempts=1)).connect()
