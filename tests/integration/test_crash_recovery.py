"""End-to-end crash recovery: kill -9 a served ingest, restart it, same answer.

These tests exercise the real process boundary: a ``repro serve`` subprocess
with ``--wal-dir``, real socket pushes, an un-catchable SIGKILL (or the
in-process ``crash:after_chunk`` torn-record fault), and a restart on the same
journal directory.  The acceptance criteria are the durability contract's two
halves (docs/DURABILITY.md): no acked item is lost, and the recovered answer
is bit-for-bit an uninterrupted replay of the same prefix.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.analysis.harness import (
    _spawn_served_process,
    run_crash_comparison,
)
from repro.primitives.rng import RandomSource
from repro.service import ServiceClient
from repro.streams.generators import zipfian_stream
from repro.streams.io import save_stream

UNIVERSE = 800
LENGTH = 24_000
CHUNK = 2_048
BATCH = 1_024


@pytest.fixture(scope="module")
def trace(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("crash") / "trace.txt")
    save_stream(zipfian_stream(LENGTH, UNIVERSE, skew=1.2, rng=RandomSource(23)),
                path)
    return path


def serve_args(wal_dir, ready, extra=()):
    return [
        "serve", "--port", "0", "--universe", str(UNIVERSE),
        "--stream-length", str(LENGTH), "--epsilon", "0.02", "--phi", "0.1",
        "--seed", "42", "--chunk-size", str(CHUNK), "--wal-dir", wal_dir,
        "--wal-fsync", "always", "--ready-file", ready, *extra,
    ]


class TestCrashComparison:
    """The chaos-sweep harness, asserted end to end over both kill shapes."""

    @pytest.fixture(scope="class")
    def sigkill_rows(self, trace):
        return run_crash_comparison(
            trace, phi=0.1, epsilon=0.02, chunk_size=CHUNK, push_batch=BATCH,
            kill_after_batches=(2, 5), mode="sigkill",
        )

    @pytest.fixture(scope="class")
    def crash_rows(self, trace):
        return run_crash_comparison(
            trace, phi=0.1, epsilon=0.02, chunk_size=CHUNK, push_batch=BATCH,
            kill_after_batches=(2, 5), mode="crash",
        )

    def test_sigkill_legs_lose_nothing(self, sigkill_rows):
        assert [row.label for row in sigkill_rows] == [
            "sigkill:after_batch=2", "sigkill:after_batch=5",
        ]
        for row in sigkill_rows:
            assert row.measurements["no_acked_loss"] == 1.0
            # fsync=always: every acked batch survives exactly.
            assert (row.measurements["recovered_items"]
                    >= row.measurements["acked_items"] > 0)

    def test_sigkill_reports_equal_offline_replay(self, sigkill_rows):
        for row in sigkill_rows:
            assert row.measurements["identical_report"] == 1.0
            assert row.measurements["restart_seconds"] > 0.0

    def test_torn_record_crash_recovers_the_acked_prefix(self, crash_rows):
        for row, kill_after in zip(crash_rows, (2, 5)):
            # The fault tears append K mid-write: K-1 batches were acked, and
            # the half-written record must vanish, not resurrect.
            assert row.measurements["acked_items"] == (kill_after - 1) * BATCH
            assert row.measurements["no_acked_loss"] == 1.0
            assert row.measurements["identical_report"] == 1.0


class TestServedRecoveryLifecycle:
    """Direct subprocess scenarios beyond the sweep: clean stops, named streams."""

    def test_graceful_shutdown_then_restart_resumes_from_checkpoint(
        self, trace, tmp_path
    ):
        wal_dir = str(tmp_path / "wal")
        ready = str(tmp_path / "ready")
        from repro.streams.io import iterate_stream_file_chunks

        pieces = []
        for chunk in iterate_stream_file_chunks(trace, BATCH):
            pieces.append(chunk)
            if len(pieces) == 5:
                break
        items = np.concatenate(pieces)

        process, endpoint = _spawn_served_process(serve_args(wal_dir, ready), ready)
        with ServiceClient(endpoint) as client:
            for offset in range(0, items.size, BATCH):
                client.push(items[offset:offset + BATCH])
            client.flush(timeout=60.0)
            first = client.query()
            client.shutdown()
        process.wait(timeout=60)
        # The clean stop checkpointed into the WAL directory and compacted.
        assert any(name.endswith(".ckpt") for name in
                   os.listdir(os.path.join(wal_dir, "default")))

        process, endpoint = _spawn_served_process(serve_args(wal_dir, ready), ready)
        with ServiceClient(endpoint) as client:
            assert int(client.config()["items_received"]) == items.size
            second = client.query()
            client.shutdown()
        process.wait(timeout=60)
        assert dict(second.report.items) == dict(first.report.items)
        assert second.items_processed == first.items_processed

    def test_named_streams_survive_kill_minus_nine(self, trace, tmp_path):
        wal_dir = str(tmp_path / "wal")
        ready = str(tmp_path / "ready")
        rng = RandomSource(5).numpy_generator()
        per_stream = {
            "ads": rng.integers(0, UNIVERSE, size=3 * CHUNK + 17).astype(np.int64),
            "web": rng.integers(0, UNIVERSE, size=CHUNK + 3).astype(np.int64),
        }

        process, endpoint = _spawn_served_process(serve_args(wal_dir, ready), ready)
        with ServiceClient(endpoint) as client:
            for name, items in per_stream.items():
                for offset in range(0, items.size, BATCH):
                    client.push(items[offset:offset + BATCH], stream=name)
            before = {name: client.query(stream=name) for name in per_stream}
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=60)

        process, endpoint = _spawn_served_process(serve_args(wal_dir, ready), ready)
        with ServiceClient(endpoint) as client:
            for name, items in per_stream.items():
                assert int(client.config(stream=name)["items_received"]) == items.size
                after = client.query(stream=name)
                assert dict(after.report.items) == dict(before[name].report.items)
                assert after.items_processed == before[name].items_processed
            # A recovered stream keeps accepting pushes and stays consistent.
            total = client.push(per_stream["web"][:10], stream="web")
            assert total == per_stream["web"].size + 10
            client.shutdown()
        process.wait(timeout=60)
