"""Integration tests for the voting pipeline: generators -> streaming algorithms -> winners."""

import pytest

from repro.core.borda import ListBorda
from repro.core.maximin import ListMaximin
from repro.core.maximum import EpsilonMaximum
from repro.core.minimum import EpsilonMinimum
from repro.primitives.rng import RandomSource
from repro.voting.elections import Election
from repro.voting.generators import clickstream_orderings, mallows_votes, planted_borda_winner
from repro.voting.rankings import Ranking
from repro.streams.truth import exact_frequencies


class TestStreamingElection:
    """One election, all four voting-rule questions answered from a single pass each."""

    @pytest.fixture(scope="class")
    def election(self):
        reference = Ranking([4, 2, 0, 1, 3, 5])
        votes = mallows_votes(4000, 6, dispersion=0.35, reference=reference, rng=RandomSource(1))
        return Election(num_candidates=6, votes=votes)

    def test_streaming_borda_matches_exact_winner(self, election):
        algo = ListBorda(
            epsilon=0.05, num_candidates=6, stream_length=len(election), rng=RandomSource(2)
        )
        algo.consume(election.votes)
        assert algo.report().approximate_winner() == election.borda_winner()

    def test_streaming_maximin_matches_exact_winner(self, election):
        algo = ListMaximin(
            epsilon=0.05, num_candidates=6, stream_length=len(election), rng=RandomSource(3)
        )
        algo.consume(election.votes)
        assert algo.report().approximate_winner() == election.maximin_winner()

    def test_streaming_plurality_via_epsilon_maximum(self, election):
        """Plurality winner = eps-Maximum over the stream of top choices (paper Section 1.2)."""
        tops = [vote.top() for vote in election.votes]
        algo = EpsilonMaximum(
            epsilon=0.05, universe_size=6, stream_length=len(tops), rng=RandomSource(4)
        )
        algo.consume(tops)
        result = algo.report()
        truth = exact_frequencies(tops)
        assert result.item_is_near_maximum(truth)

    def test_streaming_veto_via_epsilon_minimum(self, election):
        """Veto winner = eps-Minimum over the stream of bottom choices."""
        bottoms = [vote.bottom() for vote in election.votes]
        algo = EpsilonMinimum(
            epsilon=0.05, universe_size=6, stream_length=len(bottoms), rng=RandomSource(5)
        )
        algo.consume(bottoms)
        result = algo.report()
        truth = exact_frequencies(bottoms)
        veto_counts = {c: truth.get(c, 0) for c in range(6)}
        best = min(veto_counts.values())
        assert veto_counts[result.item] <= best + 0.1 * len(bottoms)

    def test_borda_and_maximin_agree_on_strong_consensus(self, election):
        """With a concentrated Mallows election both rules pick the reference top item."""
        borda = ListBorda(
            epsilon=0.05, num_candidates=6, stream_length=len(election), rng=RandomSource(6)
        )
        maximin = ListMaximin(
            epsilon=0.05, num_candidates=6, stream_length=len(election), rng=RandomSource(7)
        )
        for vote in election.votes:
            borda.insert(vote)
            maximin.insert(vote)
        assert borda.report().approximate_winner() == maximin.report().approximate_winner() == 4


class TestClickstreamAggregation:
    """The web-clickstream motivation from Section 1.2 of the paper."""

    def test_most_popular_page_by_borda(self):
        sessions = clickstream_orderings(3000, 8, popularity_skew=1.2, rng=RandomSource(8))
        algo = ListBorda(
            epsilon=0.05, num_candidates=8, stream_length=len(sessions), rng=RandomSource(9)
        )
        algo.consume(sessions)
        # Page 0 has the largest Plackett-Luce weight, so it should win Borda.
        assert algo.report().approximate_winner() == 0

    def test_planted_winner_detected_by_both_rules(self):
        votes = planted_borda_winner(3000, 7, winner=5, boost_fraction=0.65, rng=RandomSource(10))
        borda = ListBorda(epsilon=0.05, num_candidates=7, stream_length=len(votes),
                          rng=RandomSource(11))
        maximin = ListMaximin(epsilon=0.08, num_candidates=7, stream_length=len(votes),
                              rng=RandomSource(12))
        for vote in votes:
            borda.insert(vote)
            maximin.insert(vote)
        assert borda.report().approximate_winner() == 5
        assert maximin.report().approximate_winner() == 5
