"""Tests for the unknown-stream-length wrappers (Theorems 7 and 8)."""

import pytest

from repro.core.unknown_length import (
    UnknownLengthHeavyHitters,
    UnknownLengthMaximum,
    UnknownLengthWrapper,
    unknown_length_borda,
    unknown_length_maximin,
    unknown_length_minimum,
)
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_heavy_hitters_stream, planted_maximum_stream
from repro.streams.truth import exact_frequencies
from repro.voting.generators import mallows_votes
from repro.voting.rankings import Ranking


class TestWrapperMechanics:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            UnknownLengthWrapper(factory=lambda m: None, epsilon=0.0)

    def test_two_instances_alive(self):
        wrapper = UnknownLengthHeavyHitters(
            epsilon=0.1, phi=0.3, universe_size=100, rng=RandomSource(1)
        )
        assert len(wrapper.instances) == 2

    def test_restarts_happen_as_stream_grows(self):
        wrapper = UnknownLengthHeavyHitters(
            epsilon=0.2, phi=0.45, universe_size=50, rng=RandomSource(2),
            use_morris_counter=False,
        )
        initial_horizon = wrapper.instances[0][0]
        stream = planted_heavy_hitters_stream(
            initial_horizon * 40, 50, {1: 0.5}, rng=RandomSource(3)
        )
        wrapper.consume(stream)
        assert wrapper.restarts >= 1

    def test_horizons_grow_geometrically(self):
        wrapper = UnknownLengthHeavyHitters(
            epsilon=0.2, phi=0.45, universe_size=50, rng=RandomSource(4)
        )
        first, second = wrapper.instances[0][0], wrapper.instances[1][0]
        assert second >= 2 * first

    def test_space_breakdown_lists_instances(self):
        wrapper = UnknownLengthMaximum(epsilon=0.2, universe_size=50, rng=RandomSource(5))
        wrapper.insert(1)
        breakdown = wrapper.space_breakdown()
        assert "morris" in breakdown
        assert sum(1 for key in breakdown if key.startswith("instance_")) == 2


class TestUnknownLengthHeavyHitters:
    def test_heavy_items_still_found(self):
        universe = 200
        stream = planted_heavy_hitters_stream(
            60000, universe, {7: 0.35, 8: 0.2}, rng=RandomSource(6)
        )
        wrapper = UnknownLengthHeavyHitters(
            epsilon=0.1, phi=0.3, universe_size=universe, rng=RandomSource(7),
            use_morris_counter=False,
        )
        wrapper.consume(stream)
        report = wrapper.report()
        assert 7 in report
        assert report.stream_length == len(stream)

    def test_light_items_not_reported(self):
        universe = 200
        stream = planted_heavy_hitters_stream(
            40000, universe, {3: 0.4}, rng=RandomSource(8)
        )
        truth = exact_frequencies(stream)
        wrapper = UnknownLengthHeavyHitters(
            epsilon=0.1, phi=0.3, universe_size=universe, rng=RandomSource(9),
            use_morris_counter=False,
        )
        wrapper.consume(stream)
        report = wrapper.report()
        threshold = (0.3 - 0.1) * len(stream)
        for item in report:
            assert truth.get(item, 0) > threshold * 0.5  # generous: instance saw a suffix

    def test_morris_counter_variant_runs(self):
        universe = 100
        stream = planted_heavy_hitters_stream(
            30000, universe, {5: 0.4}, rng=RandomSource(10)
        )
        wrapper = UnknownLengthHeavyHitters(
            epsilon=0.1, phi=0.3, universe_size=universe, rng=RandomSource(11)
        )
        wrapper.consume(stream)
        assert 5 in wrapper.report()


class TestUnknownLengthMaximum:
    def test_planted_maximum_found(self):
        universe = 100
        stream = planted_maximum_stream(
            50000, universe, maximum_item=9, maximum_fraction=0.4, rng=RandomSource(12)
        )
        truth = exact_frequencies(stream)
        wrapper = UnknownLengthMaximum(
            epsilon=0.1, universe_size=universe, rng=RandomSource(13),
            use_morris_counter=False,
        )
        wrapper.consume(stream)
        result = wrapper.report()
        assert result.item == 9
        assert result.stream_length == len(stream)


class TestOtherProblems:
    def test_unknown_length_minimum(self):
        universe = 8
        stream = [item for item in range(7) for _ in range(3000)]
        stream = RandomSource(14).shuffle(stream)
        wrapper = unknown_length_minimum(
            epsilon=0.1, universe_size=universe, rng=RandomSource(15),
            use_morris_counter=False,
        )
        wrapper.consume(stream)
        result = wrapper.report()
        # Item 7 never appears, so any frequency-0 answer (or near-minimum) is correct.
        truth = exact_frequencies(stream)
        own = truth.get(result.item, 0)
        assert own <= min(truth.values()) + 0.2 * len(stream)

    def test_unknown_length_borda(self):
        reference = Ranking([1, 0, 2, 3])
        votes = mallows_votes(6000, 4, dispersion=0.2, reference=reference, rng=RandomSource(16))
        wrapper = unknown_length_borda(
            epsilon=0.1, num_candidates=4, rng=RandomSource(17),
            use_morris_counter=False,
        )
        wrapper.consume(votes)
        assert wrapper.report().approximate_winner() == 1

    def test_unknown_length_maximin(self):
        reference = Ranking([2, 0, 1, 3])
        votes = mallows_votes(5000, 4, dispersion=0.2, reference=reference, rng=RandomSource(18))
        wrapper = unknown_length_maximin(
            epsilon=0.15, num_candidates=4, rng=RandomSource(19),
            use_morris_counter=False,
        )
        wrapper.consume(votes)
        assert wrapper.report().approximate_winner() == 2
