"""Tests for the (ε,ϕ)-List Maximin algorithm (Theorem 6)."""

import pytest

from repro.core.maximin import ListMaximin
from repro.primitives.rng import RandomSource
from repro.voting.generators import impartial_culture, mallows_votes
from repro.voting.rankings import Ranking
from repro.voting.scores import maximin_scores


def make_algo(epsilon, num_candidates, stream_length, phi=None, seed=0):
    return ListMaximin(
        epsilon=epsilon,
        num_candidates=num_candidates,
        stream_length=stream_length,
        phi=phi,
        rng=RandomSource(seed),
    )


class TestValidation:
    def test_parameter_ranges(self):
        with pytest.raises(ValueError):
            make_algo(0.0, 5, 100)
        with pytest.raises(ValueError):
            make_algo(0.1, -3, 100)
        with pytest.raises(ValueError):
            make_algo(0.1, 5, 100, phi=0.01)

    def test_wrong_vote_size_rejected(self):
        algo = make_algo(0.1, 4, 100)
        with pytest.raises(ValueError):
            algo.insert(Ranking([0, 1]))


class TestScoreEstimation:
    def test_scores_within_eps_m(self):
        """Theorem 6: every maximin score within an additive eps*m."""
        num_candidates = 6
        votes = impartial_culture(3000, num_candidates, rng=RandomSource(1))
        truth = maximin_scores(votes)
        algo = make_algo(0.08, num_candidates, len(votes), seed=2)
        algo.consume(votes)
        report = algo.report()
        tolerance = 0.08 * len(votes)
        for candidate in range(num_candidates):
            assert abs(report.scores[candidate] - truth[candidate]) <= tolerance

    def test_mallows_winner_recovered(self):
        reference = Ranking([3, 1, 0, 2, 4])
        votes = mallows_votes(2000, 5, dispersion=0.2, reference=reference, rng=RandomSource(3))
        algo = make_algo(0.08, 5, len(votes), seed=4)
        algo.consume(votes)
        report = algo.report()
        assert report.approximate_winner() == 3

    def test_list_variant_heavy_candidates(self):
        reference = Ranking([0, 1, 2, 3])
        votes = mallows_votes(2500, 4, dispersion=0.15, reference=reference, rng=RandomSource(5))
        truth = maximin_scores(votes)
        phi = 0.5
        algo = make_algo(0.08, 4, len(votes), phi=phi, seed=6)
        algo.consume(votes)
        report = algo.report()
        for candidate, score in truth.items():
            if score > phi * len(votes):
                assert candidate in report.heavy_items
            if score <= (phi - 0.08) * len(votes):
                assert candidate not in report.heavy_items

    def test_exact_when_sampling_everything(self):
        votes = impartial_culture(80, 4, rng=RandomSource(7))
        truth = maximin_scores(votes)
        algo = make_algo(0.2, 4, len(votes), seed=8)
        algo.consume(votes)
        report = algo.report()
        for candidate in range(4):
            assert report.scores[candidate] == pytest.approx(truth[candidate])

    def test_empty_report_before_any_vote(self):
        algo = make_algo(0.2, 3, 10, seed=9)
        report = algo.report()
        assert report.scores == {0: 0.0, 1: 0.0, 2: 0.0}


class TestSpaceAccounting:
    def test_space_counts_stored_votes(self):
        algo = make_algo(0.2, 8, 10**6, seed=10)
        votes = impartial_culture(200, 8, rng=RandomSource(11))
        algo.consume(votes)
        per_vote_bits = 8 * 3  # 8 candidates, ceil(log2 7) = 3 bits each
        assert algo.space_breakdown()["sampled_votes"] == algo.sample_size * per_vote_bits

    def test_maximin_space_exceeds_borda_space(self):
        """The paper's point (Theorems 5, 6, 13): maximin heavy hitters cost much more."""
        from repro.core.borda import ListBorda

        num_candidates = 10
        stream_length = 10**6
        votes = impartial_culture(400, num_candidates, rng=RandomSource(12))
        maximin = make_algo(0.05, num_candidates, stream_length, seed=13)
        borda = ListBorda(
            epsilon=0.05, num_candidates=num_candidates, stream_length=stream_length,
            rng=RandomSource(13),
        )
        for vote in votes:
            maximin.insert(vote)
            borda.insert(vote)
        # Borda stores n counters; maximin stores Theta(eps^-2 log n) whole votes.
        # Compare the declared capacities rather than one realized sample:
        assert maximin.target_sample_size * num_candidates > borda.num_candidates * 4
        assert maximin.space_bits() > borda.space_bits()
