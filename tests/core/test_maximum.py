"""Tests for the ε-Maximum algorithm (Theorem 3)."""

import pytest

from repro.core.maximum import EpsilonMaximum
from repro.primitives.rng import RandomSource
from repro.streams.generators import planted_maximum_stream, uniform_stream, zipfian_stream
from repro.streams.truth import exact_frequencies, exact_maximum


def make_algo(epsilon, universe_size, stream_length, seed=0):
    return EpsilonMaximum(
        epsilon=epsilon,
        universe_size=universe_size,
        stream_length=stream_length,
        rng=RandomSource(seed),
    )


class TestValidation:
    def test_epsilon_range(self):
        with pytest.raises(ValueError):
            make_algo(0.0, 10, 100)
        with pytest.raises(ValueError):
            make_algo(1.0, 10, 100)

    def test_universe_and_length_positive(self):
        with pytest.raises(ValueError):
            make_algo(0.1, 0, 100)
        with pytest.raises(ValueError):
            make_algo(0.1, 10, 0)

    def test_out_of_universe_item(self):
        algo = make_algo(0.1, 4, 100)
        with pytest.raises(ValueError):
            algo.insert(4)


class TestMaximumEstimation:
    def test_planted_maximum_is_found(self):
        stream = planted_maximum_stream(
            20000, 2000, maximum_item=17, maximum_fraction=0.3,
            runner_up_fraction=0.15, rng=RandomSource(1),
        )
        truth = exact_frequencies(stream)
        algo = make_algo(0.05, 2000, len(stream), seed=2)
        algo.consume(stream)
        result = algo.report()
        assert result.item == 17
        assert result.is_correct(truth)

    def test_estimate_within_eps_m(self):
        stream = planted_maximum_stream(
            30000, 500, maximum_item=3, maximum_fraction=0.4, rng=RandomSource(3)
        )
        truth = exact_frequencies(stream)
        algo = make_algo(0.03, 500, len(stream), seed=4)
        algo.consume(stream)
        result = algo.report()
        true_max = max(truth.values())
        assert abs(result.estimated_frequency - true_max) <= 0.03 * len(stream)

    def test_zipfian_maximum(self):
        stream = zipfian_stream(30000, 1000, skew=1.3, rng=RandomSource(5))
        truth = exact_frequencies(stream)
        algo = make_algo(0.05, 1000, len(stream), seed=6)
        algo.consume(stream)
        result = algo.report()
        assert result.is_correct(truth)
        assert result.item_is_near_maximum(truth)

    def test_near_uniform_stream_any_item_is_near_maximum(self):
        stream = uniform_stream(20000, 50, rng=RandomSource(7))
        truth = exact_frequencies(stream)
        algo = make_algo(0.1, 50, len(stream), seed=8)
        algo.consume(stream)
        result = algo.report()
        assert result.is_correct(truth)

    def test_empty_stream_report(self):
        algo = make_algo(0.1, 10, 100)
        result = algo.report()
        assert result.estimated_frequency == 0.0

    def test_single_distinct_item(self):
        algo = make_algo(0.1, 10, 1000, seed=9)
        algo.consume([4] * 1000)
        result = algo.report()
        assert result.item == 4
        assert abs(result.estimated_frequency - 1000) <= 100


class TestResolutionOfIITKQuestion:
    """The algorithm answers IITK Open Question 3: additive-eps*m estimate of l_inf."""

    def test_linf_estimate_across_skews(self):
        for skew, seed in ((1.1, 10), (1.5, 11), (2.0, 12)):
            stream = zipfian_stream(20000, 500, skew=skew, rng=RandomSource(seed))
            truth = exact_frequencies(stream)
            algo = make_algo(0.05, 500, len(stream), seed=seed + 100)
            algo.consume(stream)
            result = algo.report()
            _, true_max = exact_maximum(stream)
            assert abs(result.estimated_frequency - true_max) <= 0.05 * len(stream)


class TestSpaceAccounting:
    def test_only_one_id_is_stored(self):
        """Theorem 3's saving over Theorem 1: one id instead of a phi^-1 table."""
        algo = make_algo(0.05, 2**30, 10000, seed=13)
        algo.insert(5)
        breakdown = algo.space_breakdown()
        assert breakdown["best_id"] == 30

    def test_table_capped_by_universe(self):
        algo = make_algo(0.001, 16, 10000, seed=14)
        assert algo.table_capacity <= 17

    def test_components(self):
        algo = make_algo(0.05, 100, 1000, seed=15)
        algo.insert(1)
        assert set(algo.space_breakdown()) == {"sampler", "hash_function", "T1", "best_id"}
