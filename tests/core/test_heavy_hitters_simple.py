"""Tests for Algorithm 1 (SimpleListHeavyHitters, Theorem 1)."""

import pytest

from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.primitives.rng import RandomSource
from repro.streams.generators import (
    adversarial_block_stream,
    planted_heavy_hitters_stream,
    zipfian_stream,
)
from repro.streams.truth import exact_frequencies


def make_algo(epsilon, phi, universe_size, stream_length, seed=0, delta=0.1):
    return SimpleListHeavyHitters(
        epsilon=epsilon,
        phi=phi,
        universe_size=universe_size,
        stream_length=stream_length,
        delta=delta,
        rng=RandomSource(seed),
    )


class TestParameterValidation:
    def test_epsilon_must_be_below_phi(self):
        with pytest.raises(ValueError):
            make_algo(epsilon=0.2, phi=0.1, universe_size=10, stream_length=100)

    def test_epsilon_range(self):
        with pytest.raises(ValueError):
            make_algo(epsilon=0.0, phi=0.1, universe_size=10, stream_length=100)

    def test_positive_stream_length_required(self):
        with pytest.raises(ValueError):
            make_algo(epsilon=0.01, phi=0.1, universe_size=10, stream_length=0)

    def test_delta_range(self):
        with pytest.raises(ValueError):
            make_algo(epsilon=0.01, phi=0.1, universe_size=10, stream_length=10, delta=0.0)

    def test_out_of_universe_item(self):
        algo = make_algo(0.05, 0.2, universe_size=8, stream_length=100)
        with pytest.raises(ValueError):
            algo.insert(8)


class TestDefinitionGuarantee:
    def test_planted_stream_satisfies_definition(self):
        rng = RandomSource(1)
        stream = planted_heavy_hitters_stream(
            30000, 5000, {1: 0.2, 2: 0.1, 3: 0.06, 4: 0.051}, rng=rng
        )
        truth = exact_frequencies(stream)
        algo = make_algo(0.02, 0.05, 5000, len(stream), seed=2)
        algo.consume(stream)
        report = algo.report()
        assert report.satisfies_definition(truth)
        assert 1 in report and 2 in report and 3 in report

    def test_zipfian_stream_recall_and_precision(self):
        rng = RandomSource(3)
        stream = zipfian_stream(30000, 2000, skew=1.4, rng=rng)
        truth = exact_frequencies(stream)
        algo = make_algo(0.02, 0.05, 2000, len(stream), seed=4)
        algo.consume(stream)
        report = algo.report()
        assert report.contains_all_heavy(truth)
        assert report.excludes_all_light(truth)

    def test_adversarial_block_order(self):
        """The paper makes no ordering assumption; sorted-block arrival must still work."""
        stream = adversarial_block_stream(
            20000, 3000, {10: 0.2, 20: 0.1, 30: 0.06}, rng=RandomSource(5)
        )
        truth = exact_frequencies(stream)
        algo = make_algo(0.02, 0.05, 3000, len(stream), seed=6)
        algo.consume(stream)
        report = algo.report()
        assert report.satisfies_definition(truth)

    def test_no_heavy_items_reports_nothing_heavy(self):
        stream = zipfian_stream(20000, 5000, skew=0.5, rng=RandomSource(7))
        truth = exact_frequencies(stream)
        algo = make_algo(0.02, 0.2, 5000, len(stream), seed=8)
        algo.consume(stream)
        report = algo.report()
        assert report.excludes_all_light(truth)

    def test_frequency_estimates_within_eps_m(self):
        stream = planted_heavy_hitters_stream(
            25000, 1000, {1: 0.3, 2: 0.15}, rng=RandomSource(9)
        )
        truth = exact_frequencies(stream)
        algo = make_algo(0.02, 0.1, 1000, len(stream), seed=10)
        algo.consume(stream)
        report = algo.report()
        assert report.max_frequency_error(truth) <= 0.02 * len(stream)

    def test_single_item_stream(self):
        stream = [0] * 5000
        algo = make_algo(0.05, 0.5, 4, len(stream), seed=11)
        algo.consume(stream)
        report = algo.report()
        assert list(report.items) == [0]

    def test_estimate_interface(self):
        stream = planted_heavy_hitters_stream(
            20000, 500, {1: 0.4}, rng=RandomSource(12)
        )
        algo = make_algo(0.05, 0.2, 500, len(stream), seed=13)
        algo.consume(stream)
        assert abs(algo.estimate(1) - 0.4 * len(stream)) <= 0.1 * len(stream)


class TestMaximumVariant:
    def test_report_maximum_finds_planted_item(self):
        stream = planted_heavy_hitters_stream(
            20000, 1000, {42: 0.3, 7: 0.1}, rng=RandomSource(14)
        )
        truth = exact_frequencies(stream)
        algo = make_algo(0.05, 0.2, 1000, len(stream), seed=15)
        algo.consume(stream)
        result = algo.report_maximum()
        assert result.item == 42
        assert result.is_correct(truth)

    def test_empty_stream_maximum(self):
        algo = make_algo(0.1, 0.3, 10, stream_length=10, seed=16)
        result = algo.report_maximum()
        assert result.estimated_frequency == 0.0


class TestSpaceAccounting:
    def test_breakdown_components_present(self):
        algo = make_algo(0.05, 0.2, 1000, 10000, seed=17)
        algo.insert(1)
        breakdown = algo.space_breakdown()
        assert set(breakdown) == {"sampler", "hash_function", "T1", "T2"}

    def test_id_table_space_scales_with_log_n_not_table(self):
        """The phi^-1 log n term: T2 grows with log n while T1 does not."""
        small = make_algo(0.05, 0.2, 2**10, 10000, seed=18)
        large = make_algo(0.05, 0.2, 2**20, 10000, seed=18)
        small.insert(1)
        large.insert(1)
        assert large.space_breakdown()["T2"] > small.space_breakdown()["T2"]
        assert large.space_breakdown()["T1"] == small.space_breakdown()["T1"]

    def test_t1_space_scales_with_inverse_epsilon(self):
        coarse = make_algo(0.1, 0.2, 1000, 10000, seed=19)
        fine = make_algo(0.01, 0.2, 1000, 10000, seed=19)
        coarse.insert(1)
        fine.insert(1)
        assert fine.space_breakdown()["T1"] > coarse.space_breakdown()["T1"]

    def test_sampler_space_is_tiny(self):
        algo = make_algo(0.05, 0.2, 1000, 10**9, seed=20)
        algo.insert(1)
        assert algo.space_breakdown()["sampler"] <= 8

    def test_space_smaller_than_misra_gries_for_huge_universe(self):
        """The headline comparison at the bound level, realized by the implementation:
        for a very large universe the id-dependent part (T2) stays phi^-1 ids while
        Misra-Gries would pay eps^-1 ids."""
        from repro.baselines.misra_gries import MisraGries

        universe = 2**40
        stream_length = 10**6
        ours = SimpleListHeavyHitters(
            epsilon=0.001, phi=0.1, universe_size=universe,
            stream_length=stream_length, rng=RandomSource(21),
        )
        theirs = MisraGries(epsilon=0.001, universe_size=universe, stream_length_hint=stream_length)
        ours.insert(0)
        theirs.insert(0)
        assert ours.space_breakdown()["T2"] < theirs.space_bits()
