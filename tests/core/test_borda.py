"""Tests for the (ε,ϕ)-List Borda algorithm (Theorem 5)."""

import pytest

from repro.core.borda import ListBorda
from repro.primitives.rng import RandomSource
from repro.voting.generators import impartial_culture, mallows_votes, planted_borda_winner
from repro.voting.rankings import Ranking
from repro.voting.scores import borda_scores


def make_algo(epsilon, num_candidates, stream_length, phi=None, seed=0):
    return ListBorda(
        epsilon=epsilon,
        num_candidates=num_candidates,
        stream_length=stream_length,
        phi=phi,
        rng=RandomSource(seed),
    )


class TestValidation:
    def test_parameter_ranges(self):
        with pytest.raises(ValueError):
            make_algo(0.0, 5, 100)
        with pytest.raises(ValueError):
            make_algo(0.1, 0, 100)
        with pytest.raises(ValueError):
            make_algo(0.1, 5, 100, phi=0.05)

    def test_wrong_vote_size_rejected(self):
        algo = make_algo(0.1, 4, 100)
        with pytest.raises(ValueError):
            algo.insert(Ranking([0, 1, 2]))


class TestScoreEstimation:
    def test_scores_within_eps_mn(self):
        """The Theorem 5 guarantee: every Borda score within an additive eps*m*n."""
        num_candidates = 8
        votes = impartial_culture(4000, num_candidates, rng=RandomSource(1))
        truth = borda_scores(votes)
        algo = make_algo(0.05, num_candidates, len(votes), seed=2)
        algo.consume(votes)
        report = algo.report()
        tolerance = 0.05 * len(votes) * num_candidates
        for candidate in range(num_candidates):
            assert abs(report.scores[candidate] - truth[candidate]) <= tolerance

    def test_planted_winner_recovered(self):
        num_candidates = 6
        votes = planted_borda_winner(
            3000, num_candidates, winner=4, boost_fraction=0.7, rng=RandomSource(3)
        )
        algo = make_algo(0.05, num_candidates, len(votes), seed=4)
        algo.consume(votes)
        assert algo.report().approximate_winner() == 4

    def test_mallows_reference_top_candidate_wins(self):
        reference = Ranking([2, 0, 1, 3, 4])
        votes = mallows_votes(2500, 5, dispersion=0.3, reference=reference, rng=RandomSource(5))
        algo = make_algo(0.05, 5, len(votes), seed=6)
        algo.consume(votes)
        assert algo.report().approximate_winner() == 2

    def test_list_variant_reports_heavy_candidates(self):
        """The List variant returns candidates above phi*m*n and omits light ones."""
        num_candidates = 5
        reference = Ranking([0, 1, 2, 3, 4])
        votes = mallows_votes(3000, num_candidates, dispersion=0.2, reference=reference,
                              rng=RandomSource(7))
        truth = borda_scores(votes)
        phi = 0.6
        algo = make_algo(0.05, num_candidates, len(votes), phi=phi, seed=8)
        algo.consume(votes)
        report = algo.report()
        scale = len(votes) * num_candidates
        for candidate, score in truth.items():
            if score > phi * scale:
                assert candidate in report.heavy_items
            if score <= (phi - 0.05) * scale:
                assert candidate not in report.heavy_items

    def test_exact_when_sampling_probability_is_one(self):
        votes = impartial_culture(100, 4, rng=RandomSource(9))
        truth = borda_scores(votes)
        algo = make_algo(0.2, 4, len(votes), seed=10)
        algo.consume(votes)
        report = algo.report()
        for candidate in range(4):
            assert report.scores[candidate] == pytest.approx(truth[candidate])

    def test_single_candidate(self):
        votes = [Ranking([0]) for _ in range(50)]
        algo = make_algo(0.2, 1, 50, seed=11)
        algo.consume(votes)
        assert algo.report().scores[0] == 0.0


class TestSpaceAccounting:
    def test_counter_space_scales_linearly_in_candidates(self):
        small = make_algo(0.1, 10, 1000, seed=12)
        large = make_algo(0.1, 100, 1000, seed=12)
        small.insert(Ranking(list(range(10))))
        large.insert(Ranking(list(range(100))))
        assert large.space_breakdown()["borda_counters"] > 5 * small.space_breakdown()["borda_counters"]

    def test_space_does_not_grow_with_stream_length_beyond_loglog(self):
        short = make_algo(0.1, 10, 10**3, seed=13)
        long = make_algo(0.1, 10, 10**9, seed=13)
        short.insert(Ranking(list(range(10))))
        long.insert(Ranking(list(range(10))))
        assert long.space_bits() <= short.space_bits() + 8
