"""Tests for Algorithm 2 (OptimalListHeavyHitters, Theorem 2)."""

import pytest

from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.primitives.rng import RandomSource
from repro.streams.generators import (
    adversarial_block_stream,
    planted_heavy_hitters_stream,
    zipfian_stream,
)
from repro.streams.truth import exact_frequencies


def make_algo(epsilon, phi, universe_size, stream_length, seed=0, **kwargs):
    return OptimalListHeavyHitters(
        epsilon=epsilon,
        phi=phi,
        universe_size=universe_size,
        stream_length=stream_length,
        rng=RandomSource(seed),
        **kwargs,
    )


class TestParameterValidation:
    def test_epsilon_below_phi(self):
        with pytest.raises(ValueError):
            make_algo(0.2, 0.1, 10, 100)

    def test_bad_delta(self):
        with pytest.raises(ValueError):
            make_algo(0.01, 0.1, 10, 100, delta=1.0)

    def test_repetitions_forced_odd(self):
        algo = make_algo(0.05, 0.2, 100, 1000, repetitions=4)
        assert algo.repetitions % 2 == 1

    def test_out_of_universe_item(self):
        algo = make_algo(0.05, 0.2, 8, 100)
        with pytest.raises(ValueError):
            algo.insert(-1)


class TestDefinitionGuarantee:
    def test_planted_stream_satisfies_definition(self):
        stream = planted_heavy_hitters_stream(
            30000, 5000, {1: 0.2, 2: 0.1, 3: 0.06, 4: 0.051}, rng=RandomSource(1)
        )
        truth = exact_frequencies(stream)
        algo = make_algo(0.02, 0.05, 5000, len(stream), seed=2)
        algo.consume(stream)
        report = algo.report()
        assert report.satisfies_definition(truth)
        for heavy in (1, 2, 3):
            assert heavy in report

    def test_zipfian_stream(self):
        stream = zipfian_stream(30000, 2000, skew=1.4, rng=RandomSource(3))
        truth = exact_frequencies(stream)
        algo = make_algo(0.02, 0.05, 2000, len(stream), seed=4)
        algo.consume(stream)
        report = algo.report()
        assert report.contains_all_heavy(truth)
        assert report.excludes_all_light(truth)

    def test_adversarial_block_order(self):
        stream = adversarial_block_stream(
            20000, 3000, {10: 0.2, 20: 0.1}, rng=RandomSource(5)
        )
        truth = exact_frequencies(stream)
        algo = make_algo(0.03, 0.08, 3000, len(stream), seed=6)
        algo.consume(stream)
        assert algo.report().satisfies_definition(truth)

    def test_estimates_within_eps_m(self):
        stream = planted_heavy_hitters_stream(
            25000, 1000, {1: 0.3, 2: 0.15}, rng=RandomSource(7)
        )
        truth = exact_frequencies(stream)
        algo = make_algo(0.02, 0.1, 1000, len(stream), seed=8)
        algo.consume(stream)
        report = algo.report()
        assert report.max_frequency_error(truth) <= 0.02 * len(stream)

    def test_estimate_interface_tracks_heavy_item(self):
        stream = planted_heavy_hitters_stream(
            20000, 500, {3: 0.4}, rng=RandomSource(9)
        )
        algo = make_algo(0.05, 0.2, 500, len(stream), seed=10)
        algo.consume(stream)
        assert abs(algo.estimate(3) - 0.4 * len(stream)) <= 0.1 * len(stream)

    def test_candidate_set_bounded_by_phi(self):
        """T1 never holds more than O(1/phi) candidates."""
        stream = zipfian_stream(20000, 3000, skew=1.1, rng=RandomSource(11))
        algo = make_algo(0.05, 0.1, 3000, len(stream), seed=12)
        algo.consume(stream)
        assert len(algo.t1.counters) <= algo.candidate_capacity

    def test_paper_constants_mode_still_has_recall(self):
        """With the paper's epoch scale (1e-6) the estimator undercounts wildly on small
        streams (epochs never activate), but the candidate filter still finds the heavy
        items; this documents the constant-factor gap between theory and practice."""
        stream = planted_heavy_hitters_stream(
            20000, 500, {3: 0.4}, rng=RandomSource(13)
        )
        algo = make_algo(0.05, 0.2, 500, len(stream), seed=14, epoch_scale=1e-6)
        algo.consume(stream)
        assert 3 in algo.t1.counters


class TestSpaceAccounting:
    def test_breakdown_components(self):
        algo = make_algo(0.05, 0.2, 1000, 10000, seed=15)
        algo.insert(1)
        assert set(algo.space_breakdown()) == {"sampler", "T1", "hash_functions", "T2_T3"}

    def test_candidate_table_scales_with_inverse_phi_and_log_n(self):
        small = make_algo(0.05, 0.2, 2**10, 10000, seed=16)
        large_universe = make_algo(0.05, 0.2, 2**30, 10000, seed=16)
        small_phi = make_algo(0.05, 0.1, 2**10, 10000, seed=16)
        for algo in (small, large_universe, small_phi):
            algo.insert(1)
        assert large_universe.space_breakdown()["T1"] > small.space_breakdown()["T1"]
        assert small_phi.space_breakdown()["T1"] > small.space_breakdown()["T1"]

    def test_counter_space_does_not_depend_on_universe(self):
        """The eps^-1 log phi^-1 term is universe-independent: the counter structure
        (bucket count x repetitions) is the same for any universe size, so the measured
        bits differ only by random fluctuation, not systematically with n."""
        stream = zipfian_stream(10000, 1000, skew=1.3, rng=RandomSource(17))
        small = make_algo(0.05, 0.2, 2**10, len(stream), seed=18)
        large = make_algo(0.05, 0.2, 2**30, len(stream), seed=18)
        assert small.num_buckets == large.num_buckets
        assert small.repetitions == large.repetitions
        small.consume(stream)
        large.consume(stream)
        small_bits = small.space_breakdown()["T2_T3"]
        large_bits = large.space_breakdown()["T2_T3"]
        assert abs(small_bits - large_bits) <= 0.2 * small_bits

    def test_repetitions_grow_with_log_inverse_phi(self):
        coarse = make_algo(0.001, 0.5, 100, 1000, seed=19)
        fine = make_algo(0.001, 0.5 / 64, 100, 1000, seed=19)
        assert fine.repetitions > coarse.repetitions
