"""Tests for Algorithm 3 (ε-Minimum, Theorem 4)."""

import pytest

from repro.core.minimum import EpsilonMinimum
from repro.primitives.rng import RandomSource
from repro.streams.generators import uniform_stream, zipfian_stream
from repro.streams.truth import exact_frequencies


def make_algo(epsilon, universe_size, stream_length, seed=0, delta=0.1):
    return EpsilonMinimum(
        epsilon=epsilon,
        universe_size=universe_size,
        stream_length=stream_length,
        delta=delta,
        rng=RandomSource(seed),
    )


class TestValidation:
    def test_parameter_ranges(self):
        with pytest.raises(ValueError):
            make_algo(0.0, 10, 100)
        with pytest.raises(ValueError):
            make_algo(0.1, 0, 100)
        with pytest.raises(ValueError):
            make_algo(0.1, 10, -5)

    def test_out_of_universe_item(self):
        algo = make_algo(0.2, 5, 100)
        with pytest.raises(ValueError):
            algo.insert(7)


class TestLargeUniverseShortcut:
    def test_large_universe_returns_light_item(self):
        """Line 14-15: with |U| >> 1/eps a random early item is almost surely light."""
        epsilon = 0.1
        universe = 10_000  # far above 1/((1-delta) eps) ~ 11
        stream = zipfian_stream(5000, universe, skew=1.5, rng=RandomSource(1))
        truth = exact_frequencies(stream)
        correct = 0
        for seed in range(10):
            algo = make_algo(epsilon, universe, len(stream), seed=seed)
            algo.consume(stream)
            result = algo.report()
            if result.is_correct(truth, universe_size=universe):
                correct += 1
        # The paper's guarantee is success probability >= 1 - delta = 0.9, but on a
        # heavily skewed stream a handful of the first 1/((1-delta) eps) universe items
        # are themselves heavy, so allow a bit of slack over 10 trials.
        assert correct >= 6

    def test_large_universe_uses_almost_no_space(self):
        algo = make_algo(0.1, 10_000, 1000, seed=2)
        algo.consume(uniform_stream(1000, 10_000, rng=RandomSource(3)))
        assert algo.space_bits() <= 16


class TestSmallUniverse:
    def test_absent_item_detected(self):
        """Line 16-17: an item that never appears is a valid (frequency-0) answer."""
        universe = 8
        stream = [item for item in range(7) for _ in range(500)]  # item 7 never appears
        algo = make_algo(0.05, universe, len(stream), seed=4)
        algo.consume(stream)
        result = algo.report()
        assert result.item == 7

    def test_minimum_found_in_skewed_small_universe(self):
        universe = 10
        stream = zipfian_stream(20000, universe, skew=1.5, rng=RandomSource(5))
        truth = exact_frequencies(stream)
        correct = 0
        for seed in range(8):
            algo = make_algo(0.05, universe, len(stream), seed=seed + 10)
            algo.consume(stream)
            result = algo.report()
            if result.is_correct(truth, universe_size=universe):
                correct += 1
        assert correct >= 6

    def test_few_distinct_items_regime_is_exact_enough(self):
        """Line 18-19: with few distinct items S2's counters give the minimum."""
        universe = 6
        # Build a stream over only 4 distinct items with a clear minimum.
        stream = [0] * 4000 + [1] * 3000 + [2] * 2500 + [3] * 500
        stream = RandomSource(6).shuffle(stream)
        algo = make_algo(0.05, universe, len(stream), seed=7)
        algo.consume(stream)
        result = algo.report()
        # Items 4 and 5 never appear -> frequency 0 answers are also correct.
        truth = exact_frequencies(stream)
        assert result.is_correct(truth, universe_size=universe)

    def test_estimated_frequency_reasonable(self):
        universe = 6
        stream = [0] * 5000 + [1] * 4000 + [2] * 3000 + [3] * 2000 + [4] * 1000 + [5] * 300
        stream = RandomSource(8).shuffle(stream)
        truth = exact_frequencies(stream)
        algo = make_algo(0.05, universe, len(stream), seed=9)
        algo.consume(stream)
        result = algo.report()
        assert result.is_correct(truth, universe_size=universe)
        # The reported estimate should be within eps*m of the item's true frequency.
        assert abs(result.estimated_frequency - truth[result.item]) <= 0.1 * len(stream)


class TestSpaceAccounting:
    def test_small_universe_components(self):
        algo = make_algo(0.1, 8, 1000, seed=10)
        algo.insert(0)
        breakdown = algo.space_breakdown()
        assert "B1" in breakdown
        assert "S3" in breakdown

    def test_truncation_cap_bits_are_loglog(self):
        """The S3 counters use O(log log(1/(eps delta))) bits each."""
        algo = make_algo(0.01, 8, 10**6, seed=11)
        from repro.primitives.space import bits_for_value

        cap_bits = bits_for_value(algo.truncation_cap)
        # log2(2 * log^7(2/(eps*delta))) is about 3 + 7*log2(log(...)) ~ 35 bits max.
        assert cap_bits <= 40

    def test_space_much_smaller_than_exact_counting_for_long_streams(self):
        universe = 16
        stream_length = 10**6
        algo = make_algo(0.05, universe, stream_length, seed=12)
        # Simulate a long stream cheaply: only insert a prefix, the space accounting
        # depends on the declared capacities, not the items seen.
        algo.consume([i % universe for i in range(20000)])
        exact_bits = universe * 20  # exact counters: log2(10^6) ~ 20 bits each
        assert algo.space_breakdown()["S3"] <= exact_bits * 4

    def test_s2_abandoned_when_too_many_distinct(self):
        epsilon = 0.05
        universe = 18  # below 1/((1-0.1)*0.05) = 22.2 so the small-universe path runs
        algo = make_algo(epsilon, universe, 20000, seed=13)
        # distinct threshold = 1/(eps ln(1/eps)) ~ 6.7; feed 18 distinct items.
        stream = uniform_stream(20000, universe, rng=RandomSource(14))
        algo.consume(stream)
        assert algo.s2_abandoned
        assert algo.space_breakdown()["S2"] == 0
