"""The unified ``repro.*`` logger hierarchy and its CLI configuration.

Every module in the repo logs under one namespace — ``repro.service``,
``repro.service.client``, ``repro.service.checkpoint``, ``repro.replication``,
``repro.pipeline`` — so one :func:`configure_logging` call controls the whole
stack, and a deployment can raise just ``repro.replication`` to DEBUG while the
rest stays at WARNING, with plain stdlib ``logging`` semantics.

Two rules the hierarchy enforces by convention:

* **failure paths log**: a quarantined replica, a client reconnect-and-resume,
  and a checkpoint integrity rejection each emit exactly one WARNING/INFO line
  at the point of decision (they were previously visible only in return values
  and event lists);
* **libraries do not configure**: this module's :func:`configure_logging` is
  called by the CLI (``--log-level`` / ``--log-json``) and by nothing else, so
  embedding :mod:`repro` in a larger application never fights over handlers.

``--log-json`` emits one JSON object per line (ts/level/logger/message, plus
exception text when present) — the same line-oriented, greppable shape as the
trace log, so the two interleave cleanly in a collector.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

#: The root of the hierarchy; ``logging.getLogger("repro.<layer>")`` everywhere.
ROOT_LOGGER_NAME = "repro"


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log line: ``{"ts", "level", "logger", "message"}``.

    ``exc_info``, when present, is rendered into an ``exception`` string field
    so a traceback stays one (long) line — collectors ingest line-oriented
    streams, and a multi-line traceback would shear into orphan records.
    """

    def format(self, record: logging.LogRecord) -> str:
        event = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info and record.exc_info[0] is not None:
            event["exception"] = self.formatException(record.exc_info)
        return json.dumps(event, separators=(",", ":"))


def configure_logging(
    level: str = "info",
    json_format: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Attach one handler to the ``repro`` root logger (replacing any previous one).

    Args:
        level: standard level name, case-insensitive (``debug`` .. ``critical``).
        json_format: emit :class:`JsonLogFormatter` lines instead of the
            human-oriented ``HH:MM:SS level logger: message`` format.
        stream: destination text stream; defaults to ``sys.stderr`` (stdout is
            the CLI's structured, diffable output — logs must not pollute it).

    Returns:
        The configured ``repro`` logger (mostly for tests).

    Raises:
        SystemExit: on an unknown level name, so the CLI surfaces a clean
            usage error instead of a traceback.
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise SystemExit(f"unknown log level {level!r}; use debug/info/warning/error")
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(numeric)
    # Replace rather than append: configure_logging is idempotent, and a CLI
    # command that configures twice (tests invoking main() repeatedly) must not
    # duplicate every line.
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_format:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s",
                              datefmt="%H:%M:%S")
        )
    logger.addHandler(handler)
    # Stop at the hierarchy root: the application's own root logger config (or
    # lastResort stderr) must not double-print every repro record.
    logger.propagate = False
    return logger
