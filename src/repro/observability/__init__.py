"""Unified observability for the heavy-hitter service stack: metrics, traces, logs.

The paper's guarantee is probabilistic and the service built around it (PRs
4–6) is long-running and replicated — which makes the *operational* questions
(is a replica quarantined right now? how deep is the push queue? what does a
chunk-ingest latency distribution look like under load?) first-class, and
until this layer they were answerable only by the ad-hoc ``stats`` command.
Four pieces, all stdlib-only:

* :mod:`~repro.observability.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` (log-scaled buckets) behind a process-wide
  :class:`MetricRegistry` with labeled families, idempotent registration, and
  a near-zero disabled path (one boolean check per record call, measured by
  ``BENCH_observability.json``);
* :mod:`~repro.observability.tracing` — chunk-level spans
  (``produce`` → ``enqueue`` → ``ingest`` → ``combine`` →
  ``snapshot``/per-command) as a JSONL event log (:class:`Tracer`,
  ``repro serve --trace-log``);
* :mod:`~repro.observability.exposition` — Prometheus text rendering and the
  ``/metrics`` HTTP sidecar (:class:`MetricsHTTPServer`,
  ``repro serve --metrics-port``); the ``metrics`` frame command and
  ``repro metrics --connect`` render the same snapshot shape;
* :mod:`~repro.observability.logs` — the ``repro.*`` logger hierarchy and its
  CLI configuration (``--log-level`` / ``--log-json``).

Instrumented layers and their metric prefixes: ``repro_pipeline_*``
(:mod:`repro.pipeline`), ``repro_service_*`` (:mod:`repro.service`),
``repro_replication_*`` (:mod:`repro.replication`), ``repro_checkpoint_*``
(:mod:`repro.service.checkpoint`).  The full instrument catalog, scrape
quickstart, and trace-line format live in ``docs/OBSERVABILITY.md``.
"""

from repro.observability.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    MetricsHTTPServer,
    render_prometheus,
)
from repro.observability.logs import JsonLogFormatter, configure_logging
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricRegistry,
    get_registry,
    resolve_registry,
)
from repro.observability.tracing import NULL_TRACER, Tracer, resolve_tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "METRICS_SCHEMA_VERSION",
    "MetricFamily",
    "MetricRegistry",
    "MetricsHTTPServer",
    "NULL_TRACER",
    "PROMETHEUS_CONTENT_TYPE",
    "Tracer",
    "configure_logging",
    "get_registry",
    "render_prometheus",
    "resolve_registry",
    "resolve_tracer",
]
