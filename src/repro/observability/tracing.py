"""Chunk-level trace spans as a JSONL event log.

Metrics aggregate; traces *sequence*.  When a pipelined push stalls, the
question is rarely "what was the median chunk latency" but "which stage was the
chunk stuck in" — so the pipeline emits one JSON line per stage transition
(``produce`` → ``enqueue`` → ``ingest`` → ``combine`` and the query-side
``snapshot``/per-command spans), each carrying the chunk index, the item count,
and the stage duration.  The log is plain JSONL: one self-contained JSON object
per line, appendable from multiple threads (writes are serialized on a lock and
each line is written with a single ``write`` call), greppable, and loadable
with two lines of pandas.

Line shape (field order is not guaranteed; presence is)::

    {"ts": <time.time() at emit>, "span": "<stage>", "seconds": <duration>, ...}

plus whatever keyword fields the emitting stage attached (``chunk``, ``items``,
``command``, ``queue_depth``, ...).  ``ts`` is wall-clock for cross-process
correlation; ``seconds`` is measured with ``time.perf_counter`` for precision.

The disabled path is a null object, not an ``if`` at every call site: the
module-level :data:`NULL_TRACER` reports ``enabled = False`` and components
skip even the ``perf_counter`` calls when they see it, so tracing costs nothing
unless a sink was configured (``repro serve --trace-log PATH``).
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Optional, Union


class Tracer:
    """Append JSONL trace events to a file (or any text file-like sink).

    Args:
        sink: a path (opened in append mode, line-buffered) or an open text
            file-like object (not closed by :meth:`close` — the caller owns it).

    Thread-safe: concurrent emitters serialize on one lock, and every event is
    one ``write`` of one complete line, so lines never interleave.
    """

    enabled = True

    def __init__(self, sink: Union[str, IO[str]]) -> None:
        if isinstance(sink, str):
            self._file: IO[str] = open(sink, "a", encoding="utf-8", buffering=1)
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self._lock = threading.Lock()
        self._closed = False

    def emit(self, span: str, seconds: Optional[float] = None, **fields: object) -> None:
        """Write one event line: ``{"ts": ..., "span": span, "seconds": ..., **fields}``."""
        event = {"ts": time.time(), "span": span}
        if seconds is not None:
            event["seconds"] = seconds
        event.update(fields)
        line = json.dumps(event, separators=(",", ":")) + "\n"
        with self._lock:
            if self._closed:
                return
            self._file.write(line)

    def close(self) -> None:
        """Flush and close an owned file sink; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.flush()
            except (OSError, ValueError):
                pass
            if self._owns_file:
                try:
                    self._file.close()
                except OSError:
                    pass

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


class _NullTracer:
    """The disabled tracer: ``enabled`` is False and every call is a no-op.

    Components test ``tracer.enabled`` before even reading the clock, so an
    untraced run pays one attribute read per stage, nothing more.
    """

    enabled = False

    def emit(self, span: str, seconds: Optional[float] = None, **fields: object) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared disabled tracer; components default their ``tracer=None``
#: argument to this.
NULL_TRACER = _NullTracer()


def resolve_tracer(tracer) -> "Tracer | _NullTracer":
    """The constructor-argument convention: ``None`` means no tracing."""
    return tracer if tracer is not None else NULL_TRACER
