"""The zero-dependency metrics core: counters, gauges, histograms, one registry.

Every layer of the service stack (pipeline, server, replication, checkpointing)
records into a :class:`MetricRegistry` — a process-wide catalog of named
instruments — instead of growing its own ad-hoc counters.  The design goals, in
order:

* **zero dependencies** — the repo's no-new-packages rule holds for telemetry
  too: this module is plain stdlib (``threading`` + ``bisect``), and the
  Prometheus text rendering (:mod:`repro.observability.exposition`) is a string
  formatter, not a client library;
* **near-zero cost when disabled** — every record call checks one boolean
  attribute first and returns before touching a lock or a dict, so a sketch
  ingesting 50M items/s through a metrics-disabled registry pays a branch per
  *chunk* (not per item — instrumentation lives at chunk/command granularity
  throughout the repo), which the overhead-guard test and
  ``BENCH_observability.json`` hold to <5% end to end;
* **thread-safe recording** — the ingestion loop, every per-connection handler
  thread, and the replication fan-out all record concurrently; each instrument
  child carries its own small lock, taken only when enabled;
* **labeled families** — per-command latency is one histogram *family* with a
  ``command`` label, not eight copy-pasted histograms; children are created on
  first use and cached (``family.labels(command="push")`` is a dict hit after
  the first call);
* **idempotent registration** — components register their instruments in their
  constructors, and constructing two :class:`~repro.pipeline.PipelinedExecutor`
  replicas must not be an error: re-registering the same name with the same
  type/labels returns the existing family, while a *conflicting*
  re-registration (same name, different shape) raises.

The JSON-safe :meth:`MetricRegistry.snapshot` is the single source both
exposition paths render from: the ``metrics`` frame-protocol command ships it
to :meth:`repro.service.ServiceClient.metrics`, and the ``/metrics`` HTTP
sidecar renders it as Prometheus text — one snapshot shape, so the two views
can never drift.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Version tag carried by every :meth:`MetricRegistry.snapshot`; bump on
#: incompatible snapshot-shape changes (versioned like the frame protocol).
METRICS_SCHEMA_VERSION = 1

#: Log-scaled latency buckets (seconds): 1–2.5–5 per decade from 1µs to 60s,
#: so a ~20µs cached snapshot query and a ~3s failover land in well-separated
#: buckets of the same histogram.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)

#: Log-scaled size buckets (bytes), for payload/checkpoint size histograms.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0, 16777216.0,
    67108864.0, 268435456.0,
)


class Counter:
    """A monotonically increasing value (events, items, bytes, seconds spent)."""

    __slots__ = ("_registry", "_lock", "_value")

    def __init__(self, registry: "MetricRegistry") -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0; counters never go down)."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only go up; got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"value": self._value}


class Gauge:
    """A value that goes up and down (queue depth, live replicas, connections).

    Alongside the current value, the gauge tracks its **high-water mark** —
    the deepest queue occupancy ever observed is exactly what a perf artifact
    wants to record, and sampling-based scrapes would miss it.
    """

    __slots__ = ("_registry", "_lock", "_value", "_max")

    def __init__(self, registry: "MetricRegistry") -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = float(value)
            if self._value > self._max:
                self._max = self._value

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount
            if self._value > self._max:
                self._max = self._value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        """The high-water mark across the gauge's lifetime."""
        return self._max

    def _snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {"value": self._value, "max": self._max}


class Histogram:
    """A distribution over log-scaled buckets (latencies, sizes).

    ``buckets`` is the sorted sequence of finite upper bounds; an implicit
    ``+Inf`` bucket always exists, so ``observe`` never drops a value.  Counts
    are stored per-bucket (non-cumulative) and accumulated to the Prometheus
    cumulative convention at snapshot time — one ``bisect`` + two adds per
    observation.
    """

    __slots__ = ("_registry", "_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(
        self,
        registry: "MetricRegistry",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be distinct and increasing")
        self._registry = registry
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def _snapshot(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            total, cumulative = 0, []
            for bound, bucket_count in zip(self._bounds, counts):
                total += bucket_count
                cumulative.append({"le": bound, "count": total})
            cumulative.append({"le": "+Inf", "count": total + counts[-1]})
            return {"count": self._count, "sum": self._sum, "buckets": cumulative}


_INSTRUMENTS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named instrument plus its labeled children.

    An unlabeled family *is* its single child: ``registry.counter("x").inc()``
    works directly.  A labeled family hands out children via :meth:`labels`;
    children are cached by label values, so the hot path is one dict lookup.
    """

    def __init__(
        self,
        registry: "MetricRegistry",
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Sequence[float]],
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._registry = registry
        self._buckets = buckets
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not label_names:
            self._children[()] = self._build()

    def _build(self):
        if self.kind == "histogram":
            return Histogram(
                self._registry,
                self._buckets if self._buckets is not None else DEFAULT_LATENCY_BUCKETS,
            )
        return _INSTRUMENTS[self.kind](self._registry)

    def labels(self, **labels: str):
        """The child for one label assignment (created and cached on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._build())
        return child

    # Unlabeled families proxy the single child's record methods, so the common
    # case needs no .labels() ceremony.

    def _sole(self):
        if self.label_names:
            raise ValueError(f"{self.name} is labeled; use .labels(...)")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._sole().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole().dec(amount)

    def set(self, value: float) -> None:
        self._sole().set(value)

    def observe(self, value: float) -> None:
        self._sole().observe(value)

    @property
    def value(self) -> float:
        return self._sole().value

    @property
    def max(self) -> float:
        return self._sole().max

    @property
    def count(self) -> int:
        return self._sole().count

    @property
    def sum(self) -> float:
        return self._sole().sum

    def _snapshot_series(self) -> List[Dict[str, object]]:
        with self._lock:
            children = sorted(self._children.items())
        series = []
        for key, child in children:
            entry: Dict[str, object] = {
                "labels": dict(zip(self.label_names, key)),
            }
            entry.update(child._snapshot())
            series.append(entry)
        return series


class MetricRegistry:
    """The process-wide instrument catalog; every layer records into one of these.

    Args:
        enabled: record calls are no-ops while ``False`` (one boolean check,
            no lock, no mutation — the overhead-guard test pins this down).
            Toggle later with :meth:`enable` / :meth:`disable`; the flag is
            read per record call, so a toggle applies to instruments that
            already exist.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{family.kind} with labels {list(family.label_names)}; "
                        f"cannot re-register as a {kind} with {list(label_names)}"
                    )
                return family
            family = MetricFamily(self, name, kind, help_text, label_names, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._register(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._register(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family with the given bucket bounds."""
        return self._register(name, "histogram", help_text, labels, buckets=buckets)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe copy of every instrument, the one shape both exposition
        paths (the ``metrics`` frame command and the Prometheus sidecar) render
        from.  Series are sorted by label values and metrics by name, so the
        output is deterministic for a fixed recording history.
        """
        with self._lock:
            families = sorted(self._families.items())
        metrics: Dict[str, object] = {}
        for name, family in families:
            metrics[name] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "series": family._snapshot_series(),
            }
        return {
            "metrics_schema": METRICS_SCHEMA_VERSION,
            "enabled": self.enabled,
            "metrics": metrics,
        }


#: The process-wide default registry.  Components take ``registry=None`` to
#: mean "record here", so one ``repro serve`` process exposes one coherent
#: catalog; tests and benchmarks pass their own registries for isolation.
_DEFAULT_REGISTRY = MetricRegistry(enabled=True)


def get_registry() -> MetricRegistry:
    """The process-wide default :class:`MetricRegistry`."""
    return _DEFAULT_REGISTRY


def resolve_registry(registry: Optional[MetricRegistry]) -> MetricRegistry:
    """The constructor-argument convention: ``None`` means the process default."""
    return registry if registry is not None else _DEFAULT_REGISTRY
