"""Exposing the metric catalog: Prometheus text rendering + an HTTP sidecar.

Both exposure paths of the observability layer render the *same* JSON-safe
:meth:`~repro.observability.metrics.MetricRegistry.snapshot`:

* the ``metrics`` frame-protocol command ships the snapshot to
  :meth:`repro.service.ServiceClient.metrics`, and ``repro metrics --connect``
  renders it client-side with :func:`render_prometheus`;
* :class:`MetricsHTTPServer` (``repro serve --metrics-port P``) serves
  ``GET /metrics`` by rendering the server process's registry with the same
  function, plus ``GET /metrics.json`` with the raw snapshot.

One renderer for both on purpose (the repo's usual one-shared-helper rule): a
scrape and a CLI dump of the same process can differ only in recording time,
never in format.  The text format follows the Prometheus exposition conventions
— ``# HELP`` / ``# TYPE`` comments, cumulative ``_bucket{le=...}`` histogram
series with ``_sum``/``_count``, escaped label values — and is pinned by a
golden test, so a format regression is a test diff, not a broken dashboard.

The sidecar is stdlib ``http.server`` on a daemon thread: no web framework, no
new dependency, good enough for a scrape endpoint that serves one small text
document per poll interval.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro.observability.metrics import MetricRegistry

#: The Content-Type Prometheus expects from a text-format scrape target.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _format_value(value: float) -> str:
    """Render a sample value: integral floats as integers, the rest as repr.

    Deterministic (no locale, no rounding surprises) so the golden format test
    can pin exact output.
    """
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in merged.items()
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Render a :meth:`MetricRegistry.snapshot` dict as Prometheus text format.

    Takes the JSON-safe snapshot (not the registry) so the CLI can render a
    snapshot it received over the wire with byte-identical output to the
    serving process's own ``/metrics``.
    """
    lines = []
    for name, family in snapshot.get("metrics", {}).items():
        kind = family["type"]
        help_text = family.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for series in family["series"]:
            labels = series.get("labels", {})
            if kind == "histogram":
                for bucket in series["buckets"]:
                    le = bucket["le"]
                    le_text = le if isinstance(le, str) else _format_value(le)
                    lines.append(
                        f"{name}_bucket{_label_text(labels, {'le': le_text})} "
                        f"{_format_value(bucket['count'])}"
                    )
                lines.append(f"{name}_sum{_label_text(labels)} {_format_value(series['sum'])}")
                lines.append(f"{name}_count{_label_text(labels)} {_format_value(series['count'])}")
            else:
                lines.append(f"{name}{_label_text(labels)} {_format_value(series['value'])}")
    return "\n".join(lines) + "\n"


class _MetricsRequestHandler(BaseHTTPRequestHandler):
    """``GET /metrics`` (Prometheus text) and ``GET /metrics.json`` (raw snapshot)."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        registry: MetricRegistry = self.server.registry  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = render_prometheus(registry.snapshot()).encode("utf-8")
            content_type = PROMETHEUS_CONTENT_TYPE
        elif path == "/metrics.json":
            body = (json.dumps(registry.snapshot(), sort_keys=True) + "\n").encode("utf-8")
            content_type = "application/json"
        else:
            self.send_error(404, "try /metrics or /metrics.json")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        # Scrapes are periodic; routing them to stderr would drown the server's
        # own log lines.  The access log is a metric, not a log line.
        pass


class MetricsHTTPServer:
    """The Prometheus scrape sidecar: a daemon-thread HTTP server over one registry.

    Args:
        registry: the :class:`MetricRegistry` to expose (typically the serving
            process's default registry).
        host: bind address; default localhost, matching the frame protocol's
            trust-its-network posture.
        port: TCP port; ``0`` binds an ephemeral port — read it back from
            :attr:`port` after :meth:`start`.

    Usage::

        sidecar = MetricsHTTPServer(get_registry(), port=9109).start()
        ... # GET http://127.0.0.1:9109/metrics
        sidecar.close()
    """

    def __init__(
        self,
        registry: MetricRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsHTTPServer":
        """Bind and serve on a daemon thread; idempotent against double starts."""
        if self._httpd is not None:
            raise RuntimeError("this MetricsHTTPServer has already been started")
        httpd = ThreadingHTTPServer((self._host, self._port), _MetricsRequestHandler)
        httpd.daemon_threads = True
        httpd.registry = self._registry  # type: ignore[attr-defined]
        self._httpd = httpd
        self._host, self._port = httpd.server_address[:2]
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (resolved after :meth:`start` when 0 was asked)."""
        return self._port

    @property
    def url(self) -> str:
        """The scrape URL: ``http://host:port/metrics``."""
        return f"http://{self._host}:{self._port}/metrics"

    def close(self) -> None:
        """Stop serving and join the thread; idempotent."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
