"""The replicated sink: fan every chunk to R independently-seeded executors.

:class:`ReplicaGroup` mirrors the :class:`~repro.pipeline.PipelinedExecutor`
surface the service layer drives (``ingest_chunk`` / ``finalize`` / ``run`` /
``snapshot`` / ``sink_state`` / ``from_sink_state`` plus the progress counters),
so an :class:`~repro.service.IngestServer` can put a whole quorum behind its
push queue without the push/flush/finish plumbing changing at all.  See
:mod:`repro.replication` for the failure model and the quorum/median guarantee.

Consistency contract
--------------------

Chunk fan-out is atomic under the group lock: a chunk is delivered to every
live replica (or the replica is quarantined trying) before any query can
observe the new prefix.  All live replicas therefore always agree on
``items_processed`` — which is what makes :meth:`snapshot`'s quorum merge
well-defined (reports over the *same* prefix are combined, never a mix of
prefixes) and what makes a replacement cloned from any survivor interchangeable
with the others.

Failure and healing
-------------------

A replica that raises during ingestion — a real sketch bug, poisoned state, or
an injected :class:`~repro.replication.faults.InjectedFault` — is quarantined:
its (possibly half-updated) state is never read again, queries continue from
the survivors with ``degraded`` set, and the group's
:class:`~repro.replication.supervisor.ReplicaSupervisor` decides when to
re-seed a replacement from a survivor's :meth:`sink_state` capture (see the
supervisor module for the re-seed determinism argument).  Only when *every*
replica has failed does ingestion itself fail.
"""

from __future__ import annotations

import copy
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.core.results import HeavyHittersReport
from repro.observability.metrics import MetricRegistry, resolve_registry
from repro.observability.tracing import resolve_tracer
from repro.pipeline.executor import PipelinedExecutor, SinkState
from repro.pipeline.producer import (
    DEFAULT_CHUNK_ITEMS,
    DEFAULT_QUEUE_DEPTH,
    ArrayBatchSource,
    ChunkProducer,
)
from repro.primitives.space import SpaceMeter
from repro.replication.faults import FaultPlan, InjectedFault
from repro.replication.supervisor import ReplicaSupervisor
from repro.sharding.mergeable import merge_all

logger = logging.getLogger("repro.replication")


@dataclass
class ReplicaStatus:
    """Health bookkeeping for one replica slot."""

    healthy: bool = True
    quarantined_chunk: Optional[int] = None  # chunk index the replica failed on
    quarantined_at: Optional[float] = None  # time.monotonic() at quarantine
    error: Optional[str] = None
    heals: int = 0  # times this slot was re-seeded from a survivor

    def as_payload(self, index: int) -> Dict[str, object]:
        """JSON-safe summary for ``stats`` replies."""
        return {
            "replica": index,
            "healthy": self.healthy,
            "quarantined_chunk": self.quarantined_chunk,
            "error": self.error,
            "heals": self.heals,
        }


@dataclass
class GroupSnapshot:
    """A consistent mid-ingest quorum answer: one merged report over one prefix.

    ``report`` is the :meth:`HeavyHittersReport.quorum_merge` of the live
    replicas' snapshot reports; ``degraded`` is True while any replica slot is
    quarantined (the answer then rests on fewer than the configured R replicas,
    still valid under Definition 1 per surviving sketch, but with the weaker
    single-replica failure probability).  ``space_bits`` sums the live
    replicas' merged snapshot footprints.
    """

    report: HeavyHittersReport
    items_processed: int
    space_bits: int
    degraded: bool
    live_replicas: int
    num_replicas: int
    replica_reports: List[HeavyHittersReport] = field(default_factory=list)


@dataclass
class GroupRunResult:
    """Everything a replicated run produces; the group analogue of
    :class:`~repro.pipeline.PipelinedRunResult`.

    ``report`` is the quorum merge across the live replicas' final reports;
    ``replica_results`` holds each slot's individual
    :class:`~repro.pipeline.PipelinedRunResult` (``None`` for a slot that was
    still quarantined at finish).  ``space`` folds every live replica's meter
    under a ``replica<i>/`` prefix, so the R× space cost of replication is
    visible in the accounting rather than averaged away.
    """

    report: HeavyHittersReport
    replica_results: List[Optional[Any]]
    degraded: bool
    num_replicas: int
    live_replicas: int
    quorum: int
    num_shards: int
    shard_sizes: List[int]
    items_processed: int
    chunks: int
    queue_depth: int
    max_queue_depth: int
    seconds: float
    ingest_seconds: float
    combine_seconds: float
    space: SpaceMeter = field(default_factory=SpaceMeter)
    events: List[Dict[str, object]] = field(default_factory=list)

    def space_bits(self) -> int:
        """Combined space across every live replica, in bits."""
        return self.space.total_bits()

    def replica_report(self, index: int) -> Optional[HeavyHittersReport]:
        """Replica ``index``'s individual final report (``None`` if it died)."""
        result = self.replica_results[index]
        return None if result is None else result.report


@dataclass
class GroupSinkState:
    """A chunk-aligned checkpoint of a whole replica group.

    ``states`` holds one :class:`~repro.pipeline.SinkState` per replica slot,
    ``None`` for a slot that was quarantined at capture time.
    :meth:`ReplicaGroup.from_sink_state` restores at **full strength**: missing
    slots are re-seeded from the first healthy state's deep copy (the same
    clone-at-a-boundary operation the supervisor uses live), so a restore is
    also a heal.
    """

    kind: str  # always "replicated"
    states: List[Optional[SinkState]]
    items_processed: int
    chunks: int
    statuses: List[Dict[str, object]] = field(default_factory=list)


class ReplicaGroup:
    """Fan chunks to R :class:`~repro.pipeline.PipelinedExecutor` replicas;
    answer by quorum.

    Args:
        replicas: R executors over the same sketch configuration but distinct
            seeds.  All must be unconsumed and agree on ``items_processed``
            (zero for fresh groups, the restored prefix for
            :meth:`from_sink_state` groups) — disagreeing replicas would make
            the quorum merge compare reports over different prefixes.
        chunk_size / queue_depth: chunk granularity and producer bound for
            :meth:`run`, mirrored from the executor surface so the service
            layer can read them off the group.
        supervisor: failure policy; defaults to immediate auto-heal
            (:class:`~repro.replication.ReplicaSupervisor`).
        fault_plan: optional :class:`~repro.replication.FaultPlan` whose
            ``kill-replica`` entries fire during :meth:`ingest_chunk`.
        quorum: reports appear in the merged answer iff at least this many
            live replicas report them; defaults to a majority of the *live*
            replicas at query time (⌈(live+1)/2⌉), so degraded groups keep a
            meaningful quorum rule.
        registry: the :class:`~repro.observability.MetricRegistry` recording
            the ``repro_replication_*`` instruments (live-replica gauge,
            failover/heal counters, degraded-time accumulation); ``None`` means
            the process-wide default.
        tracer: a :class:`~repro.observability.Tracer` for the group's
            producer-side spans during :meth:`run`; ``None`` disables tracing.

    Raises:
        ValueError: on an empty group, a consumed replica, or disagreeing
            replica prefixes/shard counts.
    """

    def __init__(
        self,
        replicas: List[PipelinedExecutor],
        chunk_size: int = DEFAULT_CHUNK_ITEMS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        supervisor: Optional[ReplicaSupervisor] = None,
        fault_plan: Optional[FaultPlan] = None,
        quorum: Optional[int] = None,
        registry: Optional[MetricRegistry] = None,
        tracer=None,
    ) -> None:
        if not replicas:
            raise ValueError("a ReplicaGroup needs at least one replica")
        for index, replica in enumerate(replicas):
            if replica._finished or (replica._started and replica.items_processed == 0):
                raise ValueError(f"replica {index} has already been consumed")
            if replica.items_processed != replicas[0].items_processed:
                raise ValueError("replicas disagree on their ingested prefix")
            if replica.num_shards != replicas[0].num_shards:
                raise ValueError("replicas disagree on their shard count")
        if quorum is not None and not 1 <= quorum <= len(replicas):
            raise ValueError(f"quorum must be in [1, {len(replicas)}], got {quorum}")
        self.replicas: List[PipelinedExecutor] = list(replicas)
        self.num_replicas = len(self.replicas)
        self.chunk_size = chunk_size
        self.queue_depth = queue_depth
        self.num_shards = self.replicas[0].num_shards
        self.items_processed = self.replicas[0].items_processed
        self.supervisor = supervisor if supervisor is not None else ReplicaSupervisor()
        self.fault_plan = fault_plan
        self._quorum = quorum
        self._status: List[ReplicaStatus] = [ReplicaStatus() for _ in self.replicas]
        self.events: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._started = False
        self._finished = False
        self._chunks_ingested = self.replicas[0]._chunks_ingested
        self._max_queue_depth = 0
        self._ingest_started_at: Optional[float] = None
        self._registry = resolve_registry(registry)
        self._tracer = resolve_tracer(tracer)
        self._metric_live_replicas = self._registry.gauge(
            "repro_replication_live_replicas",
            "Healthy replica slots in the group (R minus quarantined).",
        )
        self._metric_failovers = self._registry.counter(
            "repro_replication_failovers_total",
            "Replica quarantines (the group failed over to the survivors).",
        )
        self._metric_heals = self._registry.counter(
            "repro_replication_heals_total",
            "Quarantined slots re-seeded from a healthy donor.",
        )
        self._metric_degraded_seconds = self._registry.counter(
            "repro_replication_degraded_seconds_total",
            "Cumulative wall-clock seconds replica slots spent quarantined "
            "(accumulated per slot at heal or finalize time).",
        )
        self._metric_live_replicas.set(self.live_replicas)

    # -- introspection ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while any replica slot is quarantined."""
        return any(not status.healthy for status in self._status)

    @property
    def live_replicas(self) -> int:
        """How many replica slots are currently healthy."""
        return sum(1 for status in self._status if status.healthy)

    @property
    def snapshot_cache_hits(self) -> int:
        return sum(replica.snapshot_cache_hits for replica in self.replicas)

    @property
    def snapshot_cache_misses(self) -> int:
        return sum(replica.snapshot_cache_misses for replica in self.replicas)

    def quorum_for(self, live: int) -> int:
        """The membership quorum used when ``live`` replicas answer."""
        if self._quorum is not None:
            return min(self._quorum, live)
        return live // 2 + 1

    def replica_status_payload(self) -> List[Dict[str, object]]:
        """JSON-safe per-slot health summaries (the ``stats`` reply's ``replicas``)."""
        return [status.as_payload(index) for index, status in enumerate(self._status)]

    def events_payload(self) -> List[Dict[str, object]]:
        """JSON-safe copy of the failure/heal event log."""
        return [dict(event) for event in self.events]

    def infer_universe_size(self) -> Optional[int]:
        """The universe bound of the replicas' sketches (for server validation)."""
        first = self.replicas[0]
        if first.executor is not None:
            return first.executor.router.universe_size
        return getattr(first.sketch, "universe_size", None)

    # -- ingestion ----------------------------------------------------------------------

    def _live_items(self) -> List:
        return [(index, replica) for index, replica in enumerate(self.replicas)
                if self._status[index].healthy]

    def ingest_chunk(self, chunk) -> None:
        """Deliver one chunk to every live replica, atomically vs :meth:`snapshot`.

        A replica that raises (sketch failure or injected kill) is quarantined
        mid-loop: the survivors still receive the chunk, so the group's prefix
        advances as long as at least one replica lives.  At the end of the
        chunk the supervisor gets a chance to heal quarantined slots from a
        survivor (a chunk boundary is the only point at which a clone and its
        donor provably hold the same prefix).

        Raises:
            RuntimeError: if the group was finalized, or every replica has
                failed (the last error is chained).
        """
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    "this ReplicaGroup has already merged its sinks; "
                    "build a fresh one per run"
                )
            self._started = True
            if self._ingest_started_at is None:
                self._ingest_started_at = time.perf_counter()
            chunk_index = self._chunks_ingested
            last_error: Optional[BaseException] = None
            for index, replica in self._live_items():
                try:
                    if self.fault_plan is not None and self.fault_plan.fire_kill(
                        index, chunk_index
                    ):
                        raise InjectedFault(
                            f"fault plan killed replica {index} at chunk {chunk_index}"
                        )
                    replica.ingest_chunk(chunk)
                except Exception as exc:  # noqa: BLE001 - quarantine, don't crash the stream
                    last_error = exc
                    self._quarantine(index, chunk_index, exc)
            if not any(status.healthy for status in self._status):
                raise RuntimeError(
                    f"all {self.num_replicas} replicas have failed; "
                    f"last error: {last_error!r}"
                ) from last_error
            self._chunks_ingested += 1
            self.items_processed += len(chunk)
            self._maybe_heal()

    def resume_after_ingest(self) -> None:
        """Re-arm the one permitted :meth:`run` after driver-side chunk replay.

        The group analogue of
        :meth:`~repro.pipeline.PipelinedExecutor.resume_after_ingest`: crash
        recovery replays journal chunks through :meth:`ingest_chunk`, then the
        server's queue-driven run covers the tail.  Every live replica is
        re-armed along with the group's own claim.

        Raises:
            RuntimeError: if the group was already finalized.
        """
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    "this ReplicaGroup has already merged its sinks; "
                    "there is nothing left to resume"
                )
            for _, replica in self._live_items():
                replica.resume_after_ingest()
            self._started = False

    def _quarantine(self, index: int, chunk_index: int, error: BaseException) -> None:
        """Mark a replica failed; its state is never read again (it may be poisoned)."""
        status = self._status[index]
        status.healthy = False
        status.quarantined_chunk = chunk_index
        status.quarantined_at = time.monotonic()
        status.error = f"{type(error).__name__}: {error}"
        self.events.append({
            "event": "replica-failed",
            "replica": index,
            "chunk": chunk_index,
            "error": status.error,
        })
        self._metric_failovers.inc()
        self._metric_live_replicas.set(
            sum(1 for entry in self._status if entry.healthy)
        )
        logger.warning(
            "replica %d quarantined at chunk %d (%s); serving from %d of %d replicas",
            index, chunk_index, status.error,
            sum(1 for entry in self._status if entry.healthy), self.num_replicas,
        )

    def _maybe_heal(self) -> None:
        """Re-seed quarantined slots whose heal is due (supervisor policy).

        Called at the end of each chunk, under the group lock.  The donor is
        the lowest-index healthy replica; its :meth:`sink_state` capture is a
        pure read (the donor's own future is untouched) and the replacement
        adopts the captured, deterministically re-seeded state — see
        :mod:`repro.replication.supervisor` for why the replacement's future
        is bit-for-bit reproducible.
        """
        live = self._live_items()
        if not live:
            return
        donor_index, donor = live[0]
        for index, status in enumerate(self._status):
            if status.healthy:
                continue
            if not self.supervisor.should_heal(status, self._chunks_ingested):
                continue
            replacement = self.supervisor.build_replacement(
                donor, chunk_size=self.chunk_size, queue_depth=self.queue_depth
            )
            failover_seconds = (
                time.monotonic() - status.quarantined_at
                if status.quarantined_at is not None else 0.0
            )
            self.replicas[index] = replacement
            self._status[index] = ReplicaStatus(heals=status.heals + 1)
            self.supervisor.record_heal()
            self.events.append({
                "event": "replica-healed",
                "replica": index,
                "donor": donor_index,
                "chunk": self._chunks_ingested,
                "failover_seconds": failover_seconds,
            })
            self._metric_heals.inc()
            self._metric_degraded_seconds.inc(failover_seconds)
            self._metric_live_replicas.set(
                sum(1 for entry in self._status if entry.healthy)
            )
            logger.info(
                "replica %d healed from donor %d at chunk %d after %.3fs quarantined",
                index, donor_index, self._chunks_ingested, failover_seconds,
            )

    def run(
        self,
        source,
        report_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> GroupRunResult:
        """Replay ``source`` through a bounded chunk queue into every replica.

        The group analogue of :meth:`PipelinedExecutor.run` — one producer
        thread parses, every live replica consumes each chunk — so the service
        layer's ingestion loop drives a group exactly as it drives a single
        executor.

        Raises:
            RuntimeError: if the group already ran or was driven through
                :meth:`ingest_chunk`.
        """
        with self._lock:
            # Check-and-claim atomically: two threads racing run() must see
            # exactly one winner, or both would fan chunks into the replicas.
            if self._started or self._finished:
                raise RuntimeError(
                    "this ReplicaGroup has already run; build a fresh one per run"
                )
            self._started = True
        producer = ChunkProducer(
            source,
            chunk_size=self.chunk_size,
            queue_depth=self.queue_depth,
            registry=self._registry,
            tracer=self._tracer,
        )
        if not isinstance(source, ArrayBatchSource):
            # Same stamp rule as PipelinedExecutor.run: replay sources begin
            # ingesting now; push-driven sources stamp on the first chunk
            # (ingest_chunk sets it lazily, under the same lock).
            with self._lock:
                self._ingest_started_at = time.perf_counter()
        try:
            for chunk in producer:
                self.ingest_chunk(chunk)
        finally:
            producer.close()
        self._max_queue_depth = producer.max_queue_depth
        return self.finalize(report_kwargs)

    def finalize(
        self, report_kwargs: Optional[Mapping[str, Any]] = None
    ) -> GroupRunResult:
        """Merge every live replica, quorum-combine their reports, account space.

        Raises:
            RuntimeError: on a second finalize of the same group.
        """
        now = time.perf_counter()
        started = self._ingest_started_at if self._ingest_started_at is not None else now
        ingest_seconds = now - started
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    "this ReplicaGroup has already merged its sinks; "
                    "build a fresh one per run"
                )
            self._finished = True
            live = self._live_items()
            if not live:
                raise RuntimeError("cannot finalize a ReplicaGroup with no live replicas")
            replica_results: List[Optional[Any]] = [None] * self.num_replicas
            for index, replica in live:
                replica_results[index] = replica.finalize(report_kwargs)
            quorum = self.quorum_for(len(live))
            report = HeavyHittersReport.quorum_merge(
                [replica_results[index].report for index, _ in live], quorum=quorum
            )
            space = SpaceMeter()
            for index, _ in live:
                space.merge(replica_results[index].space, prefix=f"replica{index}/")
            shard_sizes = list(replica_results[live[0][0]].shard_sizes)
            degraded = len(live) < self.num_replicas
            # Close the degraded-time books: slots still quarantined at the end
            # of the run contribute their open interval now (a healed slot
            # already contributed at heal time).
            finished_at = time.monotonic()
            for status in self._status:
                if not status.healthy and status.quarantined_at is not None:
                    self._metric_degraded_seconds.inc(
                        finished_at - status.quarantined_at
                    )
        combine_seconds = time.perf_counter() - now
        return GroupRunResult(
            report=report,
            replica_results=replica_results,
            degraded=degraded,
            num_replicas=self.num_replicas,
            live_replicas=len(live),
            quorum=quorum,
            num_shards=self.num_shards,
            shard_sizes=shard_sizes,
            items_processed=self.items_processed,
            chunks=self._chunks_ingested,
            queue_depth=self.queue_depth,
            max_queue_depth=self._max_queue_depth,
            seconds=ingest_seconds + combine_seconds,
            ingest_seconds=ingest_seconds,
            combine_seconds=combine_seconds,
            space=space,
            events=self.events_payload(),
        )

    # -- mid-ingest queries -------------------------------------------------------------

    def snapshot(
        self, report_kwargs: Optional[Mapping[str, Any]] = None
    ) -> GroupSnapshot:
        """A consistent quorum answer over the current chunk-aligned prefix.

        Takes the group lock — freezing the fan-out, so every live replica's
        snapshot reflects the *same* prefix — and quorum-merges their reports.
        Each replica's own versioned snapshot cache still applies, so repeated
        queries at an unchanged prefix cost one small merge of cached reports,
        not R sketch deep-copies.

        Raises:
            RuntimeError: after :meth:`finalize` — use the run result.
        """
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    "ingestion has finished and the replicas are merged; "
                    "use the run result's report"
                )
            live = self._live_items()
            if not live:
                raise RuntimeError("no live replicas to answer from")
            snapshots = [replica.snapshot(report_kwargs) for _, replica in live]
            quorum = self.quorum_for(len(live))
            report = HeavyHittersReport.quorum_merge(
                [snap.report for snap in snapshots], quorum=quorum
            )
            return GroupSnapshot(
                report=report,
                items_processed=snapshots[0].items_processed,
                space_bits=sum(int(snap.sketch.space_bits()) for snap in snapshots),
                degraded=self.degraded,
                live_replicas=len(live),
                num_replicas=self.num_replicas,
                replica_reports=[snap.report for snap in snapshots],
            )

    def live_stats(self) -> Dict[str, object]:
        """Space accounting and per-replica health for a mid-ingest ``stats`` reply.

        Like the single-executor stats path, the space numbers come from a
        merged copy of each live replica's sink state (no report is built).
        """
        with self._lock:
            if self._finished:
                raise RuntimeError("the group has finished; answer from the result")
            live = self._live_items()
            replicas_payload = self.replica_status_payload()
            total_bits = 0
            breakdown: Dict[str, int] = {}
            shard_sizes: List[int] = [0] * self.num_shards
            for index, replica in live:
                state = replica.sink_state()
                sketch = merge_all(state.sketches)
                bits = int(sketch.space_bits())
                total_bits += bits
                replicas_payload[index]["space_bits"] = bits
                replicas_payload[index]["items_processed"] = state.items_processed
                replicas_payload[index]["chunks"] = state.chunks
                for name, value in sketch.space_breakdown().items():
                    breakdown[f"replica{index}/{name}"] = int(value)
                shard_sizes = list(state.shard_sizes)
            return {
                "items_processed": self.items_processed,
                "chunks": self._chunks_ingested,
                "shard_sizes": shard_sizes,
                "space_bits": total_bits,
                "space_breakdown": breakdown,
                "replicas": replicas_payload,
                "degraded": self.degraded,
                "live_replicas": len(live),
                "num_replicas": self.num_replicas,
                "events": self.events_payload(),
            }

    # -- checkpoint / restore -----------------------------------------------------------

    def sink_state(self) -> GroupSinkState:
        """Capture every live replica's resumable state for checkpointing.

        Quarantined slots are captured as ``None`` — their state may be
        poisoned, and :meth:`from_sink_state` re-seeds them from a healthy
        capture instead.

        Raises:
            RuntimeError: after :meth:`finalize`.
        """
        with self._lock:
            if self._finished:
                raise RuntimeError(
                    "ingestion has finished and the replicas are merged; "
                    "there is no resumable state left to checkpoint"
                )
            states: List[Optional[SinkState]] = []
            for index, replica in enumerate(self.replicas):
                states.append(
                    replica.sink_state() if self._status[index].healthy else None
                )
            if not any(state is not None for state in states):
                raise RuntimeError("no live replica state to checkpoint")
            return GroupSinkState(
                kind="replicated",
                states=states,
                items_processed=self.items_processed,
                chunks=self._chunks_ingested,
                statuses=self.replica_status_payload(),
            )

    @classmethod
    def from_sink_state(
        cls,
        state: GroupSinkState,
        chunk_size: int = DEFAULT_CHUNK_ITEMS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        supervisor: Optional[ReplicaSupervisor] = None,
        fault_plan: Optional[FaultPlan] = None,
        registry: Optional[MetricRegistry] = None,
        tracer=None,
    ) -> "ReplicaGroup":
        """Rebuild a **full-strength** group from a captured :class:`GroupSinkState`.

        Slots that were quarantined at capture time are restored from a deep
        copy of the first healthy slot's state — the same
        clone-at-a-boundary the live supervisor performs, with the same
        determinism (the copy re-seeds its randomness deterministically), so a
        restore doubles as a heal.

        Raises:
            ValueError: if the capture holds no healthy state at all.
        """
        donor = next((s for s in state.states if s is not None), None)
        if donor is None:
            raise ValueError("the group checkpoint holds no healthy replica state")
        replicas = []
        for slot in state.states:
            adopted = slot if slot is not None else copy.deepcopy(donor)
            replicas.append(PipelinedExecutor.from_sink_state(
                adopted, chunk_size=chunk_size, queue_depth=queue_depth
            ))
        group = cls(
            replicas,
            chunk_size=chunk_size,
            queue_depth=queue_depth,
            supervisor=supervisor,
            fault_plan=fault_plan,
            registry=registry,
            tracer=tracer,
        )
        group.items_processed = state.items_processed
        group._chunks_ingested = state.chunks
        # _started stays False, as in PipelinedExecutor.from_sink_state: the
        # adopted prefix is accounted for and the one permitted run is the tail.
        return group
