"""Deterministic fault injection: scripted failures for the replication stack.

A :class:`FaultPlan` is a list of one-shot :class:`FaultSpec` entries that the
replication and service layers consult at well-defined points:

* ``kill-replica`` — :meth:`FaultPlan.fire_kill` is checked by
  :meth:`repro.replication.ReplicaGroup.ingest_chunk` before each replica
  ingests a chunk; when it fires, the replica raises :class:`InjectedFault`
  mid-ingest and is quarantined exactly as a real sketch failure would be.
* ``drop-connection`` — :meth:`FaultPlan.fire_drop` is checked by
  :meth:`repro.service.ServiceClient.push_stream` before each push frame; when
  it fires, the client's socket is cut, exercising the reconnect-and-resume
  path against a real server.
* ``corrupt-checkpoint`` — :meth:`FaultPlan.should_corrupt` tells a harness to
  byte-flip a checkpoint file (:func:`corrupt_file`) after it is written, so
  restore-time rejection is tested against real corruption, not a mock.
* ``crash-process`` — :meth:`FaultPlan.fire_crash` is checked by
  :meth:`repro.durability.WriteAheadLog.append`; when it fires, the process
  writes *half* of the journal record and ``os._exit``\\ s — a deterministic
  ``kill -9`` mid-append that leaves a real torn tail for recovery to repair.
* ``torn-write`` — :meth:`FaultPlan.pop_torn_bytes` tells the serve command to
  damage the journal's tail (:func:`repro.durability.wal.tear_tail`) after the
  process exits: truncate ``bytes=B`` bytes, or flip the final byte when
  ``B=0``, so torn-tail truncation is tested against real on-disk damage.

Every fault is **deterministic** (it fires at an exact chunk/frame index,
exactly once) so a failover test is reproducible: the same plan against the
same stream produces the same degraded window every run.  Plans are also
parseable from compact CLI specs (:meth:`FaultPlan.parse`), so the chaos-smoke
CI job scripts the same machinery the unit tests use::

    repro serve  ... --replicas 3 --fault kill:replica=1,after_chunk=3
    repro push   ... --fault drop:after_frame=5

This module deliberately imports nothing heavy (no numpy, no service/pipeline
modules) so both the client and the replica group can depend on it without
import cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional


class InjectedFault(RuntimeError):
    """A scripted failure raised by fault injection (never by real code paths)."""


@dataclass
class FaultSpec:
    """One scripted fault; ``fired`` makes it one-shot.

    ``kind`` is one of ``"kill-replica"`` (needs ``replica`` and
    ``after_chunk``), ``"drop-connection"`` (needs ``after_frame``),
    ``"corrupt-checkpoint"`` (no operands), ``"crash-process"`` (needs
    ``after_chunk``), or ``"torn-write"`` (needs ``bytes``).  Chunk and frame
    indices count completed units: ``after_chunk=3`` kills the replica while
    it ingests the chunk that would be its fourth (index 3, zero-based);
    ``after_frame=5`` cuts the connection once five push frames have been
    sent.  For ``crash-process``, ``after_chunk=C`` fires during WAL append
    number ``C`` (one-based, so ``C`` acked batches precede the crash); for
    ``torn-write``, ``bytes=B`` truncates ``B`` bytes off the journal tail
    after the serve exits (``B=0`` flips the final byte instead).
    """

    kind: str
    replica: Optional[int] = None
    after_chunk: Optional[int] = None
    after_frame: Optional[int] = None
    bytes: Optional[int] = None
    fired: bool = False

    def __post_init__(self) -> None:
        if self.kind == "kill-replica":
            if self.replica is None or self.after_chunk is None:
                raise ValueError("kill-replica needs replica= and after_chunk=")
            if self.replica < 0 or self.after_chunk < 0:
                raise ValueError("kill-replica operands cannot be negative")
        elif self.kind == "drop-connection":
            if self.after_frame is None or self.after_frame < 0:
                raise ValueError("drop-connection needs a non-negative after_frame=")
        elif self.kind == "crash-process":
            if self.after_chunk is None or self.after_chunk < 1:
                raise ValueError("crash-process needs a positive after_chunk=")
        elif self.kind == "torn-write":
            if self.bytes is None or self.bytes < 0:
                raise ValueError("torn-write needs a non-negative bytes=")
        elif self.kind != "corrupt-checkpoint":
            raise ValueError(f"unknown fault kind {self.kind!r}")


@dataclass
class FaultPlan:
    """A deterministic schedule of one-shot faults (see module docstring)."""

    specs: List[FaultSpec] = field(default_factory=list)

    # -- construction -------------------------------------------------------------------

    @classmethod
    def kill_replica(cls, replica: int, after_chunk: int) -> "FaultPlan":
        """A plan with a single kill: replica ``replica`` dies at chunk ``after_chunk``."""
        return cls([FaultSpec("kill-replica", replica=replica, after_chunk=after_chunk)])

    @classmethod
    def drop_connection(cls, after_frame: int) -> "FaultPlan":
        """A plan with a single connection cut after ``after_frame`` push frames."""
        return cls([FaultSpec("drop-connection", after_frame=after_frame)])

    @classmethod
    def corrupt_checkpoint(cls) -> "FaultPlan":
        """A plan instructing the harness to corrupt the next checkpoint file."""
        return cls([FaultSpec("corrupt-checkpoint")])

    @classmethod
    def crash_process(cls, after_chunk: int) -> "FaultPlan":
        """A plan with one process crash mid-way through WAL append ``after_chunk``."""
        return cls([FaultSpec("crash-process", after_chunk=after_chunk)])

    @classmethod
    def torn_write(cls, bytes_count: int) -> "FaultPlan":
        """A plan tearing ``bytes_count`` bytes off the WAL tail after serve exits."""
        return cls([FaultSpec("torn-write", bytes=bytes_count)])

    @staticmethod
    def parse_spec(text: str) -> FaultSpec:
        """Parse one CLI fault spec.

        Grammar: ``KIND[:key=value[,key=value...]]`` with kinds ``kill``
        (``replica=``, ``after_chunk=``), ``drop`` (``after_frame=``),
        ``corrupt`` (no operands), ``crash`` (``after_chunk=``), and ``torn``
        (``bytes=``)::

            kill:replica=1,after_chunk=3
            drop:after_frame=5
            corrupt
            crash:after_chunk=4
            torn:bytes=7

        Raises:
            ValueError: on an unknown kind, unknown key, or malformed operand.
        """
        head, _, tail = text.strip().partition(":")
        operands = {}
        if tail:
            for part in tail.split(","):
                key, separator, value = part.partition("=")
                if not separator:
                    raise ValueError(f"fault operand {part!r} is not key=value")
                try:
                    operands[key.strip()] = int(value)
                except ValueError as exc:
                    raise ValueError(f"fault operand {part!r} needs an integer value") from exc
        kinds = {"kill": "kill-replica", "drop": "drop-connection",
                 "corrupt": "corrupt-checkpoint", "crash": "crash-process",
                 "torn": "torn-write"}
        if head not in kinds:
            raise ValueError(
                f"unknown fault kind {head!r}; expected kill, drop, corrupt, "
                f"crash, or torn"
            )
        allowed = {"kill": {"replica", "after_chunk"}, "drop": {"after_frame"},
                   "corrupt": set(), "crash": {"after_chunk"},
                   "torn": {"bytes"}}[head]
        unknown = set(operands) - allowed
        if unknown:
            raise ValueError(f"fault {head!r} does not take {sorted(unknown)}")
        return FaultSpec(kinds[head], **operands)

    @classmethod
    def parse(cls, texts: Iterable[str]) -> "FaultPlan":
        """Parse several CLI fault specs into one plan."""
        return cls([cls.parse_spec(text) for text in texts])

    # -- firing points ------------------------------------------------------------------

    def fire_kill(self, replica: int, chunk_index: int) -> bool:
        """True (once) iff a kill is scheduled for this replica at this chunk."""
        for spec in self.specs:
            if (spec.kind == "kill-replica" and not spec.fired
                    and spec.replica == replica and chunk_index >= spec.after_chunk):
                spec.fired = True
                return True
        return False

    def fire_drop(self, frames_sent: int) -> bool:
        """True (once) iff a connection cut is scheduled at this frame count."""
        for spec in self.specs:
            if (spec.kind == "drop-connection" and not spec.fired
                    and frames_sent >= spec.after_frame):
                spec.fired = True
                return True
        return False

    def fire_crash(self, append_index: int) -> bool:
        """True (once) iff a process crash is scheduled at this WAL append.

        ``append_index`` is one-based (the append being attempted), so a spec
        with ``after_chunk=C`` tears append ``C`` itself: ``C - 1`` batches
        were journaled and acked before the process dies.
        """
        for spec in self.specs:
            if (spec.kind == "crash-process" and not spec.fired
                    and append_index >= spec.after_chunk):
                spec.fired = True
                return True
        return False

    def pop_torn_bytes(self) -> Optional[int]:
        """The scheduled torn-write byte count (once), or ``None``.

        Consumed by the serve command *after* the server exits, mirroring the
        post-exit ``corrupt-checkpoint`` handling: the damage happens to a
        closed journal, exactly like a real torn write surfaces to recovery.
        """
        for spec in self.specs:
            if spec.kind == "torn-write" and not spec.fired:
                spec.fired = True
                return spec.bytes
        return None

    def should_corrupt(self) -> bool:
        """True (once) iff the plan schedules checkpoint corruption."""
        for spec in self.specs:
            if spec.kind == "corrupt-checkpoint" and not spec.fired:
                spec.fired = True
                return True
        return False

    def pending(self) -> List[FaultSpec]:
        """The faults that have not fired yet (for asserting a plan completed)."""
        return [spec for spec in self.specs if not spec.fired]


def corrupt_file(path: str, offset: Optional[int] = None) -> int:
    """Flip one byte of ``path`` in place; returns the corrupted offset.

    Deterministic: without an explicit ``offset`` the byte at the middle of the
    file is flipped, so repeated runs corrupt the same position.  Used by the
    crash-simulation tests and the chaos-smoke CI job to verify that
    :class:`~repro.service.Checkpointer` *rejects* a damaged checkpoint instead
    of unpickling garbage into a half-built server.

    Raises:
        ValueError: if the file is empty (nothing to corrupt).
    """
    size = os.path.getsize(path)
    if size == 0:
        raise ValueError(f"cannot corrupt empty file {path!r}")
    position = size // 2 if offset is None else offset
    if not 0 <= position < size:
        raise ValueError(f"corrupt offset {position} outside file of {size} bytes")
    with open(path, "r+b") as handle:
        handle.seek(position)
        byte = handle.read(1)
        handle.seek(position)
        handle.write(bytes([byte[0] ^ 0xFF]))
    return position
