"""Replicated sketch groups: quorum queries, failover, and fault injection.

Each sketch in this repo answers Definition 1 queries correctly only with
probability 1−δ.  Running ``R`` independently-seeded replicas of the same
configuration and answering by **quorum membership + median estimate**
(:meth:`repro.core.results.HeavyHittersReport.quorum_merge`) tightens the
effective failure probability to roughly δ^⌈R/2⌉ — a majority of replicas must
fail *on the same item* for the merged answer to be wrong — and, operationally,
lets the service survive a replica crash mid-ingest without losing the stream.

Layout:

* :mod:`~repro.replication.group` — :class:`ReplicaGroup`, the replicated sink
  that fans every chunk to R :class:`~repro.pipeline.PipelinedExecutor`
  replicas, plus its snapshot/result/checkpoint types.
* :mod:`~repro.replication.supervisor` — :class:`ReplicaSupervisor`, the
  quarantine-and-re-seed healing policy.
* :mod:`~repro.replication.faults` — :class:`FaultPlan`, deterministic
  scripted failures (kill a replica at a chunk, drop a connection at a frame,
  corrupt a checkpoint) shared by tests, the CLI, and the chaos-smoke CI job.
"""

from repro.replication.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    corrupt_file,
)
from repro.replication.group import (
    GroupRunResult,
    GroupSinkState,
    GroupSnapshot,
    ReplicaGroup,
    ReplicaStatus,
)
from repro.replication.supervisor import ReplicaSupervisor

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "GroupRunResult",
    "GroupSinkState",
    "GroupSnapshot",
    "InjectedFault",
    "ReplicaGroup",
    "ReplicaStatus",
    "ReplicaSupervisor",
    "corrupt_file",
]
