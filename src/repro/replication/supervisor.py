"""Healing policy: when and how a quarantined replica slot is re-seeded.

The :class:`~repro.replication.group.ReplicaGroup` does the detection and the
quarantining itself (a replica that raises during ingestion is never read
again); the :class:`ReplicaSupervisor` only decides *when* a quarantined slot
is re-admitted and *how* the replacement is built.

Why cloning a survivor is sound
-------------------------------

``RandomSource`` guarantees that serializing — or ``copy.deepcopy``-ing — a
sketch yields a sibling whose randomness is deterministically re-seeded from
the original's seed material, and that capturing the *same* state twice yields
*identical* resumptions.  :meth:`PipelinedExecutor.sink_state` captures a deep
copy at a chunk boundary, so a replacement built from a survivor's capture:

* holds exactly the survivor's ingested prefix (no items lost or doubled), and
* has a bit-for-bit reproducible future: re-run the experiment with the
  donor's seed, capture at the same boundary, feed the same tail, and the two
  final reports are identical.  The ``identical_report`` acceptance check in
  :func:`repro.analysis.harness.run_replication_comparison` verifies exactly
  this.

The replacement does **not** replay the donor's own uninterrupted future unless
the sketch is deterministic — the donor keeps its live randomness while the
clone re-seeds — which is why the harness also records a separate
``identical_to_donor`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.pipeline.executor import PipelinedExecutor
from repro.pipeline.producer import DEFAULT_CHUNK_ITEMS, DEFAULT_QUEUE_DEPTH

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.replication.group import ReplicaStatus


@dataclass
class ReplicaSupervisor:
    """Failure-handling policy consulted by the group at chunk boundaries.

    Args:
        auto_heal: when False, quarantined slots stay out of the quorum until
            a checkpoint/restore cycle heals them (useful for observing the
            degraded window in tests).
        heal_after_chunks: how many whole chunks the group must ingest past
            the failure before re-seeding — a deliberate delay that keeps the
            degraded window open long enough to observe and query (0 heals at
            the end of the chunk the replica died on).
        max_heals: total heals the supervisor will perform across all slots
            (``None`` = unbounded); a crash-looping replica then stays
            quarantined instead of thrashing.
    """

    auto_heal: bool = True
    heal_after_chunks: int = 0
    max_heals: Optional[int] = None
    heals_performed: int = 0

    def should_heal(self, status: "ReplicaStatus", chunks_ingested: int) -> bool:
        """Is this quarantined slot's re-seed due at the current chunk boundary?"""
        if not self.auto_heal:
            return False
        if self.max_heals is not None and self.heals_performed >= self.max_heals:
            return False
        if status.quarantined_chunk is None:
            return False
        # The failure chunk itself completes at quarantined_chunk + 1; the
        # heal is due heal_after_chunks whole chunks later.
        return chunks_ingested >= status.quarantined_chunk + 1 + self.heal_after_chunks

    def build_replacement(
        self,
        donor: PipelinedExecutor,
        chunk_size: int = DEFAULT_CHUNK_ITEMS,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
    ) -> PipelinedExecutor:
        """Clone a survivor into a fresh replica holding the same prefix.

        ``sink_state()`` already hands back a deep copy (the donor's live
        state is untouched), and adopting it re-seeds the copy's randomness
        deterministically per the ``RandomSource`` contract — see the module
        docstring for why the replacement's future is then reproducible.
        """
        return PipelinedExecutor.from_sink_state(
            donor.sink_state(), chunk_size=chunk_size, queue_depth=queue_depth
        )

    def record_heal(self) -> None:
        """Count a performed heal against ``max_heals``."""
        self.heals_performed += 1
