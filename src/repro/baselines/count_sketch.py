"""CountSketch [CCFC04].

Like Count-Min but with a random sign per (row, item) pair and a median instead of a
minimum, which makes the estimator unbiased and gives an ℓ2-type error guarantee.  It is
included because the paper cites it as one of the standard randomized baselines and
because the ℓ2 guarantee is the natural comparison point for the ℓ1 algorithms built
here.
"""

from __future__ import annotations

import math
import statistics
from typing import List, Optional, Sequence

import numpy as np

from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport
from repro.primitives.batching import aggregate_counts, as_item_array, validate_universe
from repro.primitives.hashing import UniversalHashFamily, UniversalHashFunction
from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value


class CountSketch(FrequencyEstimator):
    """CountSketch with ``depth`` rows of ``width`` signed counters each."""

    def __init__(
        self,
        epsilon: float,
        delta: float,
        universe_size: int,
        rng: Optional[RandomSource] = None,
        track_heavy_candidates: bool = True,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        self.epsilon = epsilon
        self.delta = delta
        self.universe_size = universe_size
        self.width = max(2, int(math.ceil(3.0 / (epsilon * epsilon))))
        self.depth = max(1, int(math.ceil(math.log(4.0 / delta))))
        # Keep the sketch from becoming absurdly wide for tiny epsilon in benchmarks:
        # the width is the defining cost of CountSketch and we report it faithfully.
        rng = rng if rng is not None else RandomSource()
        bucket_family = UniversalHashFamily(universe_size, self.width, rng=rng.spawn(1))
        sign_family = UniversalHashFamily(universe_size, 2, rng=rng.spawn(2))
        self.bucket_hashes: List[UniversalHashFunction] = bucket_family.draw_many(self.depth)
        self.sign_hashes: List[UniversalHashFunction] = sign_family.draw_many(self.depth)
        self.table = np.zeros((self.depth, self.width), dtype=np.int64)
        self.track_heavy_candidates = track_heavy_candidates
        self.candidates: dict = {}

    def _sign(self, row: int, item: int) -> int:
        return 1 if self.sign_hashes[row](item) == 1 else -1

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        for row in range(self.depth):
            bucket = self.bucket_hashes[row](item)
            self.table[row, bucket] += self._sign(row, item)
        if self.track_heavy_candidates:
            estimate = self.estimate(item)
            if estimate >= self.epsilon * self.items_processed:
                self.candidates[item] = estimate
            if len(self.candidates) > 4 * int(1.0 / self.epsilon) + 4:
                self._prune_candidates()

    def insert_many(self, items: Sequence[int]) -> None:
        """Batched ingestion: per row, vectorized bucket/sign hashing and one bincount.

        The signed counter table after a batch is *exactly* equal to sequential
        insertion (signed additions commute).  As with Count-Min, candidate tracking is
        evaluated once per distinct id at batch end (a reporting heuristic; the sketch's
        ℓ2 guarantee is untouched).
        """
        array = as_item_array(items)
        validate_universe(array, self.universe_size)
        if array.size == 0:
            return
        self.items_processed += int(array.size)
        distinct, multiplicities = aggregate_counts(array)
        weights = multiplicities.astype(np.float64)
        row_estimates: List[np.ndarray] = []
        for row in range(self.depth):
            buckets = self.bucket_hashes[row].hash_many(distinct)
            signs = np.where(self.sign_hashes[row].hash_many(distinct) == 1, 1.0, -1.0)
            added = np.bincount(buckets, weights=weights * signs, minlength=self.width)
            self.table[row] += added.astype(np.int64)
            row_estimates.append(signs * self.table[row][buckets])
        if self.track_heavy_candidates:
            estimates = np.median(np.stack(row_estimates), axis=0)
            threshold = self.epsilon * self.items_processed
            heavy = estimates >= threshold
            for item, estimate in zip(distinct[heavy].tolist(), estimates[heavy].tolist()):
                self.candidates[item] = float(estimate)
            if len(self.candidates) > 4 * int(1.0 / self.epsilon) + 4:
                self._prune_candidates()

    def _prune_candidates(self) -> None:
        threshold = self.epsilon * self.items_processed
        self.candidates = {
            item: self.estimate(item)
            for item in self.candidates
            if self.estimate(item) >= threshold
        }

    def merge(self, other: "CountSketch") -> None:
        """Fold another sketch into this one (exact linear-sketch combine).

        CountSketch is a linear sketch: with shared bucket and sign hashes the signed
        counter tables add, and the merged table equals a single sketch's table over
        the concatenated stream exactly.  Candidate sets are unioned and re-estimated.
        """
        if not isinstance(other, CountSketch):
            raise TypeError(f"cannot merge CountSketch with {type(other).__name__}")
        if (
            other.epsilon != self.epsilon
            or other.universe_size != self.universe_size
            or other.width != self.width
            or other.depth != self.depth
        ):
            raise ValueError("cannot merge CountSketch sketches with different parameters")
        if (
            other.bucket_hashes != self.bucket_hashes
            or other.sign_hashes != self.sign_hashes
        ):
            raise ValueError(
                "cannot merge CountSketch sketches with different hash functions; "
                "build the shards with shared hash functions (see repro.sharding)"
            )
        self.table += other.table
        self.items_processed += other.items_processed
        if self.track_heavy_candidates:
            for item in other.candidates:
                self.candidates[item] = self.estimate(item)
            self._prune_candidates()

    def estimate(self, item: int) -> float:
        votes = [
            self._sign(row, item) * self.table[row, self.bucket_hashes[row](item)]
            for row in range(self.depth)
        ]
        return float(statistics.median(votes))

    def report(self, phi: Optional[float] = None) -> HeavyHittersReport:
        phi_value = phi if phi is not None else self.epsilon
        threshold = (phi_value - self.epsilon / 2.0) * self.items_processed
        items = {
            item: self.estimate(item)
            for item in self.candidates
            if self.estimate(item) > threshold
        }
        return HeavyHittersReport(
            items=items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=phi_value,
        )

    def refresh_space(self) -> None:
        count_bits = bits_for_value(max(1, self.items_processed)) + 1  # signed counters
        self.space.set_component("table", self.depth * self.width * count_bits)
        self.space.set_component(
            "hash_functions",
            sum(h.description_bits() for h in self.bucket_hashes)
            + sum(h.description_bits() for h in self.sign_hashes),
        )
        if self.track_heavy_candidates:
            id_bits = bits_for_value(self.universe_size - 1)
            self.space.set_component("candidates", len(self.candidates) * (id_bits + count_bits))
