"""The Space-Saving algorithm [MAE05].

Keeps exactly ``k = ceil(1/eps)`` (item, count) pairs; when a new item arrives and the
table is full, the minimum-count entry is evicted and its count inherited.  Guarantees
``f_i <= estimate(i) <= f_i + m/k`` for stored items, so with ``k = ceil(1/eps)`` it
solves (ε,ϕ)-Heavy Hitters in ``O(eps^-1 (log n + log m))`` bits, the same bound as
Misra–Gries.  Included as the strongest practical baseline in the accuracy experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport
from repro.primitives.batching import aggregate_counts, as_item_array, validate_universe
from repro.primitives.space import bits_for_value


class SpaceSaving(FrequencyEstimator):
    """Space-Saving with ``ceil(1/eps)`` monitored entries."""

    def __init__(self, epsilon: float, universe_size: int) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        self.epsilon = epsilon
        self.universe_size = universe_size
        self.capacity = int(1.0 / epsilon) + 1
        self.counts: Dict[int, int] = {}
        self.errors: Dict[int, int] = {}

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        if item in self.counts:
            self.counts[item] += 1
            return
        if len(self.counts) < self.capacity:
            self.counts[item] = 1
            self.errors[item] = 0
            return
        # Evict the minimum-count entry and inherit its count as this item's error.
        victim = min(self.counts, key=lambda key: (self.counts[key], key))
        victim_count = self.counts.pop(victim)
        self.errors.pop(victim, None)
        self.counts[item] = victim_count + 1
        self.errors[item] = victim_count

    def insert_many(self, items: Sequence[int]) -> None:
        """Batched ingestion: aggregate, then one monitored-entry update per distinct id.

        A distinct id with multiplicity ``c`` either bumps its monitored counter by
        ``c``, claims a free slot, or evicts the current minimum and inherits its count
        as error — the standard weighted Space-Saving step.  The invariant
        ``f_i <= estimate(i) <= f_i + min-count`` is preserved, so the ε-guarantee is
        unchanged; entry content can differ from sequential insertion (statistical
        equivalence, though the algorithm itself is deterministic given the batch
        boundaries).
        """
        array = as_item_array(items)
        validate_universe(array, self.universe_size)
        self.items_processed += int(array.size)
        values, multiplicities = aggregate_counts(array)
        counts = self.counts
        for item, weight in zip(values.tolist(), multiplicities.tolist()):
            if item in counts:
                counts[item] += weight
            elif len(counts) < self.capacity:
                counts[item] = weight
                self.errors[item] = 0
            else:
                victim = min(counts, key=lambda key: (counts[key], key))
                victim_count = counts.pop(victim)
                self.errors.pop(victim, None)
                counts[item] = victim_count + weight
                self.errors[item] = victim_count

    def merge(self, other: "SpaceSaving") -> None:
        """Fold another shard's summary into this one (mergeable-summaries combine).

        Sum-then-prune: counts and error bounds add entrywise over the union of the
        two entry sets, then only the ``capacity`` largest merged counts are kept.
        Per-entry guarantees for *stored* items are the sum of the inputs' guarantees,
        i.e. within ±ε(m₁+m₂) (under hash-partitioned sharding the supports are
        disjoint, so counts are untouched and the classic overestimate property
        ``f <= estimate <= f + ε(m₁+m₂)`` carries over exactly).  A pruned entry's
        merged count was at most ``(m₁+m₂)/(capacity+1) <= ε(m₁+m₂)`` (total counts
        sum to the stream length), so any item the merged summary no longer stores has
        true frequency at most ``2ε(m₁+m₂)`` — in particular every ϕ-heavy item of the
        concatenated stream survives the prune whenever ϕ > 2ε, which is the regime
        Definition 3 operates in.
        """
        if not isinstance(other, SpaceSaving):
            raise TypeError(f"cannot merge SpaceSaving with {type(other).__name__}")
        if (
            other.epsilon != self.epsilon
            or other.universe_size != self.universe_size
            or other.capacity != self.capacity
        ):
            raise ValueError("cannot merge Space-Saving summaries with different parameters")
        counts, errors = self.counts, self.errors
        for item, count in other.counts.items():
            counts[item] = counts.get(item, 0) + count
            errors[item] = errors.get(item, 0) + other.errors.get(item, 0)
        if len(counts) > self.capacity:
            kept = sorted(counts, key=lambda key: (-counts[key], key))[: self.capacity]
            self.counts = {item: counts[item] for item in kept}
            self.errors = {item: errors.get(item, 0) for item in kept}
        self.items_processed += other.items_processed

    def estimate(self, item: int) -> float:
        return float(self.counts.get(item, 0))

    def guaranteed_count(self, item: int) -> int:
        """A certified lower bound on the item's true frequency (count minus error)."""
        if item not in self.counts:
            return 0
        return self.counts[item] - self.errors.get(item, 0)

    def most_common(self, count: int) -> List[Tuple[int, int]]:
        ordered = sorted(self.counts.items(), key=lambda pair: (-pair[1], pair[0]))
        return ordered[:count]

    def report(self, phi: Optional[float] = None) -> HeavyHittersReport:
        phi_value = phi if phi is not None else self.epsilon
        threshold = (phi_value - self.epsilon / 2.0) * self.items_processed
        items = {
            item: float(count)
            for item, count in self.counts.items()
            if count > threshold
        }
        return HeavyHittersReport(
            items=items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=phi_value,
        )

    def refresh_space(self) -> None:
        id_bits = bits_for_value(self.universe_size - 1)
        count_bits = bits_for_value(max(1, self.items_processed))
        # Each entry stores an id, a count, and an error bound.
        self.space.set_component("entries", self.capacity * (id_bits + 2 * count_bits))
