"""Sticky Sampling [MM02].

A randomized counter-based baseline: items already in the table are counted exactly;
new items enter the table with a sampling probability that halves as the stream grows.
With sampling rate ``r = t / eps`` (``t = log(1/(phi*delta))``) it reports all ϕ-heavy
items with probability ``1 - delta``, using ``O(eps^-1 log(1/(phi*delta)))`` expected
entries.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport
from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value


class StickySampling(FrequencyEstimator):
    """Sticky Sampling with the original paper's parameterization."""

    def __init__(
        self,
        epsilon: float,
        phi: float,
        delta: float,
        universe_size: int,
        rng: Optional[RandomSource] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not epsilon < phi <= 1.0:
            raise ValueError("phi must satisfy epsilon < phi <= 1")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        self.epsilon = epsilon
        self.phi = phi
        self.delta = delta
        self.universe_size = universe_size
        self._rng = rng if rng is not None else RandomSource()
        # First window holds 2t items with sampling rate 1, then rate halves each window.
        self.t = math.log(1.0 / (phi * delta))
        self.window_size = max(1, int(math.ceil(2.0 * self.t / epsilon)))
        self.sampling_rate = 1.0
        self.next_window_end = self.window_size
        self.entries: Dict[int, int] = {}

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        if item in self.entries:
            self.entries[item] += 1
        elif self._rng.bernoulli(self.sampling_rate):
            self.entries[item] = 1
        if self.items_processed >= self.next_window_end:
            self._advance_window()

    def _advance_window(self) -> None:
        """Halve the sampling rate and thin existing entries accordingly."""
        self.sampling_rate /= 2.0
        self.next_window_end += self.window_size * int(round(1.0 / self.sampling_rate))
        for item in list(self.entries):
            # For each entry, toss unbiased coins and decrement until a head appears,
            # deleting entries that hit zero (the original adjustment step).
            while self.entries[item] > 0 and self._rng.bernoulli(0.5):
                self.entries[item] -= 1
            if self.entries[item] <= 0:
                del self.entries[item]

    def estimate(self, item: int) -> float:
        return float(self.entries.get(item, 0))

    def report(self, phi: Optional[float] = None) -> HeavyHittersReport:
        phi_value = phi if phi is not None else self.phi
        threshold = (phi_value - self.epsilon) * self.items_processed
        items = {
            item: float(count)
            for item, count in self.entries.items()
            if count > threshold
        }
        return HeavyHittersReport(
            items=items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=phi_value,
        )

    def refresh_space(self) -> None:
        id_bits = bits_for_value(self.universe_size - 1)
        count_bits = bits_for_value(max(1, self.items_processed))
        self.space.set_component("entries", len(self.entries) * (id_bits + count_bits))
        self.space.set_component("rate", 32)
