"""Sticky Sampling [MM02].

A randomized counter-based baseline: items already in the table are counted exactly;
new items enter the table with a sampling probability that halves as the stream grows.
With sampling rate ``r = t / eps`` (``t = log(1/(phi*delta))``) it reports all ϕ-heavy
items with probability ``1 - delta``, using ``O(eps^-1 log(1/(phi*delta)))`` expected
entries.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport
from repro.primitives.batching import aggregate_counts, as_item_array, validate_universe
from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value


class StickySampling(FrequencyEstimator):
    """Sticky Sampling with the original paper's parameterization."""

    def __init__(
        self,
        epsilon: float,
        phi: float,
        delta: float,
        universe_size: int,
        rng: Optional[RandomSource] = None,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not epsilon < phi <= 1.0:
            raise ValueError("phi must satisfy epsilon < phi <= 1")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        self.epsilon = epsilon
        self.phi = phi
        self.delta = delta
        self.universe_size = universe_size
        self._rng = rng if rng is not None else RandomSource()
        # First window holds 2t items with sampling rate 1, then rate halves each window.
        self.t = math.log(1.0 / (phi * delta))
        self.window_size = max(1, int(math.ceil(2.0 * self.t / epsilon)))
        self.sampling_rate = 1.0
        self.next_window_end = self.window_size
        self.entries: Dict[int, int] = {}

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        if item in self.entries:
            self.entries[item] += 1
        elif self._rng.bernoulli(self.sampling_rate):
            self.entries[item] = 1
        if self.items_processed >= self.next_window_end:
            self._advance_window()

    def insert_many(self, items: Sequence[int]) -> None:
        """Batched ingestion, statistically equivalent to sequential insertion.

        The batch is split at window boundaries (the sampling rate only changes there).
        Within a window, a tracked item's occurrences are exact increments, and an
        untracked item with ``c`` occurrences enters the table iff a geometric draw at
        the window's rate lands within ``c`` trials — the same law as ``c`` individual
        coin flips, in one draw; the surviving count ``c - g + 1`` matches the
        sequential "exact from first success" rule.  While the rate is 1 (the first
        window) no randomness is consumed at all, so there the batch path is exactly
        equal to sequential insertion.
        """
        array = as_item_array(items)
        validate_universe(array, self.universe_size)
        position, total = 0, int(array.size)
        while position < total:
            room = self.next_window_end - self.items_processed
            window = array[position : position + room]
            values, counts = aggregate_counts(window)
            entries = self.entries
            rate = self.sampling_rate
            for item, count in zip(values.tolist(), counts.tolist()):
                if item in entries:
                    entries[item] += count
                else:
                    first_success = 1 if rate >= 1.0 else self._rng.geometric(rate)
                    if first_success <= count:
                        entries[item] = count - first_success + 1
            self.items_processed += int(window.size)
            position += int(window.size)
            if self.items_processed >= self.next_window_end:
                self._advance_window()

    def _advance_window(self) -> None:
        """Halve the sampling rate and thin existing entries accordingly."""
        self.sampling_rate /= 2.0
        self.next_window_end += self.window_size * int(round(1.0 / self.sampling_rate))
        for item in list(self.entries):
            # For each entry, toss unbiased coins and decrement until a head appears,
            # deleting entries that hit zero (the original adjustment step).
            while self.entries[item] > 0 and self._rng.bernoulli(0.5):
                self.entries[item] -= 1
            if self.entries[item] <= 0:
                del self.entries[item]

    def estimate(self, item: int) -> float:
        return float(self.entries.get(item, 0))

    def report(self, phi: Optional[float] = None) -> HeavyHittersReport:
        phi_value = phi if phi is not None else self.phi
        threshold = (phi_value - self.epsilon) * self.items_processed
        items = {
            item: float(count)
            for item, count in self.entries.items()
            if count > threshold
        }
        return HeavyHittersReport(
            items=items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=phi_value,
        )

    def refresh_space(self) -> None:
        id_bits = bits_for_value(self.universe_size - 1)
        count_bits = bits_for_value(max(1, self.items_processed))
        self.space.set_component("entries", len(self.entries) * (id_bits + count_bits))
        self.space.set_component("rate", 32)
