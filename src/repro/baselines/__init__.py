"""Classical heavy-hitter algorithms the paper compares against.

The paper's introduction surveys the prior art for the (ε,ϕ)-Heavy Hitters problem:
the deterministic Misra–Gries / Frequent algorithm [MG82, DLOM02, KSP03] using
``O(ε⁻¹ (log n + log m))`` bits, and the randomized CountSketch [CCFC04], Count-Min
sketch [CM05], Lossy Counting and Sticky Sampling [MM02], and Space-Saving [MAE05].
Every one of those is implemented here behind the common
:class:`~repro.core.base.FrequencyEstimator` interface so the benchmark harness can put
them side by side with the paper's algorithms, both on accuracy and on measured space.

``ExactCounter`` keeps exact counts and is the ground-truth oracle used by tests and by
the accuracy experiments.
"""

from repro.baselines.exact import ExactCounter
from repro.baselines.misra_gries import MisraGries
from repro.baselines.count_min import CountMinSketch
from repro.baselines.count_sketch import CountSketch
from repro.baselines.space_saving import SpaceSaving
from repro.baselines.lossy_counting import LossyCounting
from repro.baselines.sticky_sampling import StickySampling

__all__ = [
    "ExactCounter",
    "MisraGries",
    "CountMinSketch",
    "CountSketch",
    "SpaceSaving",
    "LossyCounting",
    "StickySampling",
]
