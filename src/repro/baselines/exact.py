"""Exact frequency counting — the ground-truth oracle.

Not a small-space algorithm (it stores every distinct item), but the reference against
which every approximate algorithm's output is judged in the tests and in the accuracy
experiments (experiment id ACC in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport
from repro.primitives.space import bits_for_value


class ExactCounter(FrequencyEstimator):
    """Keeps an exact count for every distinct item seen."""

    def __init__(self, universe_size: int) -> None:
        super().__init__()
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        self.universe_size = universe_size
        self.counts: Dict[int, int] = {}

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        self.counts[item] = self.counts.get(item, 0) + 1

    def merge(self, other: "ExactCounter") -> None:
        """Fold another exact table into this one — trivially lossless (counts add)."""
        if not isinstance(other, ExactCounter):
            raise TypeError(f"cannot merge ExactCounter with {type(other).__name__}")
        if other.universe_size != self.universe_size:
            raise ValueError("cannot merge exact counters over different universes")
        counts = self.counts
        for item, count in other.counts.items():
            counts[item] = counts.get(item, 0) + count
        self.items_processed += other.items_processed

    def estimate(self, item: int) -> float:
        return float(self.counts.get(item, 0))

    def frequencies(self) -> Dict[int, int]:
        """A copy of the exact frequency table."""
        return dict(self.counts)

    def most_common(self, count: int) -> List[Tuple[int, int]]:
        """The ``count`` most frequent items and their exact counts."""
        ordered = sorted(self.counts.items(), key=lambda pair: (-pair[1], pair[0]))
        return ordered[:count]

    def heavy_hitters(self, phi: float) -> Dict[int, int]:
        """All items with frequency strictly greater than ϕ·m."""
        threshold = phi * self.items_processed
        return {item: count for item, count in self.counts.items() if count > threshold}

    def report(self, epsilon: float = 0.0, phi: float = 0.0) -> HeavyHittersReport:
        """Report the exact heavy hitters above ϕ·m (with exact frequencies)."""
        heavy = self.heavy_hitters(phi)
        return HeavyHittersReport(
            items={item: float(count) for item, count in heavy.items()},
            stream_length=self.items_processed,
            epsilon=epsilon,
            phi=phi,
        )

    def refresh_space(self) -> None:
        id_bits = bits_for_value(self.universe_size - 1)
        count_bits = bits_for_value(max(self.counts.values(), default=0))
        self.space.set_component("counts", len(self.counts) * (id_bits + count_bits))
