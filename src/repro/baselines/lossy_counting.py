"""Lossy Counting [MM02].

The stream is processed in buckets of width ``ceil(1/eps)``; at the end of every bucket,
entries whose count plus slack falls below the bucket index are deleted.  The surviving
entries underestimate true frequencies by at most ``eps * m``, so reporting entries above
``(phi - eps) * m`` solves (ε,ϕ)-Heavy Hitters.  Space is ``O(eps^-1 log(eps * m))``
entries in the worst case.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport
from repro.primitives.batching import aggregate_counts, as_item_array, validate_universe
from repro.primitives.space import bits_for_value


class LossyCounting(FrequencyEstimator):
    """Lossy Counting with bucket width ``ceil(1/eps)``."""

    def __init__(self, epsilon: float, universe_size: int) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        self.epsilon = epsilon
        self.universe_size = universe_size
        self.bucket_width = int(math.ceil(1.0 / epsilon))
        self.current_bucket = 1
        # item -> (count, delta) where delta is the maximum possible undercount.
        self.entries: Dict[int, Tuple[int, int]] = {}

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        if item in self.entries:
            count, delta = self.entries[item]
            self.entries[item] = (count + 1, delta)
        else:
            self.entries[item] = (1, self.current_bucket - 1)
        if self.items_processed % self.bucket_width == 0:
            self._prune()
            self.current_bucket += 1

    def insert_many(self, items: Sequence[int]) -> None:
        """Batched ingestion with chunk-deferred pruning (guarantee-preserving).

        The whole chunk is pre-aggregated in one C-speed pass and applied with one
        update per distinct id; the per-window prunes that sequential insertion runs
        every ``bucket_width`` items are deferred to the end of the chunk.  Deferral is
        sound: deletions only ever happen at chunk ends, so when a first-seen item is
        recorded mid-chunk, everything it could have lost earlier happened at buckets
        ``<= current_bucket - 1`` — the ``delta`` assigned is still a valid undercount
        bound, and the deletion rule ``count + delta <= bucket`` still only discards
        entries whose true count is at most ``eps * m``.  Estimates never decrease
        relative to sequential insertion (entries survive longer); the εm guarantee is
        identical, the table can be transiently larger (time/space trade of the fast
        path).  When chunks are exactly one bucket window, the behavior — including
        space — coincides with sequential insertion.
        """
        array = as_item_array(items)
        validate_universe(array, self.universe_size)
        if array.size == 0:
            return
        values, counts = aggregate_counts(array)
        entries = self.entries
        new_delta = self.current_bucket - 1
        for item, count in zip(values.tolist(), counts.tolist()):
            entry = entries.get(item)
            if entry is not None:
                entries[item] = (entry[0] + count, entry[1])
            else:
                entries[item] = (count, new_delta)
        self.items_processed += int(array.size)
        boundaries_crossed = self.items_processed // self.bucket_width - (self.current_bucket - 1)
        if boundaries_crossed > 0:
            self.current_bucket += boundaries_crossed - 1
            self._prune()
            self.current_bucket += 1

    def merge(self, other: "LossyCounting") -> None:
        """Fold another shard's table into this one (guarantee-preserving combine).

        Counts add; the undercount bounds (``delta``) add, with an absent entry on
        either side charged that side's maximum possible undercount
        (``current_bucket - 1``).  Every merged ``delta`` is therefore still a valid
        undercount bound and is at most ``ε·m₁ + ε·m₂``, so the merged table keeps the
        εm guarantee over the concatenated stream.  The bucket clock restarts at the
        combined stream position and a prune is applied immediately.
        """
        if not isinstance(other, LossyCounting):
            raise TypeError(f"cannot merge LossyCounting with {type(other).__name__}")
        if other.epsilon != self.epsilon or other.universe_size != self.universe_size:
            raise ValueError("cannot merge Lossy Counting tables with different parameters")
        own_slack = self.current_bucket - 1
        other_slack = other.current_bucket - 1
        entries = self.entries
        for item, (count, delta) in other.entries.items():
            if item in entries:
                own_count, own_delta = entries[item]
                entries[item] = (own_count + count, own_delta + delta)
            else:
                entries[item] = (count, delta + own_slack)
        for item in list(entries):
            if item not in other.entries:
                count, delta = entries[item]
                entries[item] = (count, delta + other_slack)
        self.items_processed += other.items_processed
        # Prune against the number of *completed* buckets of the combined stream
        # (the same threshold a boundary prune would have used), then restart the
        # bucket clock at the combined position.
        completed_buckets = self.items_processed // self.bucket_width
        if completed_buckets > 0:
            self.current_bucket = completed_buckets
            self._prune()
        self.current_bucket = completed_buckets + 1

    def _prune(self) -> None:
        """Delete entries that cannot be frequent: count + delta <= current bucket."""
        self.entries = {
            item: (count, delta)
            for item, (count, delta) in self.entries.items()
            if count + delta > self.current_bucket
        }

    def estimate(self, item: int) -> float:
        if item not in self.entries:
            return 0.0
        return float(self.entries[item][0])

    def report(self, phi: Optional[float] = None) -> HeavyHittersReport:
        phi_value = phi if phi is not None else self.epsilon
        threshold = (phi_value - self.epsilon) * self.items_processed
        items = {
            item: float(count)
            for item, (count, _delta) in self.entries.items()
            if count > threshold
        }
        return HeavyHittersReport(
            items=items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=phi_value,
        )

    def refresh_space(self) -> None:
        id_bits = bits_for_value(self.universe_size - 1)
        count_bits = bits_for_value(max(1, self.items_processed))
        self.space.set_component("entries", len(self.entries) * (id_bits + 2 * count_bits))
