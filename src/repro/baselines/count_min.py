"""The Count-Min sketch [CM05].

A randomized baseline: ``d = ceil(ln(1/delta))`` rows of ``w = ceil(e/eps)`` counters
each, one universal hash function per row.  Every estimate overestimates by at most
``eps * m`` with probability ``1 - delta``.  Space is ``O(eps^-1 log(1/delta) log m)``
bits plus the hash function descriptions — asymptotically worse than the paper's
``O(eps^-1 log(1/phi))`` for reporting heavy hitters, which is exactly the comparison
the Table 1 benchmark (experiment T1-HH) draws.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport
from repro.primitives.batching import aggregate_counts, as_item_array, validate_universe
from repro.primitives.hashing import UniversalHashFamily, UniversalHashFunction
from repro.primitives.rng import RandomSource
from repro.primitives.space import bits_for_value


class CountMinSketch(FrequencyEstimator):
    """Count-Min sketch with conservative parameter choices from the original paper."""

    def __init__(
        self,
        epsilon: float,
        delta: float,
        universe_size: int,
        rng: Optional[RandomSource] = None,
        track_heavy_candidates: bool = True,
    ) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if not 0.0 < delta < 1.0:
            raise ValueError("delta must be in (0, 1)")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        self.epsilon = epsilon
        self.delta = delta
        self.universe_size = universe_size
        self.width = max(2, int(math.ceil(math.e / epsilon)))
        self.depth = max(1, int(math.ceil(math.log(1.0 / delta))))
        rng = rng if rng is not None else RandomSource()
        family = UniversalHashFamily(universe_size, self.width, rng=rng)
        self.hash_functions: List[UniversalHashFunction] = family.draw_many(self.depth)
        self.table = np.zeros((self.depth, self.width), dtype=np.int64)
        # A Count-Min sketch alone cannot enumerate the heavy hitters; real deployments
        # pair it with a heap of candidates, which we model here (and charge for).
        self.track_heavy_candidates = track_heavy_candidates
        self.candidates: dict = {}

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        for row, hash_function in enumerate(self.hash_functions):
            self.table[row, hash_function(item)] += 1
        if self.track_heavy_candidates:
            estimate = self.estimate(item)
            threshold = self.epsilon * self.items_processed
            if estimate >= threshold:
                self.candidates[item] = estimate
            # Prune stale candidates occasionally to keep the candidate set O(1/eps).
            if len(self.candidates) > 4 * int(1.0 / self.epsilon) + 4:
                self._prune_candidates()

    def insert_many(self, items: Sequence[int]) -> None:
        """Batched ingestion: per row, one vectorized hash pass and one bincount.

        The counter table after a batch is *exactly* equal to sequential insertion
        (counter additions commute).  Candidate tracking is evaluated once per distinct
        id against the batch-end threshold instead of per arrival, so the candidate
        set — a reporting heuristic, not part of the sketch's guarantee — can differ
        slightly; estimates only grow within a batch, so no ε-heavy item is missed.
        """
        array = as_item_array(items)
        validate_universe(array, self.universe_size)
        if array.size == 0:
            return
        self.items_processed += int(array.size)
        distinct, multiplicities = aggregate_counts(array)
        weights = multiplicities.astype(np.float64)
        row_estimates: List[np.ndarray] = []
        for row, hash_function in enumerate(self.hash_functions):
            buckets = hash_function.hash_many(distinct)
            added = np.bincount(buckets, weights=weights, minlength=self.width)
            self.table[row] += added.astype(np.int64)
            row_estimates.append(self.table[row][buckets])
        if self.track_heavy_candidates:
            estimates = np.min(np.stack(row_estimates), axis=0)
            threshold = self.epsilon * self.items_processed
            heavy = estimates >= threshold
            for item, estimate in zip(distinct[heavy].tolist(), estimates[heavy].tolist()):
                self.candidates[item] = float(estimate)
            if len(self.candidates) > 4 * int(1.0 / self.epsilon) + 4:
                self._prune_candidates()

    def _prune_candidates(self) -> None:
        threshold = self.epsilon * self.items_processed
        self.candidates = {
            item: self.estimate(item)
            for item in self.candidates
            if self.estimate(item) >= threshold
        }

    def merge(self, other: "CountMinSketch") -> None:
        """Fold another sketch into this one (exact linear-sketch combine).

        Requires the two sketches to share their row hash functions (the sharded
        executor arranges this); counter cells then add, and the merged table is
        *bit-for-bit* the table a single sketch would hold after the concatenated
        stream — Count-Min is a linear sketch, so the merge is lossless.  The heavy
        candidate sets (a reporting heuristic, not part of the guarantee) are unioned
        and re-estimated against the merged table.
        """
        if not isinstance(other, CountMinSketch):
            raise TypeError(f"cannot merge CountMinSketch with {type(other).__name__}")
        if (
            other.epsilon != self.epsilon
            or other.universe_size != self.universe_size
            or other.width != self.width
            or other.depth != self.depth
        ):
            raise ValueError("cannot merge Count-Min sketches with different parameters")
        if other.hash_functions != self.hash_functions:
            raise ValueError(
                "cannot merge Count-Min sketches with different hash functions; "
                "build the shards with shared hash functions (see repro.sharding)"
            )
        self.table += other.table
        self.items_processed += other.items_processed
        if self.track_heavy_candidates:
            for item in other.candidates:
                self.candidates[item] = self.estimate(item)
            self._prune_candidates()

    def estimate(self, item: int) -> float:
        return float(
            min(
                self.table[row, hash_function(item)]
                for row, hash_function in enumerate(self.hash_functions)
            )
        )

    def report(self, phi: Optional[float] = None) -> HeavyHittersReport:
        """Report tracked candidates whose estimate exceeds (ϕ−ε/2)·m."""
        phi_value = phi if phi is not None else self.epsilon
        threshold = (phi_value - self.epsilon / 2.0) * self.items_processed
        items = {
            item: self.estimate(item)
            for item in self.candidates
            if self.estimate(item) > threshold
        }
        return HeavyHittersReport(
            items=items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=phi_value,
        )

    def refresh_space(self) -> None:
        count_bits = bits_for_value(max(1, self.items_processed))
        self.space.set_component("table", self.depth * self.width * count_bits)
        self.space.set_component(
            "hash_functions",
            sum(hash_function.description_bits() for hash_function in self.hash_functions),
        )
        if self.track_heavy_candidates:
            id_bits = bits_for_value(self.universe_size - 1)
            self.space.set_component("candidates", len(self.candidates) * (id_bits + count_bits))
