"""The Misra–Gries / Frequent algorithm [MG82], rediscovered by [DLOM02] and [KSP03].

This is the main prior-art baseline the paper improves upon: with ``k = ceil(1/eps)``
counters it guarantees, deterministically, that every item's estimated frequency is
within ``m/k <= eps*m`` of the truth (underestimates only), and therefore solves the
(ε,ϕ)-Heavy Hitters problem in ``O(eps^-1 (log n + log m))`` bits of space.

The same data structure is also used *inside* the paper's Algorithm 1 (on hashed ids of
sampled items) and Algorithm 2 (as the candidate filter ``T1``), so this implementation
doubles as the substrate for the core algorithms.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import FrequencyEstimator
from repro.core.results import HeavyHittersReport
from repro.primitives.batching import aggregate_counts, as_item_array, validate_universe
from repro.primitives.space import bits_for_value


class MisraGriesTable:
    """The bare Misra–Gries summary over an abstract key space.

    Kept separate from the :class:`MisraGries` baseline so the paper's algorithms can
    run it over *hashed* ids with their own space accounting.
    """

    def __init__(self, num_counters: int) -> None:
        if num_counters <= 0:
            raise ValueError("num_counters must be positive")
        self.num_counters = num_counters
        self.counters: Dict[int, int] = {}
        self.total_decrements = 0

    def update(self, key: int, weight: int = 1) -> None:
        """Standard Misra–Gries update with an integer weight (default one)."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if key in self.counters:
            self.counters[key] += weight
            return
        if len(self.counters) < self.num_counters:
            self.counters[key] = weight
            return
        # Table full: decrement every counter by the largest amount that keeps all
        # counters non-negative (at most `weight`), then insert any remainder.
        decrement = min(weight, min(self.counters.values()))
        self.total_decrements += decrement
        for existing_key in list(self.counters):
            self.counters[existing_key] -= decrement
            if self.counters[existing_key] == 0:
                del self.counters[existing_key]
        remainder = weight - decrement
        if remainder > 0 and len(self.counters) < self.num_counters:
            self.counters[key] = remainder

    def update_many(self, keys: Sequence[int], weights: Sequence[int]) -> None:
        """Apply one weighted update per distinct key (the batched merge).

        The classic merge-and-decrement is applied once per ``(key, weight)`` pair
        instead of once per arrival.  The Misra–Gries invariant — every counter
        undercounts by at most ``total weight / num_counters`` — holds for weighted
        updates exactly as for unit ones, so the εm guarantee is preserved; the
        *content* of the table can differ from sequential insertion (decrements land in
        different places), which is why batch ingestion through this path is
        statistically rather than bitwise equivalent.
        """
        counters = self.counters
        for key, weight in zip(keys, weights):
            if key in counters:
                counters[key] += weight
            else:
                self.update(key, weight)

    def merge(self, other: "MisraGriesTable") -> None:
        """Fold another Misra–Gries summary into this one (mergeable-summaries combine).

        The classic ACHPWY-style merge: add the two counter sets, then, if more than
        ``num_counters`` keys survive, subtract the ``(num_counters + 1)``-st largest
        counter value from every counter and drop the non-positive ones.  Each counter's
        undercount is at most the sum of the two inputs' undercount bounds plus the
        subtracted value, which keeps the total undercount at most
        ``(m₁ + m₂) / num_counters`` — the εm guarantee is preserved for the
        concatenated stream, which is what makes hash-sharded ingestion sound.
        """
        if other.num_counters != self.num_counters:
            raise ValueError(
                "cannot merge Misra-Gries tables of different capacities "
                f"({self.num_counters} vs {other.num_counters})"
            )
        counters = self.counters
        for key, count in other.counters.items():
            counters[key] = counters.get(key, 0) + count
        self.total_decrements += other.total_decrements
        if len(counters) > self.num_counters:
            ordered = sorted(counters.values(), reverse=True)
            cutoff = ordered[self.num_counters]
            self.total_decrements += cutoff
            self.counters = {
                key: count - cutoff for key, count in counters.items() if count > cutoff
            }

    def get(self, key: int) -> int:
        """The (under-)estimate of ``key``'s frequency stored in the table."""
        return self.counters.get(key, 0)

    def __contains__(self, key: int) -> bool:
        return key in self.counters

    def __len__(self) -> int:
        return len(self.counters)

    def items_by_count(self) -> List[Tuple[int, int]]:
        """All (key, counter) pairs sorted by decreasing counter value."""
        return sorted(self.counters.items(), key=lambda pair: (-pair[1], pair[0]))

    def top_keys(self, count: int) -> List[int]:
        """The keys of the ``count`` largest counters."""
        return [key for key, _ in self.items_by_count()[:count]]

    def space_bits(self, key_bits: int, value_bits: int) -> int:
        """Declared space for a table of this capacity with the given field widths."""
        return self.num_counters * (key_bits + value_bits)


class MisraGries(FrequencyEstimator):
    """The classic deterministic baseline for (ε,ϕ)-Heavy Hitters.

    Guarantee: for every item, ``f_i - eps*m <= estimate(i) <= f_i``.  Reporting every
    stored item whose counter exceeds ``(phi - eps) * m`` therefore returns all
    ϕ-heavy items and no (ϕ−ε)-light ones... *if* the counter error is at most εm, which
    holds because the table has ``ceil(1/eps)`` counters.
    """

    def __init__(self, epsilon: float, universe_size: int, stream_length_hint: Optional[int] = None) -> None:
        super().__init__()
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        self.epsilon = epsilon
        self.universe_size = universe_size
        self.stream_length_hint = stream_length_hint
        self.table = MisraGriesTable(num_counters=int(1.0 / epsilon) + 1)

    def insert(self, item: int) -> None:
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        self.items_processed += 1
        self.table.update(item)

    def insert_many(self, items: Sequence[int]) -> None:
        """Batched ingestion: pre-aggregate the batch, then merge once per distinct id.

        Statistically equivalent to sequential insertion (the deterministic εm
        undercount guarantee holds verbatim for weighted updates); the table content
        may differ because decrements are applied per distinct id, not per arrival.
        """
        array = as_item_array(items)
        validate_universe(array, self.universe_size)
        self.items_processed += int(array.size)
        values, counts = aggregate_counts(array)
        self.table.update_many(values.tolist(), counts.tolist())

    def merge(self, other: "MisraGries") -> None:
        """Fold another shard's summary into this one (lossless mergeable combine).

        Both summaries must share ε and the universe; the merged table satisfies the
        deterministic εm undercount guarantee for the *concatenated* stream (see
        :meth:`MisraGriesTable.merge`), so a hash-partitioned run merges back into a
        summary as good as a single-instance run.
        """
        if not isinstance(other, MisraGries):
            raise TypeError(f"cannot merge MisraGries with {type(other).__name__}")
        if other.epsilon != self.epsilon or other.universe_size != self.universe_size:
            raise ValueError("cannot merge Misra-Gries summaries with different parameters")
        self.table.merge(other.table)
        self.items_processed += other.items_processed

    def estimate(self, item: int) -> float:
        return float(self.table.get(item))

    def report(self, phi: Optional[float] = None) -> HeavyHittersReport:
        """Report all stored items above the (ϕ−ε)·m threshold (ϕ defaults to ε)."""
        phi_value = phi if phi is not None else self.epsilon
        threshold = (phi_value - self.epsilon) * self.items_processed
        items = {
            item: float(count)
            for item, count in self.table.counters.items()
            if count > threshold
        }
        return HeavyHittersReport(
            items=items,
            stream_length=self.items_processed,
            epsilon=self.epsilon,
            phi=phi_value,
        )

    def refresh_space(self) -> None:
        # The classic accounting: each of the ceil(1/eps) slots stores an id of
        # ceil(log2 n) bits and a counter of ceil(log2 (m+1)) bits.
        length = self.stream_length_hint or max(1, self.items_processed)
        id_bits = bits_for_value(self.universe_size - 1)
        count_bits = bits_for_value(length)
        self.space.set_component("table", self.table.space_bits(id_bits, count_bits))
