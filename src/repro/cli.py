"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points for quick use on
on-disk traces without writing any Python:

* ``generate``       — write a synthetic stream (uniform / zipf / planted) to a file;
* ``heavy-hitters``  — run Algorithm 1 (or Algorithm 2 / Misra–Gries) over a stream file
  and print the reported heavy hitters, their estimates and the space used; scaling
  flags: ``--shards K`` (hash-partitioned fan-out), ``--parallel`` (process pool),
  ``--pipelined`` / ``--queue-depth`` (async replay: parsing overlaps sketch updates);
* ``maximum`` / ``minimum`` — the ε-Maximum / ε-Minimum problems over a stream file;
* ``borda`` / ``maximin``   — the ranking problems over an election file (one vote per
  line, candidate ids in preference order);
* ``bounds``         — evaluate the Table 1 space-bound formulas for given parameters.

Every command prints a small, stable, line-oriented report so the CLI can be scripted.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.baselines.misra_gries import MisraGries
from repro.core.borda import ListBorda
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.maximin import ListMaximin
from repro.core.maximum import EpsilonMaximum
from repro.core.minimum import EpsilonMinimum
from repro.lowerbounds.bounds import TABLE1_ROWS
from repro.pipeline import PipelinedExecutor
from repro.primitives.rng import RandomSource
from repro.sharding import ShardedExecutor
from repro.streams.generators import (
    planted_heavy_hitters_stream,
    uniform_stream,
    zipfian_stream,
)
from repro.streams.io import (
    iterate_stream_file,
    iterate_stream_file_chunks,
    load_election,
    save_stream,
    stream_file_metadata,
)

# Chunk size for out-of-core replay of on-disk traces: the stream commands read their
# input through repro.streams.io's chunked iterator, so memory stays bounded by this
# many items (plus the algorithm's own state) no matter how large the trace is — except
# under --shards --parallel, whose driver materializes the partitioned trace to ship
# whole shards to worker processes (see ShardedExecutor.run_chunks).
REPLAY_CHUNK_ITEMS = 1 << 16


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal l1-heavy hitters in insertion streams (PODS 2016) - command line",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="write a synthetic stream to a file")
    generate.add_argument("output", help="path of the stream file to write")
    generate.add_argument("--kind", choices=["uniform", "zipf", "planted"], default="zipf")
    generate.add_argument("--length", type=int, default=100_000)
    generate.add_argument("--universe", type=int, default=10_000)
    generate.add_argument("--skew", type=float, default=1.2, help="Zipf skew (kind=zipf)")
    generate.add_argument(
        "--heavy", action="append", default=[], metavar="ITEM:FRACTION",
        help="planted heavy item, e.g. --heavy 7:0.2 (kind=planted, repeatable)",
    )
    generate.add_argument("--seed", type=int, default=None)

    def add_stream_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("stream", help="path of the stream file (one integer item per line)")
        sub.add_argument("--epsilon", type=float, default=0.01)
        sub.add_argument("--universe", type=int, default=None,
                         help="universe size (defaults to the file header or max item + 1)")
        sub.add_argument("--seed", type=int, default=None)
        sub.add_argument("--batch-size", type=int, default=None, metavar="ITEMS",
                         help="ingest the stream in chunks of this many items through the "
                              "insert_many fast path (default: one item at a time)")

    heavy = subparsers.add_parser("heavy-hitters", help="report the (eps, phi)-heavy hitters")
    add_stream_options(heavy)
    heavy.add_argument("--phi", type=float, default=0.05)
    heavy.add_argument(
        "--algorithm", choices=["simple", "optimal", "misra-gries"], default="simple",
        help="simple = Algorithm 1 (Theorem 1), optimal = Algorithm 2 (Theorem 2)",
    )
    heavy.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="hash-partition the stream across K independent sketch instances and "
             "merge their summaries at reporting time (see repro.sharding)",
    )
    heavy.add_argument(
        "--parallel", action="store_true",
        help="with --shards, consume the shards in parallel worker processes "
             "(materializes the partitioned stream in memory, unlike the serial "
             "driver's bounded-memory replay)",
    )
    heavy.add_argument(
        "--pipelined", action="store_true",
        help="replay the trace through the async pipeline (repro.pipeline): a "
             "background thread parses the file into a bounded chunk queue while "
             "this process runs the sketch updates, overlapping IO/parsing with "
             "compute; combines with --shards (serial fan-out), not with --parallel",
    )
    heavy.add_argument(
        "--queue-depth", type=int, default=4, metavar="CHUNKS",
        help="with --pipelined, the bound on the parse-ahead chunk queue "
             "(backpressure: memory stays around QUEUE_DEPTH x batch-size items; "
             "default 4)",
    )

    maximum = subparsers.add_parser("maximum", help="estimate the maximum frequency (eps-Maximum)")
    add_stream_options(maximum)

    minimum = subparsers.add_parser("minimum", help="estimate the minimum frequency (eps-Minimum)")
    add_stream_options(minimum)

    def add_election_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("election", help="path of the election file (one vote per line)")
        sub.add_argument("--epsilon", type=float, default=0.05)
        sub.add_argument("--phi", type=float, default=None,
                         help="optional reporting threshold for the List variant")
        sub.add_argument("--seed", type=int, default=None)

    borda = subparsers.add_parser("borda", help="estimate Borda scores from a vote stream")
    add_election_options(borda)

    maximin = subparsers.add_parser("maximin", help="estimate maximin scores from a vote stream")
    add_election_options(maximin)

    bounds = subparsers.add_parser("bounds", help="evaluate the Table 1 space-bound formulas")
    bounds.add_argument("--epsilon", type=float, default=0.01)
    bounds.add_argument("--phi", type=float, default=0.05)
    bounds.add_argument("--universe", type=int, default=1 << 20)
    bounds.add_argument("--stream-length", type=int, default=10 ** 6)

    return parser


def _parse_heavy_spec(specs: Sequence[str]) -> Dict[int, float]:
    heavy: Dict[int, float] = {}
    for spec in specs:
        item_text, _, fraction_text = spec.partition(":")
        if not fraction_text:
            raise SystemExit(f"--heavy expects ITEM:FRACTION, got {spec!r}")
        heavy[int(item_text)] = float(fraction_text)
    return heavy


def _command_generate(args: argparse.Namespace) -> int:
    rng = RandomSource(args.seed)
    if args.kind == "uniform":
        stream = uniform_stream(args.length, args.universe, rng=rng)
    elif args.kind == "zipf":
        stream = zipfian_stream(args.length, args.universe, skew=args.skew, rng=rng)
    else:
        heavy = _parse_heavy_spec(args.heavy) or {0: 0.2, 1: 0.1}
        stream = planted_heavy_hitters_stream(args.length, args.universe, heavy, rng=rng)
    save_stream(stream, args.output)
    print(f"wrote {len(stream)} items over universe {stream.universe_size} to {args.output}")
    return 0


def _replay_stream_file(algorithm, path: str, batch_size: Optional[int]) -> None:
    """Out-of-core replay of an on-disk trace into one algorithm instance.

    With a batch size, chunks flow straight from disk into ``insert_many`` (the fast
    path); without one, items are inserted one at a time (the paper's per-arrival
    reference semantics).  Either way the trace is never materialized in memory —
    ``consume`` does the per-item/batched dispatch over the lazy file iterator.
    """
    algorithm.consume(iterate_stream_file(path), batch_size=batch_size)


def _command_heavy_hitters(args: argparse.Namespace) -> int:
    metadata = stream_file_metadata(args.stream)
    length = metadata["length"]
    universe = args.universe if args.universe is not None else metadata["universe_size"]
    rng = RandomSource(args.seed)

    def build(instance_rng: RandomSource):
        if args.algorithm == "simple":
            return SimpleListHeavyHitters(
                epsilon=args.epsilon, phi=args.phi, universe_size=universe,
                stream_length=length, rng=instance_rng,
            )
        if args.algorithm == "optimal":
            return OptimalListHeavyHitters(
                epsilon=args.epsilon, phi=args.phi, universe_size=universe,
                stream_length=length, rng=instance_rng,
            )
        return MisraGries(epsilon=args.epsilon, universe_size=universe,
                          stream_length_hint=length)

    report_kwargs = {"phi": args.phi} if args.algorithm == "misra-gries" else {}
    replay_chunk = args.batch_size or REPLAY_CHUNK_ITEMS
    if args.pipelined:
        if args.parallel:
            raise SystemExit("--pipelined is incompatible with --parallel (the async "
                             "pipeline drives the serial fan-out)")
        if args.shards is not None:
            pipelined = PipelinedExecutor(
                executor=ShardedExecutor(
                    factory=lambda shard: build(rng.spawn(shard)),
                    num_shards=args.shards,
                    universe_size=universe,
                    rng=rng.spawn(-1),
                ),
                chunk_size=replay_chunk,
                queue_depth=args.queue_depth,
            )
        else:
            pipelined = PipelinedExecutor(
                sketch=build(rng), chunk_size=replay_chunk, queue_depth=args.queue_depth
            )
        result = pipelined.run(args.stream, report_kwargs=report_kwargs)
        report = result.report
        space_bits = result.space_bits()
        shard_line = (
            f"pipelined: queue_depth={result.queue_depth}  "
            f"max_queue_depth={result.max_queue_depth}  "
            f"ingest_seconds={result.ingest_seconds:.3f}  "
            f"combine_seconds={result.combine_seconds:.3f}"
        )
        if args.shards is not None:
            shard_line += (
                f"\nshards: {result.num_shards}  driver: pipelined  "
                f"sizes: {' '.join(map(str, result.shard_sizes))}"
            )
    elif args.shards is not None:
        executor = ShardedExecutor(
            factory=lambda shard: build(rng.spawn(shard)),
            num_shards=args.shards,
            universe_size=universe,
            rng=rng.spawn(-1),
        )
        result = executor.run_chunks(
            iterate_stream_file_chunks(args.stream, replay_chunk),
            batch_size=args.batch_size,
            parallel=args.parallel,
            report_kwargs=report_kwargs,
        )
        report = result.report
        space_bits = result.space_bits()
        shard_line = (
            f"shards: {result.num_shards}  "
            f"driver: {'parallel' if result.parallel else 'serial'}  "
            f"sizes: {' '.join(map(str, result.shard_sizes))}"
        )
    else:
        if args.parallel:
            raise SystemExit("--parallel requires --shards")
        algorithm = build(rng)
        _replay_stream_file(algorithm, args.stream, args.batch_size)
        report = algorithm.report(**report_kwargs)
        space_bits = algorithm.space_bits()
        shard_line = None
    print(f"stream: {length} items, universe {universe}")
    print(f"algorithm: {args.algorithm}  epsilon={args.epsilon}  phi={args.phi}")
    if shard_line is not None:
        print(shard_line)
    print(f"space_bits: {space_bits}")
    print(f"reported: {len(report)}")
    for item in report.reported_items():
        estimate = report.estimated_frequency(item)
        print(f"item {item}\testimate {estimate:.0f}\tshare {estimate / max(1, length):.4f}")
    return 0


def _command_maximum(args: argparse.Namespace) -> int:
    metadata = stream_file_metadata(args.stream)
    universe = args.universe if args.universe is not None else metadata["universe_size"]
    algorithm = EpsilonMaximum(
        epsilon=args.epsilon, universe_size=universe,
        stream_length=metadata["length"], rng=RandomSource(args.seed),
    )
    _replay_stream_file(algorithm, args.stream, args.batch_size)
    result = algorithm.report()
    print(f"stream: {metadata['length']} items, universe {universe}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"maximum_item: {result.item}")
    print(f"estimated_frequency: {result.estimated_frequency:.0f}")
    return 0


def _command_minimum(args: argparse.Namespace) -> int:
    metadata = stream_file_metadata(args.stream)
    universe = args.universe if args.universe is not None else metadata["universe_size"]
    algorithm = EpsilonMinimum(
        epsilon=args.epsilon, universe_size=universe,
        stream_length=metadata["length"], rng=RandomSource(args.seed),
    )
    _replay_stream_file(algorithm, args.stream, args.batch_size)
    result = algorithm.report()
    print(f"stream: {metadata['length']} items, universe {universe}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"minimum_item: {result.item}")
    print(f"estimated_frequency: {result.estimated_frequency:.0f}")
    return 0


def _command_borda(args: argparse.Namespace) -> int:
    election = load_election(args.election)
    algorithm = ListBorda(
        epsilon=args.epsilon, num_candidates=election.num_candidates,
        stream_length=len(election), phi=args.phi, rng=RandomSource(args.seed),
    )
    algorithm.consume(election.votes)
    report = algorithm.report()
    print(f"votes: {len(election)}  candidates: {election.num_candidates}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"approximate_winner: {report.approximate_winner()}")
    for candidate, score in report.top_candidates(election.num_candidates):
        print(f"candidate {candidate}\tborda {score:.0f}")
    if args.phi is not None:
        print(f"heavy_candidates: {' '.join(map(str, report.heavy_items))}")
    return 0


def _command_maximin(args: argparse.Namespace) -> int:
    election = load_election(args.election)
    algorithm = ListMaximin(
        epsilon=args.epsilon, num_candidates=election.num_candidates,
        stream_length=len(election), phi=args.phi, rng=RandomSource(args.seed),
    )
    algorithm.consume(election.votes)
    report = algorithm.report()
    print(f"votes: {len(election)}  candidates: {election.num_candidates}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"approximate_winner: {report.approximate_winner()}")
    for candidate, score in report.top_candidates(election.num_candidates):
        print(f"candidate {candidate}\tmaximin {score:.0f}")
    if args.phi is not None:
        print(f"heavy_candidates: {' '.join(map(str, report.heavy_items))}")
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    parameters = {
        "epsilon": args.epsilon, "phi": args.phi, "n": args.universe, "m": args.stream_length,
    }
    print(f"epsilon={args.epsilon} phi={args.phi} n={args.universe} m={args.stream_length}")
    for key, row in TABLE1_ROWS.items():
        kwargs = {name: parameters[name] for name in row.parameters}
        upper = row.upper_bound(**kwargs)
        lower = row.lower_bound(**kwargs)
        print(f"{key}\tupper_bits {upper:.1f}\tlower_bits {lower:.1f}")
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "heavy-hitters": _command_heavy_hitters,
    "maximum": _command_maximum,
    "minimum": _command_minimum,
    "borda": _command_borda,
    "maximin": _command_maximin,
    "bounds": _command_bounds,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
