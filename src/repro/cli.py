"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points for quick use on
on-disk traces without writing any Python:

* ``generate``       — write a synthetic stream (uniform / zipf / planted) to a file;
* ``heavy-hitters``  — run Algorithm 1 (or Algorithm 2 / Misra–Gries) over a stream file
  and print the reported heavy hitters, their estimates and the space used; scaling
  flags: ``--shards K`` (hash-partitioned fan-out), ``--parallel`` (process pool),
  ``--pipelined`` / ``--queue-depth`` (async replay: parsing overlaps sketch updates);
* ``maximum`` / ``minimum`` — the ε-Maximum / ε-Minimum problems over a stream file;
* ``borda`` / ``maximin``   — the ranking problems over an election file (one vote per
  line, candidate ids in preference order);
* ``bounds``         — evaluate the Table 1 space-bound formulas for given parameters;
* ``serve``          — run the heavy-hitter service (:mod:`repro.service`): a long-lived
  server ingesting pushed batches and answering live queries, with checkpoint/restore,
  optional replication (``--replicas R``: quorum queries, failover, self-healing), a
  graceful signal path (SIGTERM/SIGINT drain + final checkpoint), and deterministic
  fault injection (``--fault``) for chaos testing;
* ``push`` / ``query`` / ``checkpoint`` — the client side: stream a trace file to a
  server, print a (mid-ingest or final) report, write a server-side checkpoint;
* ``metrics``        — scrape a running server's metric registry over the frame
  protocol and print it in Prometheus text exposition format (or raw JSON).

Every command prints a small, stable, line-oriented report so the CLI can be scripted;
``query`` prints its ``item`` lines in exactly the ``heavy-hitters`` format so the two
can be diffed (the service round-trip CI job does exactly that).

Observability flags (see docs/OBSERVABILITY.md): the global ``--log-level`` /
``--log-json`` pair configures the ``repro.*`` logger hierarchy for every command;
``serve --metrics-port P`` starts a Prometheus-text HTTP sidecar next to the frame
listener, and ``serve --trace-log PATH`` appends one JSON line per pipeline span
(produce → enqueue → ingest → combine → snapshot) and served command.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import Dict, List, Optional, Sequence

from repro.baselines.misra_gries import MisraGries
from repro.observability import (
    MetricsHTTPServer,
    Tracer,
    configure_logging,
    get_registry,
    render_prometheus,
)
from repro.core.base import FrequencyEstimator
from repro.core.borda import ListBorda
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.maximin import ListMaximin
from repro.core.maximum import EpsilonMaximum
from repro.core.minimum import EpsilonMinimum
from repro.durability import WriteAheadLog, recover_sink, tear_tail
from repro.lowerbounds.bounds import TABLE1_ROWS
from repro.pipeline import PipelinedExecutor
from repro.primitives.rng import RandomSource
from repro.replication import FaultPlan, ReplicaGroup, ReplicaSupervisor, corrupt_file
from repro.service import (
    Checkpointer,
    IngestServer,
    RetryPolicy,
    ServiceClient,
    derive_stream_seed,
)
from repro.sharding import ShardedExecutor
from repro.streams.generators import (
    planted_heavy_hitters_stream,
    uniform_stream,
    zipfian_stream,
)
from repro.streams.io import (
    iterate_stream_file,
    iterate_stream_file_chunks,
    load_election,
    save_stream,
    stream_file_metadata,
)

# Chunk size for out-of-core replay of on-disk traces: the stream commands read their
# input through repro.streams.io's chunked iterator, so memory stays bounded by this
# many items (plus the algorithm's own state) no matter how large the trace is — except
# under --shards --parallel, whose driver materializes the partitioned trace to ship
# whole shards to worker processes (see ShardedExecutor.run_chunks).
REPLAY_CHUNK_ITEMS = 1 << 16


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal l1-heavy hitters in insertion streams (PODS 2016) - command line",
    )
    parser.add_argument(
        "--log-level", default="warning",
        choices=["debug", "info", "warning", "error", "critical"],
        help="threshold for the repro.* logger hierarchy (replica failover/heal, "
             "client retries, checkpoint rejections; default warning)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as one JSON object per line instead of human text",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="write a synthetic stream to a file")
    generate.add_argument("output", help="path of the stream file to write")
    generate.add_argument("--kind", choices=["uniform", "zipf", "planted"], default="zipf")
    generate.add_argument("--length", type=int, default=100_000)
    generate.add_argument("--universe", type=int, default=10_000)
    generate.add_argument("--skew", type=float, default=1.2, help="Zipf skew (kind=zipf)")
    generate.add_argument(
        "--heavy", action="append", default=[], metavar="ITEM:FRACTION",
        help="planted heavy item, e.g. --heavy 7:0.2 (kind=planted, repeatable)",
    )
    generate.add_argument("--seed", type=int, default=None)

    def add_stream_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("stream", help="path of the stream file (one integer item per line)")
        sub.add_argument("--epsilon", type=float, default=0.01)
        sub.add_argument("--universe", type=int, default=None,
                         help="universe size (defaults to the file header or max item + 1)")
        sub.add_argument("--seed", type=int, default=None)
        sub.add_argument("--batch-size", type=int, default=None, metavar="ITEMS",
                         help="ingest the stream in chunks of this many items through the "
                              "insert_many fast path (default: one item at a time)")

    heavy = subparsers.add_parser(
        "heavy-hitters",
        help="report the (eps, phi)-heavy hitters",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "scaling flag interactions:\n"
            "  --batch-size N   chunked insert_many ingestion; also sets the replay\n"
            "                   chunk size of --shards / --pipelined runs (default\n"
            "                   65536 items when only those flags are given).\n"
            "  --shards K       hash-partition the stream across K sketches and merge\n"
            "                   their summaries; serial unless --parallel.\n"
            "  --parallel       consume the shards in worker processes. Requires\n"
            "                   --shards (rejected alone: there is nothing to\n"
            "                   parallelize). Materializes the partitioned trace in\n"
            "                   memory, unlike the serial drivers' bounded replay.\n"
            "  --pipelined      parse the trace on a background thread into a bounded\n"
            "                   chunk queue while this process updates the sketches.\n"
            "                   Combines with --shards (the pipeline drives the serial\n"
            "                   fan-out chunk-atomically). Rejected with --parallel:\n"
            "                   the pipeline's consistency contract (chunk-atomic\n"
            "                   ingestion under one lock) is exactly what a process\n"
            "                   pool would bypass.\n"
            "  --queue-depth D  with --pipelined: the parse-ahead bound; memory is\n"
            "                   about D x batch-size items. Ignored without\n"
            "                   --pipelined.\n"
            "\n"
            "determinism: for a fixed --seed, serial runs (plain, --shards, and\n"
            "--pipelined, any combination) are bit-for-bit reproducible, and\n"
            "--pipelined output is bit-for-bit identical to the same serial replay;\n"
            "--parallel is reproducible run-to-run but does not replay the serial\n"
            "driver bit for bit (RandomSource re-seeds across process boundaries).\n"
        ),
    )
    add_stream_options(heavy)
    heavy.add_argument("--phi", type=float, default=0.05)
    heavy.add_argument(
        "--algorithm", choices=["simple", "optimal", "misra-gries"], default="simple",
        help="simple = Algorithm 1 (Theorem 1), optimal = Algorithm 2 (Theorem 2)",
    )
    heavy.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="hash-partition the stream across K independent sketch instances and "
             "merge their summaries at reporting time (see repro.sharding)",
    )
    heavy.add_argument(
        "--parallel", action="store_true",
        help="with --shards, consume the shards in parallel worker processes "
             "(materializes the partitioned stream in memory, unlike the serial "
             "driver's bounded-memory replay)",
    )
    heavy.add_argument(
        "--pipelined", action="store_true",
        help="replay the trace through the async pipeline (repro.pipeline): a "
             "background thread parses the file into a bounded chunk queue while "
             "this process runs the sketch updates, overlapping IO/parsing with "
             "compute; combines with --shards (serial fan-out), not with --parallel",
    )
    heavy.add_argument(
        "--queue-depth", type=int, default=4, metavar="CHUNKS",
        help="with --pipelined, the bound on the parse-ahead chunk queue "
             "(backpressure: memory stays around QUEUE_DEPTH x batch-size items; "
             "default 4)",
    )

    maximum = subparsers.add_parser("maximum", help="estimate the maximum frequency (eps-Maximum)")
    add_stream_options(maximum)

    minimum = subparsers.add_parser("minimum", help="estimate the minimum frequency (eps-Minimum)")
    add_stream_options(minimum)

    def add_election_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("election", help="path of the election file (one vote per line)")
        sub.add_argument("--epsilon", type=float, default=0.05)
        sub.add_argument("--phi", type=float, default=None,
                         help="optional reporting threshold for the List variant")
        sub.add_argument("--seed", type=int, default=None)

    borda = subparsers.add_parser("borda", help="estimate Borda scores from a vote stream")
    add_election_options(borda)

    maximin = subparsers.add_parser("maximin", help="estimate maximin scores from a vote stream")
    add_election_options(maximin)

    bounds = subparsers.add_parser("bounds", help="evaluate the Table 1 space-bound formulas")
    bounds.add_argument("--epsilon", type=float, default=0.01)
    bounds.add_argument("--phi", type=float, default=0.05)
    bounds.add_argument("--universe", type=int, default=1 << 20)
    bounds.add_argument("--stream-length", type=int, default=10 ** 6)

    def add_connect_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--connect", required=True, metavar="ENDPOINT",
            help="server endpoint: HOST:PORT (TCP) or unix:/path/to.sock",
        )

    serve = subparsers.add_parser(
        "serve",
        help="run the heavy-hitter service (network ingest + live queries)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "The server builds its sketch exactly as `heavy-hitters` would for the\n"
            "same --algorithm/--epsilon/--phi/--seed/--shards, so a served run and an\n"
            "offline replay of the same items with the same seed and chunk size\n"
            "produce bit-for-bit identical reports (diff `repro query` against\n"
            "`repro heavy-hitters --batch-size CHUNK_SIZE`).\n"
            "\n"
            "Length-parameterized sketches need the stream size up front, so\n"
            "--stream-length and --universe are required unless --restore supplies\n"
            "them from a checkpoint manifest. With --restore, sketch flags are\n"
            "ignored: the checkpoint carries the full sketch/shard state and the\n"
            "server resumes exactly where the checkpoint left off.\n"
            "\n"
            "The protocol trusts its network (no auth, server-side checkpoint\n"
            "paths): bind to localhost, a Unix socket, or a private network only.\n"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port; 0 picks an ephemeral port (default)")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="serve on a Unix domain socket instead of TCP")
    serve.add_argument("--epsilon", type=float, default=0.01)
    serve.add_argument("--phi", type=float, default=0.05)
    serve.add_argument("--universe", type=int, default=None)
    serve.add_argument("--stream-length", type=int, default=None,
                       help="declared total stream length (sizes the sketches)")
    serve.add_argument("--algorithm", choices=["simple", "optimal", "misra-gries"],
                       default="simple")
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument("--shards", type=int, default=None, metavar="K")
    serve.add_argument("--chunk-size", type=int, default=None, metavar="ITEMS",
                       help="ingestion chunk granularity (default 65536; from the "
                            "manifest under --restore)")
    serve.add_argument("--queue-depth", type=int, default=None, metavar="CHUNKS")
    serve.add_argument("--replicas", type=int, default=None, metavar="R",
                       help="run R independently-seeded replicas of the sketch behind "
                            "the push queue; queries answer by quorum/median and a "
                            "crashed replica is quarantined and re-seeded from a "
                            "survivor (see repro.replication)")
    serve.add_argument("--heal-after-chunks", type=int, default=0, metavar="CHUNKS",
                       help="with --replicas, delay re-seeding a failed replica by "
                            "this many ingested chunks (default 0: heal at the end "
                            "of the failing chunk)")
    serve.add_argument("--max-live-streams", type=int, default=None, metavar="N",
                       help="bound on named streams kept resident in memory; beyond "
                            "it the least-recently-used stream is checkpoint-evicted "
                            "to --stream-spill-dir and lazily restored (bit-for-bit) "
                            "on its next push/query")
    serve.add_argument("--stream-spill-dir", default=None, metavar="DIR",
                       help="directory for named-stream eviction spill files "
                            "(default: a private temporary directory)")
    serve.add_argument("--restore", default=None, metavar="CKPT",
                       help="resume from a checkpoint file written by `repro checkpoint` "
                            "(single-sketch or full replica group)")
    serve.add_argument("--checkpoint-path", default=None, metavar="PATH",
                       help="on SIGTERM/SIGINT, drain acked pushes and write a final "
                            "atomic checkpoint here before exiting")
    serve.add_argument("--wal-dir", default=None, metavar="DIR",
                       help="crash durability: journal every acked push to a "
                            "write-ahead log under DIR before acking, and on start "
                            "recover the acked prefix (newest checkpoint in DIR + "
                            "journal replay, torn tail truncated). Named streams get "
                            "per-stream journals under DIR/streams/. See "
                            "docs/DURABILITY.md")
    serve.add_argument("--wal-fsync", default="always", metavar="POLICY",
                       help="WAL fsync policy: 'always' (every append survives power "
                            "loss), 'interval:N' (fsync every N appends), or 'off' "
                            "(survives kill -9 but not power loss); default always")
    serve.add_argument("--wal-segment-bytes", type=int, default=None, metavar="BYTES",
                       help="rotate WAL segment files at this size (default 64 MiB); "
                            "checkpoints into --wal-dir compact obsolete segments")
    serve.add_argument("--fault", action="append", default=[], metavar="SPEC",
                       help="deterministic fault injection (repeatable): "
                            "kill:replica=I,after_chunk=C quarantines replica I "
                            "mid-ingest (needs --replicas); corrupt byte-flips the "
                            "final --checkpoint-path file after it is written; "
                            "crash:after_chunk=C os._exits mid-way through WAL "
                            "append C (needs --wal-dir); torn:bytes=B truncates B "
                            "bytes off the WAL tail after exit, or flips the final "
                            "byte when B=0 (needs --wal-dir) (chaos testing only)")
    serve.add_argument("--ready-file", default=None, metavar="PATH",
                       help="write the bound endpoint to this file once listening "
                            "(for scripts that need the ephemeral port)")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                       help="serve Prometheus text metrics over HTTP on this port "
                            "(GET /metrics; 0 picks an ephemeral port). The sidecar "
                            "scrapes the same registry the `metrics` command reads.")
    serve.add_argument("--trace-log", default=None, metavar="PATH",
                       help="append chunk-level trace spans (produce/enqueue/ingest/"
                            "combine/snapshot) and served commands to this JSONL file")

    push = subparsers.add_parser(
        "push",
        help="stream a trace file to a running server",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "--skip/--limit slice the trace by item position, so a stream can be\n"
            "pushed across several invocations (push --limit N, checkpoint, restart,\n"
            "push --skip N). For a checkpoint you intend to resume bit-for-bit,\n"
            "align the slice to the server's chunk size: the server checkpoints at\n"
            "chunk boundaries.\n"
            "\n"
            "--window W pipelines the push: up to W un-acked frames stay in flight\n"
            "(capped by the server's credit grant, its push queue depth), removing\n"
            "the per-batch round-trip stall. The server re-chunks identically either\n"
            "way, so the final report is unaffected; the default (1) is the plain\n"
            "one-round-trip-per-batch path.\n"
        ),
    )
    push.add_argument("stream", help="path of the stream file (one integer item per line)")
    add_connect_option(push)
    push.add_argument("--batch-size", type=int, default=None, metavar="ITEMS",
                      help="items per push frame (default 65536; the server re-chunks, "
                           "so this only affects framing, never the report)")
    push.add_argument("--window", type=int, default=1, metavar="FRAMES",
                      help="un-acked push frames kept in flight (credit-capped by the "
                           "server; 1 = one blocking round-trip per batch, the default)")
    push.add_argument("--skip", type=int, default=0, metavar="ITEMS",
                      help="skip this many leading items of the trace")
    push.add_argument("--limit", type=int, default=None, metavar="ITEMS",
                      help="push at most this many items")
    push.add_argument("--stream", dest="stream_name", default=None, metavar="NAME",
                      help="push into this named stream (created on first push) "
                           "instead of the server's default stream")
    push.add_argument("--finish", action="store_true",
                      help="declare end of stream after pushing (merges the shards "
                           "and fixes the final report; with --stream, seals that "
                           "named stream)")
    push.add_argument("--retries", type=int, default=3, metavar="N",
                      help="total connect/push attempts with exponential backoff + "
                           "jitter; a dropped connection mid-push resumes from the "
                           "server's acked count (default 3; 1 disables recovery)")
    push.add_argument("--fault", action="append", default=[], metavar="SPEC",
                      help="deterministic fault injection (repeatable): "
                           "drop:after_frame=F cuts the connection after F push "
                           "frames to exercise reconnect-and-resume (chaos testing)")

    query = subparsers.add_parser(
        "query",
        help="print a heavy-hitter report from a running server",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Mid-ingest, the report covers the chunk-aligned prefix ingested so far\n"
            "(`items_processed`, `final: false`); after `push --finish` it is the\n"
            "fixed end-of-stream report (`final: true`). Item lines are printed in\n"
            "the `heavy-hitters` format so the two commands diff cleanly.\n"
        ),
    )
    add_connect_option(query)
    query.add_argument("--phi", type=float, default=None,
                       help="report-time threshold override (only for sketches that "
                            "take phi at report time, i.e. misra-gries)")
    query.add_argument("--stream", dest="stream_name", default=None, metavar="NAME",
                       help="query this named stream's own sketch (restoring it "
                            "from its eviction spill if needed)")
    query.add_argument("--shutdown", action="store_true",
                       help="stop the server after answering")

    checkpoint = subparsers.add_parser(
        "checkpoint",
        help="write the server's full sketch/shard state to a server-side file",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Flushes first (so the checkpoint covers every complete chunk pushed so\n"
            "far), then serializes the un-merged sketch/shard state. The path is\n"
            "interpreted by the *server* process. Resume with\n"
            "`repro serve --restore PATH`, then push the remaining items.\n"
        ),
    )
    checkpoint.add_argument("output", help="server-side path of the checkpoint file")
    add_connect_option(checkpoint)
    checkpoint.add_argument("--stream", dest="stream_name", default=None, metavar="NAME",
                            help="checkpoint this named stream's sink instead of the "
                                 "default stream")
    checkpoint.add_argument("--shutdown", action="store_true",
                            help="stop the server after the checkpoint is written")

    metrics = subparsers.add_parser(
        "metrics",
        help="print a running server's metrics in Prometheus text format",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Fetches the server's metric registry snapshot over the frame protocol\n"
            "(the `metrics` command) and renders it in Prometheus text exposition\n"
            "format — byte-identical to what `serve --metrics-port` serves over\n"
            "HTTP, since both render the same snapshot. --json prints the raw\n"
            "snapshot (schema: metrics_schema / enabled / metrics) instead.\n"
        ),
    )
    add_connect_option(metrics)
    metrics.add_argument("--json", action="store_true", dest="as_json",
                         help="print the raw JSON snapshot instead of Prometheus text")

    lint = subparsers.add_parser(
        "lint",
        help="run the repo's AST-based invariant checker (repro.lint)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Checks the invariants no test can fully police: RNG discipline\n"
            "(all randomness through RandomSource), lock discipline in the\n"
            "threaded layers, determinism of report/merge/serialization paths,\n"
            "hot-path hygiene (no per-item loops or copies in the batch kernels),\n"
            "protocol-surface consistency (server commands == client methods ==\n"
            "docs; repro_-prefixed metrics), and thread resource safety.\n"
            "\n"
            "Suppress an intentional violation in place with\n"
            "`# repro: lint-ignore[rule-id] -- reason` (the reason is mandatory).\n"
            "Exit codes: 0 clean, 1 findings, 2 usage error.\n"
            "See docs/STATIC_ANALYSIS.md for the rule catalog.\n"
        ),
    )
    lint.add_argument("paths", nargs="*", default=None, metavar="PATH",
                      help="files or directories to lint (default: src/ if present, else .)")
    lint.add_argument("--rule", action="append", default=None, metavar="RULE-ID",
                      help="activate only this rule (repeatable; default: all rules)")
    lint.add_argument("--json", action="store_true", dest="as_json",
                      help="machine-readable findings (lint_schema 1) instead of text")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule ids and one-line descriptions, then exit")

    return parser


def _parse_heavy_spec(specs: Sequence[str]) -> Dict[int, float]:
    heavy: Dict[int, float] = {}
    for spec in specs:
        item_text, _, fraction_text = spec.partition(":")
        if not fraction_text:
            raise SystemExit(f"--heavy expects ITEM:FRACTION, got {spec!r}")
        heavy[int(item_text)] = float(fraction_text)
    return heavy


def _command_generate(args: argparse.Namespace) -> int:
    rng = RandomSource(args.seed)
    if args.kind == "uniform":
        stream = uniform_stream(args.length, args.universe, rng=rng)
    elif args.kind == "zipf":
        stream = zipfian_stream(args.length, args.universe, skew=args.skew, rng=rng)
    else:
        heavy = _parse_heavy_spec(args.heavy) or {0: 0.2, 1: 0.1}
        stream = planted_heavy_hitters_stream(args.length, args.universe, heavy, rng=rng)
    save_stream(stream, args.output)
    print(f"wrote {len(stream)} items over universe {stream.universe_size} to {args.output}")
    return 0


def _replay_stream_file(algorithm, path: str, batch_size: Optional[int]) -> None:
    """Out-of-core replay of an on-disk trace into one algorithm instance.

    With a batch size, chunks flow straight from disk into ``insert_many`` (the fast
    path); without one, items are inserted one at a time (the paper's per-arrival
    reference semantics).  Either way the trace is never materialized in memory —
    ``consume`` does the per-item/batched dispatch over the lazy file iterator.
    """
    algorithm.consume(iterate_stream_file(path), batch_size=batch_size)


def _sketch_builder(algorithm: str, epsilon: float, phi: float, universe: int,
                    stream_length: int):
    """The one place CLI commands build heavy-hitter sketches.

    Shared by ``heavy-hitters`` and ``serve`` so a served run and an offline
    replay construct *identical* sketches from identical flags — the premise of
    the service layer's served-equals-offline guarantee.  Returns a
    ``build(instance_rng)`` callable; Misra–Gries ignores the rng (deterministic).
    """

    def build(instance_rng: RandomSource) -> FrequencyEstimator:
        if algorithm == "simple":
            return SimpleListHeavyHitters(
                epsilon=epsilon, phi=phi, universe_size=universe,
                stream_length=stream_length, rng=instance_rng,
            )
        if algorithm == "optimal":
            return OptimalListHeavyHitters(
                epsilon=epsilon, phi=phi, universe_size=universe,
                stream_length=stream_length, rng=instance_rng,
            )
        return MisraGries(epsilon=epsilon, universe_size=universe,
                          stream_length_hint=stream_length)

    return build


def _sharded_executor(build, rng: RandomSource, shards: int, universe: int) -> ShardedExecutor:
    """The one place CLI commands wire a sharded executor.

    Shared by ``heavy-hitters`` (both drivers) and ``serve`` so the seeding
    order — router seed drawn first (``rng.spawn(-1)``), then one child per
    shard index — can never drift between the offline and served paths; the
    bit-for-bit diff between ``repro query`` and ``repro heavy-hitters``
    depends on it.
    """
    return ShardedExecutor(
        factory=lambda shard: build(rng.spawn(shard)),
        num_shards=shards,
        universe_size=universe,
        rng=rng.spawn(-1),
    )


def _print_heavy_hitter_lines(report, stream_length: int) -> None:
    """The shared ``reported:``/``item`` output block of ``heavy-hitters`` and ``query``.

    One helper on purpose: the CI service-smoke job ``diff``s the two commands'
    outputs, so the line format must be structurally shared, not coincidentally
    equal.
    """
    print(f"reported: {len(report)}")
    for item in report.reported_items():
        estimate = report.estimated_frequency(item)
        print(f"item {item}\testimate {estimate:.0f}\tshare {estimate / max(1, stream_length):.4f}")


def _positive_or_default(value: Optional[int], default: int, flag: str) -> int:
    """Resolve an optional positive-int flag without the falsy-zero trap.

    ``value or default`` would silently turn an explicit ``0`` into the default
    (the bug class PR 3 fixed for ``universe_size``); an explicit non-positive
    value is rejected instead.
    """
    if value is None:
        return default
    if value <= 0:
        raise SystemExit(f"{flag} must be positive, got {value}")
    return value


def _command_heavy_hitters(args: argparse.Namespace) -> int:
    replay_chunk = _positive_or_default(args.batch_size, REPLAY_CHUNK_ITEMS, "--batch-size")
    metadata = stream_file_metadata(args.stream)
    length = metadata["length"]
    universe = args.universe if args.universe is not None else metadata["universe_size"]
    rng = RandomSource(args.seed)
    build = _sketch_builder(args.algorithm, args.epsilon, args.phi, universe, length)
    report_kwargs = {"phi": args.phi} if args.algorithm == "misra-gries" else {}
    if args.pipelined:
        if args.parallel:
            raise SystemExit("--pipelined is incompatible with --parallel (the async "
                             "pipeline drives the serial fan-out)")
        if args.shards is not None:
            pipelined = PipelinedExecutor(
                executor=_sharded_executor(build, rng, args.shards, universe),
                chunk_size=replay_chunk,
                queue_depth=args.queue_depth,
            )
        else:
            pipelined = PipelinedExecutor(
                sketch=build(rng), chunk_size=replay_chunk, queue_depth=args.queue_depth
            )
        result = pipelined.run(args.stream, report_kwargs=report_kwargs)
        report = result.report
        space_bits = result.space_bits()
        shard_line = (
            f"pipelined: queue_depth={result.queue_depth}  "
            f"max_queue_depth={result.max_queue_depth}  "
            f"ingest_seconds={result.ingest_seconds:.3f}  "
            f"combine_seconds={result.combine_seconds:.3f}"
        )
        if args.shards is not None:
            shard_line += (
                f"\nshards: {result.num_shards}  driver: pipelined  "
                f"sizes: {' '.join(map(str, result.shard_sizes))}"
            )
    elif args.shards is not None:
        executor = _sharded_executor(build, rng, args.shards, universe)
        result = executor.run_chunks(
            iterate_stream_file_chunks(args.stream, replay_chunk),
            batch_size=args.batch_size,
            parallel=args.parallel,
            report_kwargs=report_kwargs,
        )
        report = result.report
        space_bits = result.space_bits()
        shard_line = (
            f"shards: {result.num_shards}  "
            f"driver: {'parallel' if result.parallel else 'serial'}  "
            f"sizes: {' '.join(map(str, result.shard_sizes))}"
        )
    else:
        if args.parallel:
            raise SystemExit("--parallel requires --shards")
        algorithm = build(rng)
        _replay_stream_file(algorithm, args.stream, args.batch_size)
        report = algorithm.report(**report_kwargs)
        space_bits = algorithm.space_bits()
        shard_line = None
    print(f"stream: {length} items, universe {universe}")
    print(f"algorithm: {args.algorithm}  epsilon={args.epsilon}  phi={args.phi}")
    if shard_line is not None:
        print(shard_line)
    print(f"space_bits: {space_bits}")
    _print_heavy_hitter_lines(report, length)
    return 0


def _command_maximum(args: argparse.Namespace) -> int:
    metadata = stream_file_metadata(args.stream)
    universe = args.universe if args.universe is not None else metadata["universe_size"]
    algorithm = EpsilonMaximum(
        epsilon=args.epsilon, universe_size=universe,
        stream_length=metadata["length"], rng=RandomSource(args.seed),
    )
    _replay_stream_file(algorithm, args.stream, args.batch_size)
    result = algorithm.report()
    print(f"stream: {metadata['length']} items, universe {universe}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"maximum_item: {result.item}")
    print(f"estimated_frequency: {result.estimated_frequency:.0f}")
    return 0


def _command_minimum(args: argparse.Namespace) -> int:
    metadata = stream_file_metadata(args.stream)
    universe = args.universe if args.universe is not None else metadata["universe_size"]
    algorithm = EpsilonMinimum(
        epsilon=args.epsilon, universe_size=universe,
        stream_length=metadata["length"], rng=RandomSource(args.seed),
    )
    _replay_stream_file(algorithm, args.stream, args.batch_size)
    result = algorithm.report()
    print(f"stream: {metadata['length']} items, universe {universe}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"minimum_item: {result.item}")
    print(f"estimated_frequency: {result.estimated_frequency:.0f}")
    return 0


def _command_borda(args: argparse.Namespace) -> int:
    election = load_election(args.election)
    algorithm = ListBorda(
        epsilon=args.epsilon, num_candidates=election.num_candidates,
        stream_length=len(election), phi=args.phi, rng=RandomSource(args.seed),
    )
    algorithm.consume(election.votes)
    report = algorithm.report()
    print(f"votes: {len(election)}  candidates: {election.num_candidates}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"approximate_winner: {report.approximate_winner()}")
    for candidate, score in report.top_candidates(election.num_candidates):
        print(f"candidate {candidate}\tborda {score:.0f}")
    if args.phi is not None:
        print(f"heavy_candidates: {' '.join(map(str, report.heavy_items))}")
    return 0


def _command_maximin(args: argparse.Namespace) -> int:
    election = load_election(args.election)
    algorithm = ListMaximin(
        epsilon=args.epsilon, num_candidates=election.num_candidates,
        stream_length=len(election), phi=args.phi, rng=RandomSource(args.seed),
    )
    algorithm.consume(election.votes)
    report = algorithm.report()
    print(f"votes: {len(election)}  candidates: {election.num_candidates}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"approximate_winner: {report.approximate_winner()}")
    for candidate, score in report.top_candidates(election.num_candidates):
        print(f"candidate {candidate}\tmaximin {score:.0f}")
    if args.phi is not None:
        print(f"heavy_candidates: {' '.join(map(str, report.heavy_items))}")
    return 0


DEFAULT_SERVICE_CHUNK = 1 << 16
DEFAULT_SERVICE_QUEUE_DEPTH = 4


def _install_shutdown_handlers(server: IngestServer, checkpoint_path: Optional[str]) -> None:
    """SIGTERM/SIGINT → drain acked pushes, final checkpoint, close the listener.

    Without this a signal kills the process with the push queue undrained —
    batches the server acked would silently never reach the sketch (let alone
    a checkpoint).  The handler runs :meth:`IngestServer.graceful_stop` on a
    helper thread (the drain can take seconds; a signal handler must return
    promptly) and a second signal forces an immediate :meth:`close`.  Handlers
    can only be installed from the main thread; elsewhere (tests driving
    ``main()`` from a worker thread) this is a silent no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        return
    state = {"stopping": False}

    def handler(signum, frame):
        if state["stopping"]:
            server.close()
            return
        state["stopping"] = True
        threading.Thread(
            target=server.graceful_stop,
            kwargs={"checkpoint_path": checkpoint_path},
            name="repro-service-graceful-stop",
            daemon=True,
        ).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - non-main interpreter quirks
            pass


def _command_serve(args: argparse.Namespace) -> int:
    for flag, value in (("--chunk-size", args.chunk_size), ("--queue-depth", args.queue_depth),
                        ("--replicas", args.replicas),
                        ("--max-live-streams", args.max_live_streams)):
        if value is not None and value <= 0:
            raise SystemExit(f"{flag} must be positive, got {value}")
    if args.heal_after_chunks < 0:
        raise SystemExit("--heal-after-chunks cannot be negative")
    if args.wal_segment_bytes is not None and args.wal_segment_bytes <= 0:
        raise SystemExit(f"--wal-segment-bytes must be positive, got {args.wal_segment_bytes}")
    try:
        WriteAheadLog.parse_fsync_policy(args.wal_fsync)
    except ValueError as exc:
        raise SystemExit(f"--wal-fsync: {exc}")
    try:
        fault_plan = FaultPlan.parse(args.fault) if args.fault else None
    except ValueError as exc:
        raise SystemExit(f"--fault: {exc}")
    if fault_plan is not None and args.replicas is None and any(
        spec.kind == "kill-replica" for spec in fault_plan.specs
    ):
        raise SystemExit("--fault kill:... needs --replicas")
    if fault_plan is not None and args.wal_dir is None and any(
        spec.kind in ("crash-process", "torn-write") for spec in fault_plan.specs
    ):
        raise SystemExit("--fault crash:.../torn:... need --wal-dir")
    if args.wal_dir is not None and args.restore is not None:
        raise SystemExit(
            "--restore and --wal-dir are mutually exclusive: the WAL directory "
            "carries its own checkpoints and recovery restores the newest one"
        )
    if args.metrics_port is not None and not 0 <= args.metrics_port <= 65535:
        raise SystemExit(f"--metrics-port must be in [0, 65535], got {args.metrics_port}")
    # One process-wide registry: the pipeline, the server, the checkpointer, the
    # replica group, the `metrics` command, and the HTTP sidecar all read/write
    # the same instruments.
    registry = get_registry()
    tracer = Tracer(args.trace_log) if args.trace_log else None
    supervisor = ReplicaSupervisor(heal_after_chunks=args.heal_after_chunks)
    if args.restore is not None:
        recovered = None
        pipeline, manifest = Checkpointer(registry=registry).restore_pipeline(
            args.restore, chunk_size=args.chunk_size, queue_depth=args.queue_depth,
            registry=registry, tracer=tracer,
        )
        if isinstance(pipeline, ReplicaGroup):
            pipeline.supervisor = supervisor
            pipeline.fault_plan = fault_plan
        config = dict(manifest.get("config", {}))
        universe = config.get("universe_size")
        report_kwargs = dict(config.get("report_kwargs", {}))
        # Named streams on a restored server: the manifest carries the sketch
        # parameters, so per-stream sinks can be rebuilt exactly as a fresh
        # serve with the same flags would build them.
        chunk_size = pipeline.chunk_size
        queue_depth = pipeline.queue_depth
        seed = config.get("seed")
        shards = config.get("shards")
        if (config.get("algorithm") in ("simple", "optimal", "misra-gries")
                and universe is not None and config.get("stream_length") is not None):
            build = _sketch_builder(
                str(config["algorithm"]), float(config.get("epsilon", 0.01)),
                float(config.get("phi", 0.05)), int(universe),
                int(config["stream_length"]),
            )
        else:
            build = None
    else:
        if args.universe is None or args.stream_length is None:
            raise SystemExit("serve requires --universe and --stream-length "
                             "(or --restore CKPT, whose manifest carries them)")
        chunk_size = args.chunk_size if args.chunk_size is not None else DEFAULT_SERVICE_CHUNK
        queue_depth = args.queue_depth if args.queue_depth is not None else DEFAULT_SERVICE_QUEUE_DEPTH
        universe = args.universe
        rng = RandomSource(args.seed)
        build = _sketch_builder(args.algorithm, args.epsilon, args.phi, universe,
                                args.stream_length)
        report_kwargs = {"phi": args.phi} if args.algorithm == "misra-gries" else {}

        def build_sink(instance_rng: RandomSource) -> PipelinedExecutor:
            """One replica (or the single sink): same wiring as `heavy-hitters`."""
            if args.shards is not None:
                return PipelinedExecutor(
                    executor=_sharded_executor(build, instance_rng, args.shards, universe),
                    chunk_size=chunk_size,
                    queue_depth=queue_depth,
                    registry=registry,
                    tracer=tracer,
                )
            return PipelinedExecutor(
                sketch=build(instance_rng), chunk_size=chunk_size, queue_depth=queue_depth,
                registry=registry, tracer=tracer,
            )

        def fresh_pipeline() -> "PipelinedExecutor | ReplicaGroup":
            if args.replicas is not None:
                # Replica i's whole seeding tree hangs off rng.spawn(i), so the
                # replicas are independently seeded but each is individually
                # reproducible from (--seed, i).
                return ReplicaGroup(
                    [build_sink(rng.spawn(index)) for index in range(args.replicas)],
                    chunk_size=chunk_size,
                    queue_depth=queue_depth,
                    supervisor=supervisor,
                    fault_plan=fault_plan,
                    registry=registry,
                    tracer=tracer,
                )
            return build_sink(rng)

        if args.wal_dir is not None:
            # Crash recovery IS the construction path: a fresh directory
            # recovers to exactly fresh_pipeline(), a crashed server's
            # directory recovers to the acked prefix (newest checkpoint +
            # journal replay), and either way the journal is reopened so the
            # first post-start ack is already durable.
            recovered = recover_sink(
                os.path.join(args.wal_dir, "default"),
                fresh_pipeline,
                chunk_size=chunk_size,
                fsync=args.wal_fsync,
                segment_bytes=args.wal_segment_bytes,
                queue_depth=queue_depth,
                registry=registry,
                tracer=tracer,
                fault_plan=fault_plan,
            )
            pipeline = recovered.sink
            if isinstance(pipeline, ReplicaGroup):
                pipeline.supervisor = supervisor
                pipeline.fault_plan = fault_plan
            print(
                f"wal: recovered from {recovered.source} "
                f"({recovered.recovered_chunks} chunk(s) + "
                f"{int(recovered.tail.size)} tail item(s) replayed, "
                f"{recovered.torn_bytes} torn byte(s) truncated)",
                flush=True,
            )
        else:
            recovered = None
            pipeline = fresh_pipeline()
        config = {
            "algorithm": args.algorithm, "epsilon": args.epsilon, "phi": args.phi,
            "universe_size": universe, "stream_length": args.stream_length,
            "seed": args.seed, "shards": args.shards,
            "report_kwargs": report_kwargs,
        }
        seed = args.seed
        shards = args.shards

    if build is not None:
        def stream_factory(name: str) -> PipelinedExecutor:
            """A fresh sink for one named stream, seeded stably from its name.

            The seed depends only on (--seed, name) — see derive_stream_seed —
            so `repro heavy-hitters` can replay any single stream offline and
            reproduce its served report bit for bit, independent of how many
            other streams the server hosted or in what order.
            """
            stream_rng = RandomSource(derive_stream_seed(seed, name))
            if shards is not None:
                return PipelinedExecutor(
                    executor=_sharded_executor(build, stream_rng, shards, universe),
                    chunk_size=chunk_size, queue_depth=queue_depth,
                    registry=registry, tracer=tracer,
                )
            return PipelinedExecutor(
                sketch=build(stream_rng), chunk_size=chunk_size,
                queue_depth=queue_depth, registry=registry, tracer=tracer,
            )
    else:
        stream_factory = None
        if args.max_live_streams is not None or args.stream_spill_dir is not None:
            raise SystemExit(
                "--max-live-streams/--stream-spill-dir need sketch parameters "
                "for per-stream sinks; this checkpoint's manifest does not "
                "carry them"
            )
    server = IngestServer(
        pipeline,
        host=args.host,
        port=args.port,
        unix_socket=args.socket,
        universe_size=universe,
        config=config,
        report_kwargs=report_kwargs,
        registry=registry,
        tracer=tracer,
        stream_factory=stream_factory,
        max_live_streams=args.max_live_streams,
        stream_spill_dir=args.stream_spill_dir,
        wal=recovered.wal if recovered is not None else None,
        wal_tail=recovered.tail if recovered is not None else None,
        stream_wal_dir=(
            os.path.join(args.wal_dir, "streams")
            if args.wal_dir is not None and stream_factory is not None else None
        ),
        wal_fsync=args.wal_fsync,
        wal_segment_bytes=args.wal_segment_bytes,
    )
    metrics_server = None
    try:
        server.start()
        if args.metrics_port is not None:
            metrics_server = MetricsHTTPServer(
                registry, host=args.host if args.socket is None else "127.0.0.1",
                port=args.metrics_port,
            )
            metrics_server.start()
        _install_shutdown_handlers(server, args.checkpoint_path)
        print(f"listening on {server.endpoint}", flush=True)
        if metrics_server is not None:
            print(f"metrics on {metrics_server.url}", flush=True)
        if args.ready_file:
            with open(args.ready_file, "w", encoding="utf-8") as handle:
                handle.write(server.endpoint + "\n")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            server.graceful_stop(checkpoint_path=args.checkpoint_path)
    finally:
        if metrics_server is not None:
            metrics_server.close()
        if tracer is not None:
            tracer.close()
    if (fault_plan is not None and fault_plan.should_corrupt()
            and args.checkpoint_path and os.path.exists(args.checkpoint_path)):
        offset = corrupt_file(args.checkpoint_path)
        print(f"fault: corrupted checkpoint {args.checkpoint_path} at byte {offset}",
              flush=True)
    if fault_plan is not None and args.wal_dir is not None:
        # Post-exit, like `corrupt`: the damage lands on the closed journal,
        # exactly the shape a real torn write presents to the next recovery.
        torn_bytes = fault_plan.pop_torn_bytes()
        if torn_bytes is not None:
            torn_path, torn_size = tear_tail(
                os.path.join(args.wal_dir, "default"), torn_bytes
            )
            print(f"fault: tore WAL tail {torn_path} to {torn_size} bytes",
                  flush=True)
    return 0


def _command_push(args: argparse.Namespace) -> int:
    if args.skip < 0:
        raise SystemExit("--skip cannot be negative")
    if args.limit is not None and args.limit < 0:
        raise SystemExit("--limit cannot be negative")
    if args.window <= 0:
        raise SystemExit(f"--window must be positive, got {args.window}")
    batch = _positive_or_default(args.batch_size, REPLAY_CHUNK_ITEMS, "--batch-size")
    counters = {"pushed": 0, "skipped": 0}

    def sliced_batches():
        """The trace's chunks with --skip/--limit applied, counting as they go."""
        for chunk in iterate_stream_file_chunks(args.stream, batch):
            if counters["skipped"] < args.skip:
                take = min(len(chunk), args.skip - counters["skipped"])
                counters["skipped"] += take
                chunk = chunk[take:]
                if not len(chunk):
                    continue
            if args.limit is not None and counters["pushed"] + len(chunk) > args.limit:
                chunk = chunk[: args.limit - counters["pushed"]]
            if len(chunk):
                counters["pushed"] += len(chunk)
                yield chunk
            if args.limit is not None and counters["pushed"] >= args.limit:
                return

    if args.retries <= 0:
        raise SystemExit(f"--retries must be positive, got {args.retries}")
    try:
        fault_plan = FaultPlan.parse(args.fault) if args.fault else None
    except ValueError as exc:
        raise SystemExit(f"--fault: {exc}")
    if fault_plan is not None and any(
        spec.kind != "drop-connection" for spec in fault_plan.specs
    ):
        raise SystemExit("push --fault only takes drop:after_frame=F specs")
    if fault_plan is not None and args.window <= 1:
        raise SystemExit("push --fault needs --window > 1 (faults fire on the "
                         "pipelined push path)")
    with ServiceClient(args.connect, retry=RetryPolicy(attempts=args.retries),
                       fault_plan=fault_plan) as client:
        if args.window > 1:
            client.push_stream(sliced_batches(), window=args.window,
                               stream=args.stream_name)
        else:
            for chunk in sliced_batches():
                client.push(chunk, stream=args.stream_name)
        flushed = client.flush(stream=args.stream_name)
        print(f"pushed {counters['pushed']} items (skipped {counters['skipped']})")
        print(f"items_received: {flushed['items_received']}")
        print(f"items_processed: {flushed['items_processed']}")
        if args.finish:
            info = client.finish(stream=args.stream_name)
            print(f"finished: {info['items_processed']} items in {info['chunks']} chunks")
    return 0


def _command_query(args: argparse.Namespace) -> int:
    with ServiceClient(args.connect) as client:
        result = client.query(phi=args.phi, stream=args.stream_name)
        print(f"items_processed: {result.items_processed}")
        print(f"final: {'true' if result.final else 'false'}")
        if result.degraded:
            # Only printed when true: unreplicated servers keep their exact
            # historical output (the CI service-smoke job diffs it).
            print("degraded: true")
        print(f"space_bits: {result.space_bits}")
        _print_heavy_hitter_lines(result.report, result.items_processed)
        if args.shutdown:
            client.shutdown()
    return 0


def _command_checkpoint(args: argparse.Namespace) -> int:
    with ServiceClient(args.connect) as client:
        client.flush(stream=args.stream_name)
        info = client.checkpoint(args.output, stream=args.stream_name)
        print(f"checkpoint: {info['path']}")
        print(f"items_processed: {info['items_processed']}")
        print(f"chunks: {info['chunks']}")
        print(f"kind: {info['kind']}")
        if args.shutdown:
            client.shutdown()
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    with ServiceClient(args.connect) as client:
        snapshot = client.metrics()
    if args.as_json:
        import json

        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        # render_prometheus reads only the snapshot's "metrics" section, so the
        # reply's transport keys ("ok") ride along harmlessly — the output is
        # byte-identical to the server's own --metrics-port sidecar.
        sys.stdout.write(render_prometheus(snapshot))
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    # Imported here, not at module top: the linter is a dev-facing tool and the
    # service/stream commands should not pay its import on their startup path.
    from pathlib import Path

    from repro.lint import (
        EXIT_USAGE,
        all_rules,
        render_json,
        render_text,
        run_lint,
    )

    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}: {rule.description}")
        return 0
    if args.paths:
        paths = [Path(path) for path in args.paths]
    else:
        paths = [Path("src") if Path("src").is_dir() else Path(".")]
    try:
        result = run_lint(paths, rules, rule_ids=args.rule)
    except (ValueError, FileNotFoundError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(render_json(result) if args.as_json else render_text(result))
    return result.exit_code


def _command_bounds(args: argparse.Namespace) -> int:
    parameters = {
        "epsilon": args.epsilon, "phi": args.phi, "n": args.universe, "m": args.stream_length,
    }
    print(f"epsilon={args.epsilon} phi={args.phi} n={args.universe} m={args.stream_length}")
    for key, row in TABLE1_ROWS.items():
        kwargs = {name: parameters[name] for name in row.parameters}
        upper = row.upper_bound(**kwargs)
        lower = row.lower_bound(**kwargs)
        print(f"{key}\tupper_bits {upper:.1f}\tlower_bits {lower:.1f}")
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "heavy-hitters": _command_heavy_hitters,
    "maximum": _command_maximum,
    "minimum": _command_minimum,
    "borda": _command_borda,
    "maximin": _command_maximin,
    "bounds": _command_bounds,
    "serve": _command_serve,
    "push": _command_push,
    "query": _command_query,
    "checkpoint": _command_checkpoint,
    "metrics": _command_metrics,
    "lint": _command_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, json_format=args.log_json)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
