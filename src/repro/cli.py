"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points for quick use on
on-disk traces without writing any Python:

* ``generate``       — write a synthetic stream (uniform / zipf / planted) to a file;
* ``heavy-hitters``  — run Algorithm 1 (or Algorithm 2 / Misra–Gries) over a stream file
  and print the reported heavy hitters, their estimates and the space used;
* ``maximum`` / ``minimum`` — the ε-Maximum / ε-Minimum problems over a stream file;
* ``borda`` / ``maximin``   — the ranking problems over an election file (one vote per
  line, candidate ids in preference order);
* ``bounds``         — evaluate the Table 1 space-bound formulas for given parameters.

Every command prints a small, stable, line-oriented report so the CLI can be scripted.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.baselines.misra_gries import MisraGries
from repro.core.borda import ListBorda
from repro.core.heavy_hitters_optimal import OptimalListHeavyHitters
from repro.core.heavy_hitters_simple import SimpleListHeavyHitters
from repro.core.maximin import ListMaximin
from repro.core.maximum import EpsilonMaximum
from repro.core.minimum import EpsilonMinimum
from repro.lowerbounds.bounds import TABLE1_ROWS
from repro.primitives.rng import RandomSource
from repro.streams.generators import (
    planted_heavy_hitters_stream,
    uniform_stream,
    zipfian_stream,
)
from repro.streams.io import load_election, load_stream, save_stream


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal l1-heavy hitters in insertion streams (PODS 2016) - command line",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="write a synthetic stream to a file")
    generate.add_argument("output", help="path of the stream file to write")
    generate.add_argument("--kind", choices=["uniform", "zipf", "planted"], default="zipf")
    generate.add_argument("--length", type=int, default=100_000)
    generate.add_argument("--universe", type=int, default=10_000)
    generate.add_argument("--skew", type=float, default=1.2, help="Zipf skew (kind=zipf)")
    generate.add_argument(
        "--heavy", action="append", default=[], metavar="ITEM:FRACTION",
        help="planted heavy item, e.g. --heavy 7:0.2 (kind=planted, repeatable)",
    )
    generate.add_argument("--seed", type=int, default=None)

    def add_stream_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("stream", help="path of the stream file (one integer item per line)")
        sub.add_argument("--epsilon", type=float, default=0.01)
        sub.add_argument("--universe", type=int, default=None,
                         help="universe size (defaults to the file header or max item + 1)")
        sub.add_argument("--seed", type=int, default=None)
        sub.add_argument("--batch-size", type=int, default=None, metavar="ITEMS",
                         help="ingest the stream in chunks of this many items through the "
                              "insert_many fast path (default: one item at a time)")

    heavy = subparsers.add_parser("heavy-hitters", help="report the (eps, phi)-heavy hitters")
    add_stream_options(heavy)
    heavy.add_argument("--phi", type=float, default=0.05)
    heavy.add_argument(
        "--algorithm", choices=["simple", "optimal", "misra-gries"], default="simple",
        help="simple = Algorithm 1 (Theorem 1), optimal = Algorithm 2 (Theorem 2)",
    )

    maximum = subparsers.add_parser("maximum", help="estimate the maximum frequency (eps-Maximum)")
    add_stream_options(maximum)

    minimum = subparsers.add_parser("minimum", help="estimate the minimum frequency (eps-Minimum)")
    add_stream_options(minimum)

    def add_election_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("election", help="path of the election file (one vote per line)")
        sub.add_argument("--epsilon", type=float, default=0.05)
        sub.add_argument("--phi", type=float, default=None,
                         help="optional reporting threshold for the List variant")
        sub.add_argument("--seed", type=int, default=None)

    borda = subparsers.add_parser("borda", help="estimate Borda scores from a vote stream")
    add_election_options(borda)

    maximin = subparsers.add_parser("maximin", help="estimate maximin scores from a vote stream")
    add_election_options(maximin)

    bounds = subparsers.add_parser("bounds", help="evaluate the Table 1 space-bound formulas")
    bounds.add_argument("--epsilon", type=float, default=0.01)
    bounds.add_argument("--phi", type=float, default=0.05)
    bounds.add_argument("--universe", type=int, default=1 << 20)
    bounds.add_argument("--stream-length", type=int, default=10 ** 6)

    return parser


def _parse_heavy_spec(specs: Sequence[str]) -> Dict[int, float]:
    heavy: Dict[int, float] = {}
    for spec in specs:
        item_text, _, fraction_text = spec.partition(":")
        if not fraction_text:
            raise SystemExit(f"--heavy expects ITEM:FRACTION, got {spec!r}")
        heavy[int(item_text)] = float(fraction_text)
    return heavy


def _command_generate(args: argparse.Namespace) -> int:
    rng = RandomSource(args.seed)
    if args.kind == "uniform":
        stream = uniform_stream(args.length, args.universe, rng=rng)
    elif args.kind == "zipf":
        stream = zipfian_stream(args.length, args.universe, skew=args.skew, rng=rng)
    else:
        heavy = _parse_heavy_spec(args.heavy) or {0: 0.2, 1: 0.1}
        stream = planted_heavy_hitters_stream(args.length, args.universe, heavy, rng=rng)
    save_stream(stream, args.output)
    print(f"wrote {len(stream)} items over universe {stream.universe_size} to {args.output}")
    return 0


def _command_heavy_hitters(args: argparse.Namespace) -> int:
    stream = load_stream(args.stream, universe_size=args.universe)
    rng = RandomSource(args.seed)
    if args.algorithm == "simple":
        algorithm = SimpleListHeavyHitters(
            epsilon=args.epsilon, phi=args.phi, universe_size=stream.universe_size,
            stream_length=len(stream), rng=rng,
        )
    elif args.algorithm == "optimal":
        algorithm = OptimalListHeavyHitters(
            epsilon=args.epsilon, phi=args.phi, universe_size=stream.universe_size,
            stream_length=len(stream), rng=rng,
        )
    else:
        algorithm = MisraGries(epsilon=args.epsilon, universe_size=stream.universe_size,
                               stream_length_hint=len(stream))
    algorithm.consume(stream, batch_size=args.batch_size)
    report = (
        algorithm.report(phi=args.phi) if args.algorithm == "misra-gries" else algorithm.report()
    )
    print(f"stream: {len(stream)} items, universe {stream.universe_size}")
    print(f"algorithm: {args.algorithm}  epsilon={args.epsilon}  phi={args.phi}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"reported: {len(report)}")
    for item in report.reported_items():
        estimate = report.estimated_frequency(item)
        print(f"item {item}\testimate {estimate:.0f}\tshare {estimate / len(stream):.4f}")
    return 0


def _command_maximum(args: argparse.Namespace) -> int:
    stream = load_stream(args.stream, universe_size=args.universe)
    algorithm = EpsilonMaximum(
        epsilon=args.epsilon, universe_size=stream.universe_size,
        stream_length=len(stream), rng=RandomSource(args.seed),
    )
    algorithm.consume(stream, batch_size=args.batch_size)
    result = algorithm.report()
    print(f"stream: {len(stream)} items, universe {stream.universe_size}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"maximum_item: {result.item}")
    print(f"estimated_frequency: {result.estimated_frequency:.0f}")
    return 0


def _command_minimum(args: argparse.Namespace) -> int:
    stream = load_stream(args.stream, universe_size=args.universe)
    algorithm = EpsilonMinimum(
        epsilon=args.epsilon, universe_size=stream.universe_size,
        stream_length=len(stream), rng=RandomSource(args.seed),
    )
    algorithm.consume(stream, batch_size=args.batch_size)
    result = algorithm.report()
    print(f"stream: {len(stream)} items, universe {stream.universe_size}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"minimum_item: {result.item}")
    print(f"estimated_frequency: {result.estimated_frequency:.0f}")
    return 0


def _command_borda(args: argparse.Namespace) -> int:
    election = load_election(args.election)
    algorithm = ListBorda(
        epsilon=args.epsilon, num_candidates=election.num_candidates,
        stream_length=len(election), phi=args.phi, rng=RandomSource(args.seed),
    )
    algorithm.consume(election.votes)
    report = algorithm.report()
    print(f"votes: {len(election)}  candidates: {election.num_candidates}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"approximate_winner: {report.approximate_winner()}")
    for candidate, score in report.top_candidates(election.num_candidates):
        print(f"candidate {candidate}\tborda {score:.0f}")
    if args.phi is not None:
        print(f"heavy_candidates: {' '.join(map(str, report.heavy_items))}")
    return 0


def _command_maximin(args: argparse.Namespace) -> int:
    election = load_election(args.election)
    algorithm = ListMaximin(
        epsilon=args.epsilon, num_candidates=election.num_candidates,
        stream_length=len(election), phi=args.phi, rng=RandomSource(args.seed),
    )
    algorithm.consume(election.votes)
    report = algorithm.report()
    print(f"votes: {len(election)}  candidates: {election.num_candidates}")
    print(f"space_bits: {algorithm.space_bits()}")
    print(f"approximate_winner: {report.approximate_winner()}")
    for candidate, score in report.top_candidates(election.num_candidates):
        print(f"candidate {candidate}\tmaximin {score:.0f}")
    if args.phi is not None:
        print(f"heavy_candidates: {' '.join(map(str, report.heavy_items))}")
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    parameters = {
        "epsilon": args.epsilon, "phi": args.phi, "n": args.universe, "m": args.stream_length,
    }
    print(f"epsilon={args.epsilon} phi={args.phi} n={args.universe} m={args.stream_length}")
    for key, row in TABLE1_ROWS.items():
        kwargs = {name: parameters[name] for name in row.parameters}
        upper = row.upper_bound(**kwargs)
        lower = row.lower_bound(**kwargs)
        print(f"{key}\tupper_bits {upper:.1f}\tlower_bits {lower:.1f}")
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "heavy-hitters": _command_heavy_hitters,
    "maximum": _command_maximum,
    "minimum": _command_minimum,
    "borda": _command_borda,
    "maximin": _command_maximin,
    "bounds": _command_bounds,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
