"""The :class:`Mergeable` protocol and helpers for building merge-compatible shards.

A summary is *mergeable* when two instances built with the same parameters can be
combined into one whose guarantee matches a single instance run over the concatenation
of their inputs.  This is the property that lets a stream be split across k independent
sketch instances (one per shard) and recombined at reporting time without silently
degrading the (ε,ϕ) guarantee of Definition 3:

* **Misra–Gries** and **Space-Saving** merge losslessly in the mergeable-summaries
  sense — the additive error bounds of the inputs add, staying within ε(m₁+m₂);
* **Count-Min** and **CountSketch** are linear sketches — with shared hash functions
  their tables literally add, and the merge is bit-for-bit exact;
* the paper's **Algorithm 1** merges its hashed Misra–Gries table losslessly and
  rebuilds the id side-table invariant; the paper's **Algorithm 2** combines its
  T2/T3 accelerated counters *additively*, which is unbiased in expectation with
  summed variance (see
  :meth:`repro.primitives.accelerated.EpochAcceleratedCounter.merge` for the
  expectation/variance caveats);
* the **exact baseline** merges trivially (counts add), which is what the sharded
  accuracy experiments use as ground truth.

Randomized sketches are only merge-compatible when their hash functions agree (a
Count-Min cell or an Algorithm 2 bucket must mean the same thing in every shard).
:func:`share_hash_functions` imposes that on a freshly built shard group, while each
shard keeps its *own* sampler/counter randomness — shards stay statistically
independent where the analysis needs them to be, and identical where the merge needs
them to be.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence, TypeVar, runtime_checkable


@runtime_checkable
class Mergeable(Protocol):
    """Anything that can fold a same-parameter peer into itself in place."""

    def merge(self, other: "Mergeable") -> None:
        """Absorb ``other``'s state; ``other`` must not be used afterwards."""
        ...


MergeableT = TypeVar("MergeableT")

# Attributes that must be *shared objects* across shards for merges to line up.
# Covers: Algorithm 1 (hash_function), Algorithm 2 / Count-Min (hash_functions),
# CountSketch (bucket_hashes + sign_hashes).  A new Mergeable sketch that stores
# hash state under a different name MUST be added here, or alignment is silently a
# no-op for it — its merge() equality check will then reject the shard group at
# combine time rather than at construction.
_SHARED_HASH_ATTRIBUTES = ("hash_function", "hash_functions", "bucket_hashes", "sign_hashes")


def share_hash_functions(sketches: Sequence[MergeableT]) -> Sequence[MergeableT]:
    """Make every sketch in a shard group use the first sketch's hash functions.

    The sketches must all be of the same type and built with the same parameters
    (same shape tables); only their hash-function attributes are overwritten, so each
    shard keeps its own independent sampler and counter randomness.  Sketches with no
    hash-function attributes (Misra–Gries, Space-Saving, Lossy Counting, the exact
    baseline) pass through untouched — their merges need no alignment.
    """
    if len(sketches) < 2:
        return sketches
    reference = sketches[0]
    for other in sketches[1:]:
        if type(other) is not type(reference):
            raise TypeError(
                "cannot align hash functions across mixed sketch types: "
                f"{type(reference).__name__} vs {type(other).__name__}"
            )
    for attribute in _SHARED_HASH_ATTRIBUTES:
        value = getattr(reference, attribute, None)
        if value is None:
            continue
        for other in sketches[1:]:
            setattr(other, attribute, value)
    return sketches


def merge_all(sketches: Sequence[MergeableT]) -> MergeableT:
    """Fold a shard group left-to-right into its first element and return it.

    Every sketch after the first is consumed (its state is absorbed; it must not be
    used again).  Raises on an empty group, and surfaces the per-type compatibility
    errors (parameter or hash-function mismatches) unchanged.
    """
    remaining: List[MergeableT] = list(sketches)
    if not remaining:
        raise ValueError("cannot merge an empty group of sketches")
    combined = remaining[0]
    if len(remaining) > 1 and not hasattr(combined, "merge"):
        raise TypeError(f"{type(combined).__name__} does not implement merge()")
    for other in remaining[1:]:
        combined.merge(other)  # type: ignore[attr-defined]
    return combined
