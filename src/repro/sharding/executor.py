"""Serial and process-parallel drivers for sharded ingestion (split → sketch → merge).

:class:`ShardedExecutor` owns the full sharded pipeline: a
:class:`~repro.sharding.router.ShardRouter` hash-partitions the stream, ``k``
independent sketch instances ingest their shards through the ``insert_many`` fast
path, the instances are folded back together with their ``merge`` implementations
(:mod:`repro.sharding.mergeable`), and one report is produced from the merged sketch —
so the (ε,ϕ) filter of Definition 1 is applied once, against the combined stream
length, never against per-shard lengths.

Two drivers share that pipeline:

* **serial** — one process, shards consumed round-robin chunk by chunk.  Useful as the
  semantics baseline and whenever the workload is too small to amortize process
  startup.
* **parallel** — a ``multiprocessing`` pool, one task per shard.  Each worker receives
  its (still-empty) sketch and its whole shard, consumes it, and ships the sketch
  back for the merge.

Determinism caveats (per-shard RNG seeding)
-------------------------------------------

Each shard's sketch owns its randomness (the factory receives the shard index, so give
every shard a distinct seed): shard j's draws are the same whether shards run
round-robin in one process or concurrently in k processes, which makes the *serial*
sharded driver bit-for-bit reproducible under a fixed seed.  The *parallel* driver is
also reproducible run-to-run, but does not replay the serial driver bit for bit: a
:class:`~repro.primitives.rng.RandomSource` re-seeds (deterministically) when it
crosses a process boundary — see the pickling note in :mod:`repro.primitives.rng`.
Sharded runs never replay a *single-instance* run bit for bit in any mode; the
accuracy experiment in :func:`repro.analysis.harness.run_sharded_comparison` exists to
check that their reports agree within the (ε,ϕ) guarantee, which is the equivalence
the mergeability analysis actually promises.
"""

from __future__ import annotations

import gc
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.base import StreamingAlgorithm
from repro.primitives.batching import iter_chunks
from repro.primitives.rng import RandomSource
from repro.primitives.space import SpaceMeter
from repro.sharding.mergeable import merge_all, share_hash_functions
from repro.sharding.router import ShardRouter, chunk_stream


def _consume_shard(payload):
    """Pool worker: consume one shard's items into its sketch and return the sketch.

    Must live at module level so it pickles; the sketch travels to the worker empty
    (cheap) and back full (bounded by the summary size, not the shard size).
    """
    sketch, items, batch_size = payload
    if batch_size is None:
        if len(items):
            sketch.insert_many(items)
    else:
        for chunk in iter_chunks(items, batch_size):
            sketch.insert_many(chunk)
    return sketch


@dataclass
class ShardedRunResult:
    """Everything a sharded run produces: the merged sketch, its report, and accounting.

    ``seconds`` is the whole run (kept for compatibility); it splits into
    ``ingest_seconds`` (partition materialization + routing + ``insert_many``, i.e.
    everything up to the last item landing in a shard sketch) and
    ``combine_seconds`` (merge + space accounting + report construction), so the
    driver's cost is attributed to the phase that actually paid it.
    """

    sketch: Any
    report: Any
    num_shards: int
    shard_sizes: List[int]
    parallel: bool
    seconds: float
    ingest_seconds: float = 0.0
    combine_seconds: float = 0.0
    space: SpaceMeter = field(default_factory=SpaceMeter)

    @property
    def items_processed(self) -> int:
        return sum(self.shard_sizes)

    def space_bits(self) -> int:
        """Combined space across the router and every shard's sketch, in bits."""
        return self.space.total_bits()


class ShardedExecutor:
    """Run one logical sketch as ``k`` hash-routed shards with a merge at the end.

    ``factory(shard_index)`` must build a fresh sketch for one shard, parameterized
    exactly as a single-instance run would be (in particular, length-parameterized
    sketches take the *full* stream length — the sampling rate is a global quantity).
    Give each shard a distinct seed, e.g. ``rng.spawn(shard_index)``; see the module
    docstring for what that buys.  ``align_hash_functions`` (default on) copies the
    first shard's hash functions to the others so the merge step lines up — see
    :func:`repro.sharding.mergeable.share_hash_functions`.
    """

    def __init__(
        self,
        factory: Callable[[int], StreamingAlgorithm],
        num_shards: int,
        universe_size: int,
        rng: Optional[RandomSource] = None,
        align_hash_functions: bool = True,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        rng = rng if rng is not None else RandomSource()
        self.num_shards = num_shards
        self.router = ShardRouter(num_shards, universe_size, rng=rng.spawn(1))
        self.sketches: List[StreamingAlgorithm] = [
            factory(shard) for shard in range(num_shards)
        ]
        # Fail before ingesting anything, not after: a non-mergeable sketch type
        # would otherwise consume the whole stream and then die in the combine step.
        if num_shards > 1 and not hasattr(self.sketches[0], "merge"):
            raise TypeError(
                f"{type(self.sketches[0]).__name__} does not implement merge(); "
                "sharded execution requires a Mergeable sketch"
            )
        if align_hash_functions:
            share_hash_functions(self.sketches)
        self._started = False
        self._finished = False

    @classmethod
    def from_shards(cls, sketches: Sequence[StreamingAlgorithm], router: ShardRouter) -> "ShardedExecutor":
        """Rebuild an executor around already-ingested shard sketches and their router.

        The restore half of checkpointing (see
        :meth:`repro.pipeline.PipelinedExecutor.from_sink_state`): the sketches and
        router are adopted as-is — no factory call, no hash realignment, no fresh
        randomness — so routing and per-shard state continue exactly where the
        capture left off.  The executor comes back *started* (its sketches hold a
        stream prefix), so :meth:`run`/:meth:`run_chunks` refuse; drive it with
        :meth:`ingest_chunk` + :meth:`combine`, or through a pipelined executor.

        Args:
            sketches: the shard group, in shard order (index ``j`` receives what
                ``router`` routes to shard ``j``).
            router: the :class:`~repro.sharding.router.ShardRouter` the prefix was
                routed with.

        Raises:
            ValueError: if ``sketches`` is empty or its length does not match the
                router's shard count.
        """
        if not sketches:
            raise ValueError("cannot restore an executor from an empty shard group")
        if router.num_shards != len(sketches):
            raise ValueError(
                f"router routes to {router.num_shards} shards but "
                f"{len(sketches)} sketches were given"
            )
        restored = cls.__new__(cls)
        restored.num_shards = len(sketches)
        restored.router = router
        restored.sketches = list(sketches)
        restored._started = True
        restored._finished = False
        return restored

    # -- drivers ------------------------------------------------------------------------

    def run(
        self,
        stream,
        batch_size: Optional[int] = None,
        parallel: bool = False,
        processes: Optional[int] = None,
        report_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> ShardedRunResult:
        """Ingest a whole stream, merge the shards, and report.

        ``stream`` may be a :class:`~repro.streams.stream.Stream`, a numpy array, or
        any iterable of items; ``batch_size`` bounds the chunk granularity of the
        serial driver and of each worker's ingestion (``None`` = one ``insert_many``
        call per shard).  The executor is single-shot: the merge consumes the shard
        sketches, so build a fresh executor per run.
        """
        return self.run_chunks(
            chunk_stream(stream, batch_size),
            batch_size=batch_size,
            parallel=parallel,
            processes=processes,
            report_kwargs=report_kwargs,
        )

    def run_chunks(
        self,
        chunks: Iterable[Sequence[int]],
        batch_size: Optional[int] = None,
        parallel: bool = False,
        processes: Optional[int] = None,
        report_kwargs: Optional[Mapping[str, Any]] = None,
    ) -> ShardedRunResult:
        """Ingest an iterable of pre-chunked batches (the out-of-core entry point).

        This is what the CLI replay path feeds with
        :func:`repro.streams.io.iterate_stream_file_chunks`: the serial driver routes
        each chunk as it arrives (memory stays bounded by the chunk size plus the
        summaries); the parallel driver must materialize per-shard arrays first, so
        its working set is the partitioned stream.
        """
        if self._started or self._finished:
            raise RuntimeError(
                "this ShardedExecutor has already ingested a stream; "
                "build a fresh executor per run"
            )
        self._started = True
        start = time.perf_counter()
        if parallel:
            shard_sizes = self._consume_parallel(chunks, batch_size, processes)
        else:
            shard_sizes = [0] * self.num_shards
            for chunk in chunks:
                for shard, delivered in enumerate(self.ingest_chunk(chunk)):
                    shard_sizes[shard] += delivered
        ingest_seconds = time.perf_counter() - start
        merged, report, space = self.combine(report_kwargs)
        combine_seconds = time.perf_counter() - start - ingest_seconds
        return ShardedRunResult(
            sketch=merged,
            report=report,
            num_shards=self.num_shards,
            shard_sizes=shard_sizes,
            parallel=parallel,
            seconds=ingest_seconds + combine_seconds,
            ingest_seconds=ingest_seconds,
            combine_seconds=combine_seconds,
            space=space,
        )

    def ingest_chunk(self, chunk: Sequence[int]) -> List[int]:
        """Route one chunk into the shard sketches; returns per-shard arrival counts.

        The single-chunk unit of the serial driver, exposed so an external loop (the
        pipelined executor's queue consumer) can drive ingestion chunk by chunk —
        e.g. holding a lock per chunk so a concurrent snapshot sees shard states that
        all correspond to the same stream prefix.  Call :meth:`combine` when the
        stream is exhausted.
        """
        if self._finished:
            raise RuntimeError("this ShardedExecutor has already merged its shards")
        self._started = True  # claim the executor: run_chunks on top would double-ingest
        return self.router.route_chunks([chunk], self.sketches)

    def combine(self, report_kwargs: Optional[Mapping[str, Any]] = None):
        """Merge the shards, account combined space, and report — single-shot.

        Returns ``(merged_sketch, report, space_meter)``.  The merge consumes the
        shard sketches, so the executor cannot ingest or combine again afterwards.
        """
        if self._finished:
            raise RuntimeError(
                "this ShardedExecutor has already run and merged its shards; "
                "build a fresh executor per run"
            )
        self._finished = True
        merged, space = self._merge_and_account()
        report = merged.report(**dict(report_kwargs or {}))
        return merged, report, space

    def _consume_parallel(
        self,
        chunks: Iterable[Sequence[int]],
        batch_size: Optional[int],
        processes: Optional[int],
    ) -> List[int]:
        pieces: List[List[np.ndarray]] = [[] for _ in range(self.num_shards)]
        for chunk in chunks:
            for shard, part in enumerate(self.router.partition(chunk)):
                if part.size:
                    pieces[shard].append(part)
        arrays = []
        for shard in range(self.num_shards):
            parts = pieces[shard]
            arrays.append(np.concatenate(parts) if parts else np.empty(0, dtype=np.int64))
            parts.clear()  # drop the fragments as we go: one stream copy, not two
        del pieces
        worker_count = min(processes or self.num_shards, self.num_shards)
        payloads = list(zip(self.sketches, arrays, [batch_size] * self.num_shards))
        # Freeze the GC generations around the fork: without this, the workers'
        # first collection touches (and copy-on-write-copies) every object the
        # parent ever allocated, which can dwarf the actual shard work.
        gc.freeze()
        try:
            with multiprocessing.Pool(processes=worker_count) as pool:
                self.sketches = pool.map(_consume_shard, payloads)
        finally:
            gc.unfreeze()
        return [int(array.size) for array in arrays]

    # -- combine ------------------------------------------------------------------------

    def _merge_and_account(self):
        """Fold the shards into one sketch and build the combined space meter.

        The combined meter answers the question the paper's Table 1 asks of a
        *deployment*: how many bits does the whole sharded system hold?  Each shard's
        declared components fold in under a ``shard<j>/`` prefix
        (:meth:`~repro.primitives.space.SpaceMeter.merge`), plus the router's hash
        description — the price of sharding is k times the summary space plus O(log n)
        routing bits, exactly the trade the mergeability analysis expects.
        """
        space = SpaceMeter()
        space.set_component("router", self.router.description_bits())
        for shard, sketch in enumerate(self.sketches):
            sketch.refresh_space()
            space.merge(sketch.space, prefix=f"shard{shard}/")
        merged = merge_all(self.sketches)
        return merged, space
