"""Sharded ingestion: hash-partitioned routing, mergeable summaries, parallel shards.

This package is the scaling seam between a single fast consumer (PR 1's batched
``insert_many`` path) and a multi-consumer deployment: it spreads one logical stream
across ``k`` independent sketch instances and recombines them into a single answer
without degrading the paper's (ε,ϕ) guarantee.  The pipeline is **split → sketch →
merge**:

1. **Split** — :class:`ShardRouter` assigns every item to a shard with one
   Carter–Wegman hash of its *id* (universal family of Section 2.4), so all
   occurrences of an item land in the same shard and each shard sees an honest
   sub-stream of ``~m/k`` arrivals in expectation.  Chunks are partitioned into
   contiguous per-shard arrays that feed each sketch's ``insert_many`` fast path.
2. **Sketch** — ``k`` instances of any of the package's heavy-hitter summaries ingest
   their shards, serially or in parallel (:class:`ShardedExecutor`'s
   ``multiprocessing`` driver, one worker per shard).
3. **Merge** — the instances fold back together through the :class:`Mergeable`
   protocol: Misra–Gries and Space-Saving merge losslessly (error bounds add, within
   ε(m₁+m₂)); Count-Min and CountSketch add their linear-sketch tables exactly; the
   paper's Algorithm 1 merges its hashed Misra–Gries core; Algorithm 2 combines its
   T2/T3 accelerated counters additively — unbiased in expectation, summed variance
   (see :meth:`repro.primitives.accelerated.EpochAcceleratedCounter.merge`).  One
   report is produced from the merged sketch, so the Definition 1 threshold is
   applied against the *combined* stream length.

Merge guarantees, in one line per family: deterministic counter summaries keep their
deterministic additive bound for the concatenated stream; linear sketches merge
bit-for-bit exactly; the sampled/accelerated algorithms keep the (ε,ϕ) guarantee with
the same confidence parameter, because sampling rates are global (shards are built
with the full stream length) and per-bucket estimators are additive in expectation.
The combine step is not assumed correct — it has its own accuracy experiment
(:func:`repro.analysis.harness.run_sharded_comparison`) comparing sharded against
single-instance recall/precision on the same stream.

Determinism: each shard owns its randomness (seed the factory per shard index), so
serial sharded runs are reproducible bit for bit; the parallel driver is reproducible
run-to-run but re-seeds sketch RNGs (deterministically) at process boundaries — see
:mod:`repro.sharding.executor` for the full caveats.

Quickstart::

    from repro import OptimalListHeavyHitters, RandomSource, zipfian_stream
    from repro.sharding import ShardedExecutor

    stream = zipfian_stream(1_000_000, 1 << 16, skew=1.2, rng=RandomSource(7))
    rng = RandomSource(11)
    executor = ShardedExecutor(
        factory=lambda shard: OptimalListHeavyHitters(
            epsilon=0.01, phi=0.05, universe_size=stream.universe_size,
            stream_length=len(stream), rng=rng.spawn(shard),
        ),
        num_shards=4,
        universe_size=stream.universe_size,
        rng=rng,
    )
    result = executor.run(stream, parallel=True)
    print(result.report.reported_items(), result.space_bits())
"""

from repro.sharding.mergeable import Mergeable, merge_all, share_hash_functions
from repro.sharding.router import ShardRouter
from repro.sharding.executor import ShardedExecutor, ShardedRunResult

__all__ = [
    "Mergeable",
    "merge_all",
    "share_hash_functions",
    "ShardRouter",
    "ShardedExecutor",
    "ShardedRunResult",
]
