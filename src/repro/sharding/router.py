"""Hash-partitioned stream routing (the split half of split → sketch → merge).

:class:`ShardRouter` assigns every universe item to one of ``k`` shards with a single
Carter–Wegman hash function drawn from the universal family of
:mod:`repro.primitives.hashing` (paper Section 2.4).  Routing by a hash of the *item
id* — rather than round-robin over arrival order — is what makes the downstream merge
step easy to reason about: all occurrences of an item land in the same shard, so an
item's true frequency is wholly contained in one shard's sub-stream and per-shard
frequency estimates never need cross-shard reconciliation.  Universality gives the
usual load guarantee in expectation: each shard receives ``m/k`` arrivals in
expectation, and no adversary that is oblivious to the hash draw can do better than
constant-factor imbalance on the heavy mass.

The router is batch-native: :meth:`partition` turns one incoming chunk into ``k``
contiguous numpy sub-arrays (one vectorized hash pass + one stable argsort), each of
which feeds the matching sketch's ``insert_many`` fast path directly.  The stable sort
preserves arrival order within a shard, so order-sensitive structures (Lossy
Counting's windows, Sticky Sampling's rate schedule) see exactly the sub-stream they
would have seen with per-item routing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.primitives.batching import as_item_array, iter_chunks, validate_universe
from repro.primitives.hashing import UniversalHashFamily, UniversalHashFunction
from repro.primitives.rng import RandomSource


def chunk_stream(items, batch_size: Optional[int] = None):
    """Normalize any stream-like input into an iterable of contiguous item arrays.

    Array-backed input (a :class:`~repro.streams.stream.Stream` or a numpy array)
    passes through in one piece when ``batch_size`` is unset; everything else is
    chunked through :func:`~repro.primitives.batching.iter_chunks` (default 2^16
    items).  Shared by :meth:`ShardRouter.route` and the sharded executor so the two
    cannot drift apart on chunking behavior.
    """
    if batch_size is None:
        backing = getattr(items, "array", None)
        if backing is None and isinstance(items, np.ndarray):
            backing = items
        if backing is not None:
            return [backing]
        return iter_chunks(items, 1 << 16)
    return iter_chunks(items, batch_size)


class ShardRouter:
    """Route stream items to ``num_shards`` shards by a universal hash of their id."""

    def __init__(
        self,
        num_shards: int,
        universe_size: int,
        rng: Optional[RandomSource] = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if universe_size <= 0:
            raise ValueError("universe_size must be positive")
        self.num_shards = num_shards
        self.universe_size = universe_size
        family = UniversalHashFamily(universe_size, num_shards, rng=rng)
        self.hash_function: UniversalHashFunction = family.draw()

    def shard_of(self, item: int) -> int:
        """The shard index an item routes to (same id, same shard — always)."""
        if not 0 <= item < self.universe_size:
            raise ValueError(f"item {item} outside universe [0, {self.universe_size})")
        return self.hash_function(item)

    def partition(self, items: Sequence[int]) -> List[np.ndarray]:
        """Split one chunk into ``num_shards`` contiguous per-shard sub-arrays.

        One vectorized Carter–Wegman pass assigns shards, one stable argsort groups
        them; within each returned sub-array the items keep their arrival order.
        Empty shards yield empty arrays, so ``partition(chunk)[j]`` always lines up
        with shard ``j``'s sketch.
        """
        array = as_item_array(items)
        validate_universe(array, self.universe_size)
        if self.num_shards == 1:
            return [array]
        if array.size == 0:
            return [array[:0] for _ in range(self.num_shards)]
        shards = self.hash_function.hash_many(array)
        order = np.argsort(shards, kind="stable")
        grouped = array[order]
        counts = np.bincount(shards, minlength=self.num_shards)
        boundaries = np.cumsum(counts)[:-1]
        return np.split(grouped, boundaries)

    def shard_sizes(self, items: Sequence[int]) -> List[int]:
        """How many arrivals of a chunk each shard would receive (no copying)."""
        array = as_item_array(items)
        validate_universe(array, self.universe_size)
        if array.size == 0:
            return [0] * self.num_shards
        shards = self.hash_function.hash_many(array)
        return np.bincount(shards, minlength=self.num_shards).tolist()

    def route_chunks(self, chunks, sinks: Sequence) -> List[int]:
        """Partition pre-chunked batches and feed ``sinks[j].insert_many`` per shard.

        The single implementation of the serial routing loop: :meth:`route` and the
        sharded executor's serial driver both land here.  Returns the number of items
        each sink received.
        """
        if len(sinks) != self.num_shards:
            raise ValueError(
                f"expected {self.num_shards} sinks (one per shard), got {len(sinks)}"
            )
        delivered = [0] * self.num_shards
        for chunk in chunks:
            for shard, part in enumerate(self.partition(chunk)):
                if part.size:
                    sinks[shard].insert_many(part)
                    delivered[shard] += int(part.size)
        return delivered

    def route(self, items, sinks: Sequence, batch_size: Optional[int] = None) -> List[int]:
        """Feed a stream through ``sinks[j].insert_many`` per shard, chunk by chunk.

        ``items`` may be anything :func:`chunk_stream` accepts (an array-backed
        stream or a plain iterable); with ``batch_size`` unset, array-backed input is
        routed in one pass.  Returns the number of items each sink received.  The
        parallel driver partitions first and ships whole shards to workers instead.
        """
        return self.route_chunks(chunk_stream(items, batch_size), sinks)

    def description_bits(self) -> int:
        """Bits to store the routing function (one Carter–Wegman pair, O(log n))."""
        return self.hash_function.description_bits()
