"""The heavy-hitter service layer: network ingest + live queries + checkpoint/restore.

This package is the fourth rung of the scaling ladder in ROADMAP.md — **batching**
(one consumer made fast) → **sharding** (one stream across k mergeable sketches) →
**async** (parsing overlaps compute) → **service** (this: the system crosses a
process boundary).  The paper frames heavy hitters as a query answered *about* a
stream; here the stream arrives from network clients and the query is answered by
a long-running server, mid-ingest, with the same Definition 1 semantics as an
offline run:

* :mod:`repro.service.protocol` — length-prefixed JSON + raw-int64 frames; the
  only hot-path command (``push``) moves item batches as numpy buffers;
* :class:`IngestServer` / :class:`QueryHandler`
  (:mod:`repro.service.server`) — accepts TCP or Unix-socket connections, feeds a
  :class:`~repro.pipeline.PipelinedExecutor` (single sketch or sharded fan-out)
  through a re-chunking push queue, and answers ``query``/``stats`` from
  chunk-aligned snapshots while ingestion continues;
* :class:`ServiceClient` (:mod:`repro.service.client`) — the blocking peer:
  ``push`` / ``flush`` / ``query`` / ``stats`` / ``checkpoint`` / ``finish`` /
  ``shutdown``; connects and idempotent commands retry with exponential
  backoff + jitter (:class:`RetryPolicy`), ``push_stream`` survives dropped
  connections by resuming from the server's acked count, and expired command
  deadlines surface as the typed :class:`ServiceTimeout`;
* :class:`Checkpointer` (:mod:`repro.service.checkpoint`) — full sketch/shard
  state to disk (atomic, versioned), so a restarted server resumes where it left
  off; see that module for the exact bit-for-bit resumption contract.

One server can host many independent *named streams*
(:class:`StreamRegistry`, :mod:`repro.service.registry`): every data command
accepts a ``stream`` frame key (absent ⇒ the implicit ``"default"`` stream, so
pre-tenancy clients keep working), streams are created/sealed/deleted with the
``stream_create`` / ``stream_seal`` / ``stream_delete`` / ``stream_list``
commands, and ``--max-live-streams`` bounds resident sinks with LRU
checkpoint-eviction — an evicted stream spills through the
:class:`Checkpointer` and lazily restores bit-for-bit on its next push/query.

For fault tolerance beyond one process, put a
:class:`~repro.replication.ReplicaGroup` behind the server (``repro serve
--replicas R``): every pushed chunk fans out to R independently-seeded
replicas, queries answer by quorum/median, a crashed replica is quarantined
and re-seeded from a survivor, and degraded-window replies carry
``degraded: true`` — see :mod:`repro.replication`.

The headline guarantee — **served equals offline** — is measured rather than
assumed: with identical seeds and chunk size, the report served over the socket is
bit-for-bit the offline ``run_chunks`` replay of the same items
(:func:`repro.analysis.harness.run_service_comparison`, ``BENCH_service.json``,
and the service round-trip tests all assert it).

Quickstart (in-process; the CLI equivalents are ``repro serve`` / ``push`` /
``query`` / ``checkpoint``)::

    from repro import SimpleListHeavyHitters
    from repro.pipeline import PipelinedExecutor
    from repro.service import IngestServer, ServiceClient

    sketch = SimpleListHeavyHitters(epsilon=0.01, phi=0.05,
                                    universe_size=10_000, stream_length=100_000)
    server = IngestServer(PipelinedExecutor(sketch=sketch), port=0).start()
    with ServiceClient(server.endpoint) as client:
        client.push(items)
        print(client.query().report.reported_items())   # live, mid-ingest
        client.finish()
        client.shutdown()
"""

from repro.service.checkpoint import CheckpointError, Checkpointer, CHECKPOINT_FORMAT
from repro.service.client import (
    NO_RETRY,
    QueryResult,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    parse_endpoint,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    STATS_SCHEMA_VERSION,
    ProtocolError,
)
from repro.service.registry import DEFAULT_STREAM, StreamRegistry, derive_stream_seed
from repro.service.server import IngestServer, QueryHandler

__all__ = [
    "CHECKPOINT_FORMAT",
    "CheckpointError",
    "Checkpointer",
    "DEFAULT_STREAM",
    "IngestServer",
    "NO_RETRY",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryHandler",
    "QueryResult",
    "RetryPolicy",
    "STATS_SCHEMA_VERSION",
    "ServiceClient",
    "ServiceError",
    "ServiceTimeout",
    "StreamRegistry",
    "derive_stream_seed",
    "parse_endpoint",
]
