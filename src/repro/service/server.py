"""The long-running heavy-hitter server: network ingest, live queries, checkpoints.

:class:`IngestServer` is the process boundary the scaling ladder (batching →
sharding → async → **service**) crosses: item batches arrive from
:class:`~repro.service.client.ServiceClient` peers over TCP or a Unix socket, flow
through a bounded push queue into a :class:`~repro.pipeline.PipelinedExecutor`
(single sketch or sharded fan-out — the server is sink-agnostic, exactly like the
pipeline), and Definition 1 heavy-hitter queries are answered **mid-ingest** from
chunk-aligned snapshots while ingestion continues.  A :class:`QueryHandler` owns
the read-only commands; the server owns the ingestion lifecycle (push → flush →
finish) and checkpointing via :class:`~repro.service.checkpoint.Checkpointer`.

Equivalence contract
--------------------

The server re-chunks pushed batches to exact ``chunk_size`` boundaries
(:class:`~repro.pipeline.producer.ArrayBatchSource`), so the sketches see the same
chunk sequence an offline ``run_chunks`` replay of the concatenated pushes would
see.  With identical seeds and chunk size, the final served report is therefore
**bit-for-bit identical** to the offline replay — measured, not assumed, by
:func:`repro.analysis.harness.run_service_comparison` and the service round-trip
tests.  The guarantee is stated for a single pusher (or externally ordered
pushes): concurrent pushers interleave batches nondeterministically, which keeps
the (ε,ϕ) guarantee but not bit-for-bit replayability.

Lifecycle
---------

``start()`` binds the socket and launches three kinds of thread: one acceptor, one
ingestion loop (the pipeline's ``run`` over the push queue), and one handler per
connection.  ``finish`` (the command) closes the push queue, waits for the
end-of-stream merge, and leaves the final report serving; ``shutdown`` (the
command) or :meth:`IngestServer.close` stops everything, joining every thread on
every path.  A server whose ingestion failed (e.g. a sketch raised) keeps
answering control commands with the failure message instead of hanging its
clients.
"""

from __future__ import annotations

import logging
import os
import queue
import socket
import threading
import time
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.observability.metrics import MetricRegistry, resolve_registry
from repro.observability.tracing import resolve_tracer
from repro.pipeline import ArrayBatchSource, PipelinedExecutor
from repro.replication import ReplicaGroup
from repro.sharding.mergeable import merge_all
from repro.service.checkpoint import Checkpointer
from repro.service.registry import DEFAULT_STREAM, StreamRegistry
from repro.service.protocol import (
    PROTOCOL_VERSION,
    STATS_SCHEMA_VERSION,
    ProtocolError,
    decode_items,
    recv_frame,
    report_to_payload,
    send_frame,
)

logger = logging.getLogger("repro.service")

_FINISH = object()  # push-queue sentinel: no more batches will arrive

#: How long ``flush``/``finish`` wait by default before giving up (seconds).
DEFAULT_WAIT_TIMEOUT = 60.0


class QueryHandler:
    """Answers the read-only service commands: ``config``, ``query``, ``stats``.

    Mid-ingest queries go through :meth:`PipelinedExecutor.snapshot` — a
    chunk-aligned deep copy merged and reported on while ingestion continues — so
    a served answer is exactly what a fresh run over the already-ingested prefix
    would report (Definition 1 semantics on the prefix).  Once the server has
    finished, the final run result answers instead, at zero copying cost.
    """

    def __init__(self, server: "IngestServer") -> None:
        self._server = server

    def config(self) -> Dict[str, object]:
        """The server's parameters and live counters (the ``config`` reply)."""
        server = self._server
        reply: Dict[str, object] = {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "chunk_size": server.pipeline.chunk_size,
            "queue_depth": server.pipeline.queue_depth,
            "num_shards": server.pipeline.num_shards,
            # The credit grant for pipelined pushes (ServiceClient.push_stream):
            # the client may keep this many un-acked push frames in flight, which
            # is exactly the bound on batches the server will buffer ahead of
            # ingestion, so pipelining never outruns the backpressure contract.
            "push_credits": server.push_queue_depth,
            "items_received": server.items_received,
            "items_processed": server.pipeline.items_processed,
            "finished": server.finished,
            "replicas": server.num_replicas,
            "degraded": server.degraded,
        }
        streams = server.streams
        if streams is not None:
            reply["max_live_streams"] = streams.max_live_streams
            reply["streams"] = streams.stream_count
            reply["live_streams"] = streams.live_count
        reply.update(server.config)
        return reply

    def query(self, request: Mapping[str, object]) -> Dict[str, object]:
        """A heavy-hitter report: mid-ingest snapshot or final result.

        ``request["phi"]``, when present, is forwarded to the sketch's
        ``report()`` — only meaningful for sketches that take the threshold at
        report time (Misra–Gries and friends); the paper's algorithms fix ϕ at
        construction and reject the override.
        """
        server = self._server
        kwargs = dict(server.report_kwargs)
        if "phi" in request:
            kwargs["phi"] = float(request["phi"])  # type: ignore[arg-type]

        def final_reply(result) -> Dict[str, object]:
            if kwargs != dict(server.report_kwargs):
                raise ValueError(
                    "cannot re-report a finished run with different report "
                    "arguments; query without overrides"
                )
            return {
                "ok": True,
                "final": True,
                "items_processed": result.items_processed,
                "space_bits": result.space_bits(),
                "degraded": bool(getattr(result, "degraded", False)),
                "report": report_to_payload(result.report),
            }

        result = server.result
        if result is not None:
            return final_reply(result)
        server.raise_if_failed()
        try:
            snapshot = server.pipeline.snapshot(report_kwargs=kwargs)
        except RuntimeError:
            # Lost the race with finalize: the final result is (about to be) set.
            return final_reply(server.wait_result(timeout=DEFAULT_WAIT_TIMEOUT))
        # A single-sink snapshot carries the merged sketch; a replicated
        # GroupSnapshot carries the summed footprint directly.
        sketch = getattr(snapshot, "sketch", None)
        space_bits = int(sketch.space_bits()) if sketch is not None else snapshot.space_bits
        return {
            "ok": True,
            "final": False,
            "items_processed": snapshot.items_processed,
            "space_bits": space_bits,
            "degraded": bool(getattr(snapshot, "degraded", False)),
            "report": report_to_payload(snapshot.report),
        }

    def _stats_common(self) -> Dict[str, object]:
        """The schema-v2 keys every ``stats`` reply carries, whatever its shape.

        ``stats_schema`` versions the reply the way ``protocol`` versions the
        frame layer (:data:`~repro.service.protocol.STATS_SCHEMA_VERSION`);
        ``pipeline`` surfaces the ingestion seam's own accounting — chunking
        parameters and the snapshot-cache hit/miss counters — uniformly for
        single and replicated sinks (a :class:`~repro.replication.ReplicaGroup`
        sums its replicas' cache counters).
        """
        server = self._server
        pipeline = server.pipeline
        return {
            "stats_schema": STATS_SCHEMA_VERSION,
            "pipeline": {
                "chunk_size": pipeline.chunk_size,
                "queue_depth": pipeline.queue_depth,
                "push_queue_depth": server.push_queue_depth,
                "snapshot_cache_hits": int(pipeline.snapshot_cache_hits),
                "snapshot_cache_misses": int(pipeline.snapshot_cache_misses),
            },
        }

    def stats(self) -> Dict[str, object]:
        """Space accounting and progress counters (the ``stats`` reply).

        Mid-ingest, the space numbers come from a merged copy of the sink state
        (:meth:`~repro.pipeline.PipelinedExecutor.sink_state` + merge, no report
        — a stats poll should not pay for heavy-hitter reporting it discards);
        after ``finish`` they come from the final result's combined
        :class:`~repro.primitives.space.SpaceMeter`.

        Every reply follows stats schema v2: it tags itself with
        ``stats_schema``, always carries ``degraded`` (``False`` for a
        single-executor server) and a ``pipeline`` section, and replicated
        final replies list per-replica ``space_bits`` exactly like the
        mid-ingest shape.  See docs/OBSERVABILITY.md for the full schema.
        """
        server = self._server

        def final_reply(result) -> Dict[str, object]:
            reply = {
                "ok": True,
                "final": True,
                "degraded": bool(getattr(result, "degraded", False)),
                "items_received": server.items_received,
                "items_processed": result.items_processed,
                "chunks": result.chunks,
                "shard_sizes": result.shard_sizes,
                "space_bits": result.space_bits(),
                "space_breakdown": {k: int(v) for k, v in result.space.breakdown().items()},
                "ingest_seconds": result.ingest_seconds,
                "combine_seconds": result.combine_seconds,
            }
            reply.update(self._stats_common())
            group = server.group
            if group is not None:
                replicas = group.replica_status_payload()
                # Schema v2: the final shape lists per-replica space like the
                # mid-ingest shape, so a dashboard reads one key either way.
                replica_results = getattr(result, "replica_results", None)
                if replica_results is not None:
                    for index, replica_result in enumerate(replica_results):
                        if replica_result is not None:
                            replicas[index]["space_bits"] = replica_result.space_bits()
                reply["replicas"] = replicas
                reply["live_replicas"] = getattr(result, "live_replicas", group.live_replicas)
                reply["num_replicas"] = group.num_replicas
                reply["events"] = group.events_payload()
            return reply

        result = server.result
        if result is not None:
            return final_reply(result)
        server.raise_if_failed()
        group = server.group
        if group is not None:
            # The group owns the per-replica accounting (health, events,
            # per-replica space under a replica<i>/ prefix).
            try:
                live = group.live_stats()
            except RuntimeError:
                return final_reply(server.wait_result(timeout=DEFAULT_WAIT_TIMEOUT))
            live.update({"ok": True, "final": False,
                         "items_received": server.items_received})
            live.update(self._stats_common())
            return live
        try:
            state = server.pipeline.sink_state()
        except RuntimeError:
            # Same race as query(): finalize won; answer from the final result.
            return final_reply(server.wait_result(timeout=DEFAULT_WAIT_TIMEOUT))
        sketch = merge_all(state.sketches)
        reply = {
            "ok": True,
            "final": False,
            "degraded": False,
            "items_received": server.items_received,
            "items_processed": state.items_processed,
            "chunks": state.chunks,
            "shard_sizes": list(state.shard_sizes),
            "space_bits": int(sketch.space_bits()),
            "space_breakdown": {k: int(v) for k, v in sketch.space_breakdown().items()},
        }
        reply.update(self._stats_common())
        return reply


class IngestServer:
    """Serve a heavy-hitter sketch over a socket: push batches, query live, checkpoint.

    Args:
        pipeline: a fresh (or checkpoint-restored) :class:`PipelinedExecutor`
            — or a :class:`~repro.replication.ReplicaGroup`, which exposes the
            same ingestion surface; the server claims its one permitted run.
            With a group, query/stats replies carry ``degraded`` and
            per-replica health, and checkpoints capture the whole quorum.
        host / port: TCP endpoint (``port=0`` binds an ephemeral port, reread it
            from :attr:`address` after :meth:`start`).  Ignored when
            ``unix_socket`` is given.
        unix_socket: filesystem path for an ``AF_UNIX`` endpoint instead of TCP.
        universe_size: upper bound for eager validation of pushed items; invalid
            batches are rejected at the socket instead of poisoning the
            ingestion thread.  Inferred from the sink when omitted (the router's
            universe, or the sketch's ``universe_size`` attribute).
        config: parameter manifest echoed in ``config`` replies and stored in
            checkpoints (ε, ϕ, algorithm name, seed, stream length, …).
        report_kwargs: forwarded to every ``report()`` call — snapshot queries
            and the final merge alike (e.g. ``{"phi": 0.05}`` for Misra–Gries).
        push_queue_depth: bound on the queue of not-yet-ingested pushed batches;
            a pusher outrunning ingestion blocks in its push round-trip once the
            queue is full (backpressure over the socket), so server memory stays
            at most this many batches plus the pipeline's chunk queue.
        registry: the :class:`~repro.observability.MetricRegistry` recording the
            ``repro_service_*`` instruments (per-command latency and errors,
            bytes in/out, in-flight connections, push-queue depth); defaults to
            the process-wide registry — which the ``metrics`` command and the
            ``--metrics-port`` sidecar expose, so pass the *same* registry the
            pipeline uses for one unified catalog.
        tracer: a :class:`~repro.observability.Tracer` receiving one ``command``
            span per dispatched frame; ``None`` disables tracing.
        stream_factory: factory called with a stream name to build a fresh sink
            for that *named* stream (see :class:`~repro.service.StreamRegistry`);
            enables the ``stream`` frame key and the ``stream_create`` /
            ``stream_seal`` / ``stream_delete`` / ``stream_list`` commands.
            ``None`` (the default) refuses named streams — the implicit
            ``"default"`` stream always works either way.
        max_live_streams: bound on named streams with a resident sink; beyond
            it the least-recently-used stream is checkpoint-evicted to
            ``stream_spill_dir`` and lazily restored on its next push/query.
        stream_spill_dir: directory for eviction spill files; a private
            temporary directory when omitted.

    Raises:
        ValueError: if ``pipeline`` was already run or finalized.
    """

    def __init__(
        self,
        pipeline: "PipelinedExecutor | ReplicaGroup",
        host: str = "127.0.0.1",
        port: int = 0,
        unix_socket: Optional[str] = None,
        universe_size: Optional[int] = None,
        config: Optional[Mapping[str, object]] = None,
        report_kwargs: Optional[Mapping[str, object]] = None,
        push_queue_depth: int = 64,
        registry: Optional[MetricRegistry] = None,
        tracer=None,
        stream_factory=None,
        max_live_streams: Optional[int] = None,
        stream_spill_dir: Optional[str] = None,
        wal=None,
        wal_tail=None,
        stream_wal_dir: Optional[str] = None,
        wal_fsync: str = "always",
        wal_segment_bytes: Optional[int] = None,
    ) -> None:
        if pipeline._started or pipeline._finished:
            raise ValueError("IngestServer needs a fresh (or restored) PipelinedExecutor")
        if push_queue_depth <= 0:
            raise ValueError("push_queue_depth must be positive")
        self._registry = resolve_registry(registry)
        self._tracer = resolve_tracer(tracer)
        self._metric_commands = self._registry.counter(
            "repro_service_commands_total",
            "Frames dispatched, by command.",
            labels=("command",),
        )
        self._metric_command_errors = self._registry.counter(
            "repro_service_command_errors_total",
            "Frames answered with an error reply, by command.",
            labels=("command",),
        )
        self._metric_command_seconds = self._registry.histogram(
            "repro_service_command_seconds",
            "Per-command dispatch latency (request decode to reply built).",
            labels=("command",),
        )
        self._metric_bytes_in = self._registry.counter(
            "repro_service_bytes_received_total",
            "Wire bytes received across all connections (prefix + header + payload).",
        )
        self._metric_bytes_out = self._registry.counter(
            "repro_service_bytes_sent_total",
            "Wire bytes sent across all connections (prefix + header + payload).",
        )
        self._metric_connections = self._registry.gauge(
            "repro_service_connections_in_flight",
            "Currently served client connections.",
        )
        self._metric_push_queue_depth = self._registry.gauge(
            "repro_service_push_queue_depth",
            "Accepted batches waiting in the bounded push queue (credit-window "
            "occupancy: the credit grant equals the queue bound).",
        )
        self.pipeline = pipeline
        self.config: Dict[str, object] = dict(config or {})
        self.report_kwargs: Dict[str, object] = dict(report_kwargs or {})
        self._host, self._port = host, port
        self._unix_socket = unix_socket
        self._group: Optional[ReplicaGroup] = (
            pipeline if isinstance(pipeline, ReplicaGroup) else None
        )
        if universe_size is None:
            if self._group is not None:
                universe_size = self._group.infer_universe_size()
            elif pipeline.executor is not None:
                universe_size = pipeline.executor.router.universe_size
            else:
                universe_size = getattr(pipeline.sketch, "universe_size", None)
        self.universe_size = universe_size

        # Bounded: a client pushing faster than ingestion blocks in its push
        # round-trip (see _enqueue) instead of growing server memory without
        # limit.  Worst-case buffering is push_queue_depth batches of whatever
        # size clients chose, plus the pipeline's queue_depth chunks.  The same
        # number is the credit grant for pipelined pushes (config reply).
        self.push_queue_depth = push_queue_depth
        self._push_queue: "queue.Queue" = queue.Queue(maxsize=push_queue_depth)
        self._push_lock = threading.Lock()
        self._items_received = pipeline.items_processed  # restored prefix counts
        self._ingest_base = pipeline.items_processed  # where this run's re-chunking starts
        self._finishing = False
        self._draining = False  # graceful_stop in progress: refuse new pushes
        self._stopping = threading.Event()
        self._finished_event = threading.Event()
        self._result = None
        self._run_error: Optional[BaseException] = None
        self._listen_sock: Optional[socket.socket] = None
        self._unix_inode: Optional[Tuple[int, int]] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._run_thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        self._close_lock = threading.Lock()
        self._closed = False
        self.query_handler = QueryHandler(self)
        self.checkpointer = Checkpointer(registry=self._registry)
        # The default stream's write-ahead log: when set, _handle_push journals
        # every batch under the push lock *before* enqueueing, so the ack that
        # follows is a durability promise (see repro.durability).  The server
        # adopts the journal (closes it in close()); a recovery tail — acked
        # items recover_sink replayed that had not filled a chunk — is enqueued
        # here exactly once and never re-journaled (it is already on disk).
        self._wal = wal
        self._shutdown_checkpoint_written = False
        if wal_tail is not None:
            tail = np.ascontiguousarray(wal_tail, dtype=np.int64)
            if tail.size:
                self._push_queue.put(tail)
                self._items_received += int(tail.size)
        self.streams: Optional[StreamRegistry] = None
        if stream_factory is not None:
            self.streams = StreamRegistry(
                stream_factory,
                chunk_size=pipeline.chunk_size,
                queue_depth=pipeline.queue_depth,
                max_live_streams=max_live_streams,
                spill_dir=stream_spill_dir,
                registry=self._registry,
                wal_dir=stream_wal_dir,
                wal_fsync=wal_fsync,
                wal_segment_bytes=wal_segment_bytes,
            )
        elif max_live_streams is not None or stream_spill_dir is not None:
            raise ValueError(
                "max_live_streams/stream_spill_dir need a stream_factory: "
                "without one the server serves only the default stream"
            )
        elif stream_wal_dir is not None:
            raise ValueError(
                "stream_wal_dir needs a stream_factory: without one the "
                "server serves only the default stream"
            )

    # -- lifecycle ----------------------------------------------------------------------

    def start(self) -> "IngestServer":
        """Bind the endpoint and launch the acceptor and ingestion threads."""
        if self._listen_sock is not None:
            raise RuntimeError("this IngestServer has already been started")
        if self._unix_socket is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if os.path.exists(self._unix_socket):
                os.unlink(self._unix_socket)
            sock.bind(self._unix_socket)
            # Remember which file *we* created: teardown may run long after a
            # successor server re-bound the same path, and must only ever
            # unlink its own socket file (see close()).
            stat = os.stat(self._unix_socket)
            self._unix_inode = (stat.st_dev, stat.st_ino)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self._host, self._port))
            self._host, self._port = sock.getsockname()[:2]
        sock.listen(16)
        # Accept with a timeout: closing a listening socket from another thread
        # does not reliably unblock a blocked accept() on Linux, so the acceptor
        # polls the stop flag instead of trusting close() to wake it.
        sock.settimeout(0.1)
        self._listen_sock = sock
        self._run_thread = threading.Thread(
            target=self._run, name="repro-service-ingest", daemon=True
        )
        self._run_thread.start()
        self._accept_thread = threading.Thread(
            target=self._accept, name="repro-service-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound TCP endpoint (host, port); meaningless for Unix sockets."""
        return self._host, self._port

    @property
    def endpoint(self) -> str:
        """The connect string clients use: ``host:port`` or ``unix:/path``."""
        if self._unix_socket is not None:
            return f"unix:{self._unix_socket}"
        return f"{self._host}:{self._port}"

    def serve_forever(self) -> None:
        """Block until a ``shutdown`` command (or :meth:`close`) stops the server."""
        self._stopping.wait()
        self.close()

    def close(self, join_timeout: float = 10.0) -> None:
        """Stop serving and join every thread; idempotent, safe from any thread.

        An unfinished ingestion run is finalized on whatever prefix arrived (the
        merge result is discarded); established connections are closed, which
        unblocks their handler threads.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        # Capture before the stop signal: once the run thread drains out it
        # finalizes the pipeline, and a finalized sink has no resumable state.
        self._write_shutdown_checkpoint()
        self._stopping.set()
        if self._listen_sock is not None:
            try:
                self._listen_sock.close()
            except OSError:
                pass
        # Unlink the Unix-socket path only if it is still the file this server
        # bound: a successor re-binding the same path during a delayed teardown
        # must not have its live socket deleted out from under it.
        if self._unix_socket is not None and self._unix_inode is not None:
            try:
                stat = os.stat(self._unix_socket)
                if (stat.st_dev, stat.st_ino) == self._unix_inode:
                    os.unlink(self._unix_socket)
            except OSError:
                pass
        if self._run_thread is not None:
            self._run_thread.join(timeout=join_timeout)
        with self._connections_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None and threading.current_thread() is not self._accept_thread:
            self._accept_thread.join(timeout=join_timeout)
        if self.streams is not None:
            self.streams.close()
        if self._wal is not None:
            self._wal.close()

    def _write_shutdown_checkpoint(self) -> None:
        """Leave a checkpoint inside the journal directory on any clean stop.

        Every :meth:`close` is by definition clean (a crash never runs it), so
        the restart can restore this checkpoint instead of replaying the whole
        journal — and compaction reclaims the covered segments.  Written at
        most once; skipped after a run error (the journal alone is the truth
        then) or once the stream finished (nothing resumable remains).
        """
        if self._wal is None or self._run_error is not None:
            return
        if self._shutdown_checkpoint_written:
            return
        self._shutdown_checkpoint_written = True
        shutdown_path = os.path.join(self._wal.directory, "shutdown.ckpt")
        try:
            state = self.pipeline.sink_state()
            self.checkpointer.save(
                shutdown_path, state, config=self._manifest_config(),
                wal_position=self._wal_position_for(state),
            )
            self._maybe_compact_wal(shutdown_path, state.items_processed)
        except RuntimeError:
            pass  # finished stream: the WAL still holds the full history

    def graceful_stop(
        self,
        checkpoint_path: Optional[str] = None,
        drain_timeout: float = 30.0,
    ) -> Optional[Dict[str, object]]:
        """Stop cleanly: refuse new work, drain acked batches, checkpoint, close.

        The signal-handler path of ``repro serve``: every batch a client was
        told ``ok`` for is ingested (up to the chunk-aligned flush target)
        before the final checkpoint is taken, so the checkpoint never loses
        acked data.  New pushes are refused with an error reply the moment the
        drain starts; the listener stops accepting as part of :meth:`close`.

        Args:
            checkpoint_path: when set, write a final atomic checkpoint of the
                sink (single executor or whole replica group) after draining.
                Skipped silently if the stream already finished (a finished
                sink has no resumable state — the final report stands instead).
            drain_timeout: bound on waiting for the push queue to drain; on
                expiry whatever was ingested so far is checkpointed.

        Returns:
            The checkpoint manifest when one was written, else ``None``.
        """
        with self._push_lock:
            self._draining = True
        deadline = time.monotonic() + drain_timeout
        target = self._flush_target()
        while (self.pipeline.items_processed < target
               and not self._finished_event.is_set()
               and self._run_error is None
               and time.monotonic() < deadline):
            time.sleep(0.002)
        manifest: Optional[Dict[str, object]] = None
        if checkpoint_path is not None and self._run_error is None:
            try:
                state = self.pipeline.sink_state()
                manifest = self.checkpointer.save(
                    checkpoint_path, state, config=self._manifest_config(),
                    wal_position=self._wal_position_for(state),
                )
                logger.info("final checkpoint written to %s (%d items)",
                            checkpoint_path, state.items_processed)
                self._maybe_compact_wal(checkpoint_path, state.items_processed)
            except RuntimeError:
                pass  # already finished: the final result stands, nothing to resume
        self._write_shutdown_checkpoint()
        self.close()
        return manifest

    def __enter__(self) -> "IngestServer":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # -- ingestion loop -----------------------------------------------------------------

    def _batch_source(self):
        """Drain the push queue; ends on the finish sentinel or server stop."""
        while True:
            try:
                batch = self._push_queue.get(timeout=0.05)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            if batch is _FINISH:
                return
            yield batch

    def _run(self) -> None:
        try:
            self._result = self.pipeline.run(
                ArrayBatchSource(self._batch_source()),
                report_kwargs=self.report_kwargs,
            )
        except BaseException as exc:  # noqa: BLE001 - reported to clients
            self._run_error = exc
        finally:
            self._finished_event.set()

    # -- shared state accessors ---------------------------------------------------------

    @property
    def items_received(self) -> int:
        """Total items accepted over the socket (plus any restored prefix)."""
        with self._push_lock:
            return self._items_received

    @property
    def group(self) -> Optional[ReplicaGroup]:
        """The replicated sink, or ``None`` for a single-executor server."""
        return self._group

    @property
    def num_replicas(self) -> int:
        """Replica count behind the push queue (1 for a single-executor server)."""
        return 1 if self._group is None else self._group.num_replicas

    @property
    def degraded(self) -> bool:
        """True while a replicated sink is serving with a quarantined replica."""
        if self._group is not None:
            return self._group.degraded
        result = self._result
        return bool(getattr(result, "degraded", False))

    @property
    def finished(self) -> bool:
        """Whether the end-of-stream merge has completed (or failed)."""
        return self._finished_event.is_set()

    @property
    def result(self):
        """The final :class:`~repro.pipeline.PipelinedRunResult`, or ``None``."""
        return self._result

    def raise_if_failed(self) -> None:
        """Surface an ingestion-thread failure to the calling command handler."""
        if self._run_error is not None:
            raise RuntimeError(f"ingestion failed: {self._run_error!r}")

    def wait_result(self, timeout: float = DEFAULT_WAIT_TIMEOUT):
        """Wait for the final run result (used when a query races finalization)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._result is not None:
                return self._result
            self.raise_if_failed()
            if not self._finished_event.wait(timeout=0.05):
                continue
        if self._result is not None:
            return self._result
        self.raise_if_failed()
        raise TimeoutError("timed out waiting for the final run result")

    # -- command implementations --------------------------------------------------------

    def _enqueue(self, batch) -> None:
        """Put one batch (or the finish sentinel) with backpressure.

        Blocks while the bounded push queue is full — that stalls the pushing
        client's round-trip, which is the backpressure propagating to the socket
        — but keeps checking for an ingestion failure or shutdown so a dead
        consumer turns into an error reply instead of a hung handler thread.
        """
        while True:
            try:
                self._push_queue.put(batch, timeout=0.05)
                return
            except queue.Full:
                self.raise_if_failed()
                if self._stopping.is_set():
                    raise RuntimeError("the server is shutting down")

    def _validated_items(self, request: Mapping[str, object], payload: bytes) -> np.ndarray:
        """Decode a push payload and validate it against the universe eagerly.

        Shared by the default stream's queued path and the named-stream path:
        an invalid batch is rejected at the socket either way, before it can
        reach any sink.
        """
        items = decode_items(dict(request), payload)
        if self.universe_size is not None and items.size:
            low, high = int(items.min()), int(items.max())
            if low < 0 or high >= self.universe_size:
                offending = low if low < 0 else high
                raise ValueError(
                    f"pushed batch contains item {offending} outside the universe "
                    f"[0, {self.universe_size})"
                )
        return items

    def _handle_push(self, request: Mapping[str, object], payload: bytes) -> Dict[str, object]:
        items = self._validated_items(request, payload)
        with self._push_lock:
            if self._finishing:
                raise RuntimeError("the stream has been finished; no further pushes")
            if self._draining:
                raise RuntimeError("the server is draining for shutdown; push rejected")
            if self._stopping.is_set():
                # Refuse rather than ack-and-drop: after shutdown begins the
                # ingestion thread may already have drained and exited, so an
                # enqueued batch would silently never ingest.
                raise RuntimeError("the server is shutting down; push rejected")
            self.raise_if_failed()
            if self._wal is not None:
                # Journal before enqueue, inside the lock: the WAL sees acked
                # batches in ack order, and a failed append turns into an error
                # reply before the batch can reach the pipeline — the client
                # retries against a server that never claimed durability.
                self._wal.append(items)
            self._enqueue(items)
            self._items_received += items.size
            received = self._items_received
        # qsize is advisory (the ingest loop drains concurrently) — exactly what
        # a credit-window occupancy gauge wants to show.
        self._metric_push_queue_depth.set(self._push_queue.qsize())
        return {"ok": True, "items": int(items.size), "items_received": received}

    def _flush_target(self) -> int:
        """Items guaranteed ingestable right now: received, minus the re-chunk remainder.

        Pushed items past the last exact ``chunk_size`` boundary sit in the
        re-chunk buffer until more arrive (or ``finish`` flushes them), so a
        flush can only wait for the complete-chunk prefix.  The re-chunker
        counts from this run's starting point (``_ingest_base`` — nonzero for a
        checkpoint-restored server, whose restored prefix need not be aligned to
        the *current* chunk size), not from item zero.
        """
        received = self.items_received
        return received - (received - self._ingest_base) % self.pipeline.chunk_size

    def _handle_flush(self, request: Mapping[str, object], payload: bytes) -> Dict[str, object]:
        timeout = float(request.get("timeout", DEFAULT_WAIT_TIMEOUT))
        target = self._flush_target()
        deadline = time.monotonic() + timeout
        while self.pipeline.items_processed < target and not self._finished_event.is_set():
            self.raise_if_failed()
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"flush timed out: {self.pipeline.items_processed} of {target} "
                    "items ingested"
                )
            time.sleep(0.002)
        self.raise_if_failed()
        return {
            "ok": True,
            "items_received": self.items_received,
            "items_processed": self.pipeline.items_processed,
            "flushed_to": target,
        }

    def _handle_finish(self, request: Mapping[str, object], payload: bytes) -> Dict[str, object]:
        timeout = float(request.get("timeout", DEFAULT_WAIT_TIMEOUT))
        with self._push_lock:
            if not self._finishing:
                self._finishing = True
                self._enqueue(_FINISH)
        result = self.wait_result(timeout=timeout)
        return {
            "ok": True,
            "items_processed": result.items_processed,
            "chunks": result.chunks,
            "seconds": result.seconds,
            "ingest_seconds": result.ingest_seconds,
            "combine_seconds": result.combine_seconds,
            "space_bits": result.space_bits(),
        }

    def _handle_checkpoint(self, request: Mapping[str, object], payload: bytes) -> Dict[str, object]:
        path = request.get("path")
        if not isinstance(path, str) or not path:
            raise ValueError("checkpoint requires a server-side 'path'")
        state = self.pipeline.sink_state()  # raises after finish: nothing resumable
        manifest = self.checkpointer.save(
            path, state, config=self._manifest_config(),
            wal_position=self._wal_position_for(state),
        )
        self._maybe_compact_wal(path, state.items_processed)
        return {
            "ok": True,
            "path": path,
            "items_processed": state.items_processed,
            "chunks": state.chunks,
            "kind": state.kind,
            "format": manifest["format"],
        }

    def _wal_position_for(self, state) -> Optional[int]:
        """The journal position a checkpoint of ``state`` covers, or ``None``.

        The WAL numbers records in absolute stream items — the same currency as
        ``SinkState.items_processed`` — so the position a checkpoint covers is
        simply the item count of the state it holds.  Recording the journal's
        *current* end instead would be wrong: batches acked after the state was
        captured would be skipped by replay and lost.
        """
        if self._wal is None:
            return None
        return int(state.items_processed)

    def _maybe_compact_wal(self, path: str, position: int) -> None:
        """Compact the journal after a checkpoint *recovery can find*.

        Only checkpoints written inside the WAL directory drive compaction:
        recovery scans ``{wal_dir}/*.ckpt``, so deleting segments on the
        strength of a checkpoint saved anywhere else could strand the only
        copy of acked data behind a path no restart will look at.
        """
        if self._wal is None:
            return
        if os.path.dirname(os.path.abspath(path)) == self._wal.directory:
            self._wal.compact(position)

    def _manifest_config(self) -> Dict[str, object]:
        config = dict(self.config)
        config.setdefault("chunk_size", self.pipeline.chunk_size)
        config.setdefault("queue_depth", self.pipeline.queue_depth)
        config.setdefault("num_shards", self.pipeline.num_shards)
        config.setdefault("replicas", self.num_replicas)
        if self.universe_size is not None:
            config.setdefault("universe_size", self.universe_size)
        if self.report_kwargs:
            config.setdefault("report_kwargs", dict(self.report_kwargs))
        return config

    def _handle_shutdown(self, request: Mapping[str, object], payload: bytes) -> Dict[str, object]:
        # The reply is sent by the dispatch loop; close() runs from a helper
        # thread after a grace period so the reply usually beats the teardown
        # (clients also tolerate EOF here — the teardown *is* the answer).
        def _close_soon() -> None:
            time.sleep(0.05)
            self.close()

        threading.Thread(target=_close_soon, name="repro-service-shutdown", daemon=True).start()
        return {"ok": True, "stopping": True}

    # -- connection plumbing ------------------------------------------------------------

    def _accept(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listen_sock.accept()
            except socket.timeout:  # poll the stop flag (it subclasses OSError)
                continue
            except OSError:
                return  # listening socket closed by close()
            if conn.family == socket.AF_INET:
                # Ack frames are tiny and sent back-to-back under pipelined
                # pushes; Nagle + delayed ACK would serialize them at ~40ms
                # each.  Every frame is one vectored send, so there is nothing
                # for Nagle to coalesce anyway.
                try:
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:
                    pass
            with self._connections_lock:
                self._connections.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-service-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        # Counter.inc/Gauge.inc short-circuit on a disabled registry, so wiring
        # the byte hooks unconditionally costs one no-op call per frame.
        self._metric_connections.inc()
        on_bytes_in = self._metric_bytes_in.inc
        on_bytes_out = self._metric_bytes_out.inc
        try:
            while not self._stopping.is_set():
                try:
                    frame = recv_frame(conn, on_bytes=on_bytes_in)
                except ProtocolError as exc:
                    # Log-and-drop: a truncated, oversized, or undecodable frame
                    # (including a disconnect mid-way through a pipelined push
                    # window) kills only this connection.  Complete frames
                    # received before the fault were already dispatched, so the
                    # sink holds exactly the fully-received batches — never a
                    # partial one.
                    logger.warning("dropping connection after protocol error: %s", exc)
                    return
                except OSError:
                    return
                if frame is None:
                    return
                request, payload = frame
                reply = self._dispatch(request, payload)
                try:
                    send_frame(conn, reply, on_bytes=on_bytes_out)
                except (ProtocolError, OSError):
                    return
        finally:
            self._metric_connections.dec()
            with self._connections_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    #: Label values for the per-command instruments; an unrecognized ``cmd``
    #: records as ``"invalid"`` so a misbehaving peer cannot grow the label set.
    _KNOWN_COMMANDS = frozenset(
        {"push", "flush", "query", "stats", "metrics", "config",
         "checkpoint", "finish", "shutdown",
         "stream_create", "stream_seal", "stream_delete", "stream_list"}
    )

    # -- named streams ------------------------------------------------------------------

    def _require_streams(self) -> StreamRegistry:
        if self.streams is None:
            raise RuntimeError(
                "this server was started without named-stream support "
                "(no stream_factory); only the default stream is served"
            )
        return self.streams

    @staticmethod
    def _stream_name(request: Mapping[str, object]) -> str:
        name = request.get("stream")
        if not isinstance(name, str) or not name:
            raise ValueError("this command requires a 'stream' name")
        if name == DEFAULT_STREAM:
            raise ValueError(
                f"{DEFAULT_STREAM!r} is the implicit stream; lifecycle "
                "commands apply to named streams only"
            )
        return name

    def _stream_report_kwargs(self, request: Mapping[str, object]) -> Dict[str, object]:
        kwargs = dict(self.report_kwargs)
        if "phi" in request:
            kwargs["phi"] = float(request["phi"])  # type: ignore[arg-type]
        return kwargs

    def _handle_stream_create(self, request: Mapping[str, object], payload: bytes) -> Dict[str, object]:
        info = self._require_streams().create(self._stream_name(request))
        reply: Dict[str, object] = {"ok": True}
        reply.update(info)
        return reply

    def _handle_stream_seal(self, request: Mapping[str, object], payload: bytes) -> Dict[str, object]:
        name = self._stream_name(request)
        result = self._require_streams().seal(
            name, report_kwargs=self._stream_report_kwargs(request)
        )
        return {
            "ok": True,
            "stream": name,
            "items_processed": result.items_processed,
            "chunks": result.chunks,
            "seconds": result.seconds,
            "ingest_seconds": result.ingest_seconds,
            "combine_seconds": result.combine_seconds,
            "space_bits": result.space_bits(),
        }

    def _handle_stream_delete(self, request: Mapping[str, object], payload: bytes) -> Dict[str, object]:
        info = self._require_streams().delete(self._stream_name(request))
        reply: Dict[str, object] = {"ok": True}
        reply.update(info)
        return reply

    def _handle_stream_list(self, request: Mapping[str, object], payload: bytes) -> Dict[str, object]:
        streams = self._require_streams()
        return {
            "ok": True,
            "streams": streams.list_streams(),
            "max_live_streams": streams.max_live_streams,
            "live_streams": streams.live_count,
        }

    def _dispatch_stream(
        self, command: object, name: str, request: Dict[str, object], payload: bytes
    ) -> Dict[str, object]:
        """Route a data command addressed to a *named* stream.

        Named streams ingest synchronously on the handler thread (see
        :class:`~repro.service.StreamRegistry`): the push ack covers every
        complete chunk, so ``flush`` never waits and replies instantly.
        Replies mirror the default stream's shapes, plus a ``stream`` echo.
        """
        streams = self._require_streams()
        if command == "push":
            items = self._validated_items(request, payload)
            received = streams.push(name, items)
            return {
                "ok": True,
                "stream": name,
                "items": int(items.size),
                "items_received": received,
            }
        if command == "flush":
            reply: Dict[str, object] = {"ok": True, "stream": name}
            reply.update(streams.flush_info(name))
            return reply
        if command == "query":
            final, answer = streams.query(
                name, report_kwargs=self._stream_report_kwargs(request)
            )
            if final:
                return {
                    "ok": True,
                    "final": True,
                    "stream": name,
                    "items_processed": answer.items_processed,
                    "space_bits": answer.space_bits(),
                    "degraded": bool(getattr(answer, "degraded", False)),
                    "report": report_to_payload(answer.report),
                }
            sketch = getattr(answer, "sketch", None)
            space_bits = (
                int(sketch.space_bits()) if sketch is not None else answer.space_bits
            )
            return {
                "ok": True,
                "final": False,
                "stream": name,
                "items_processed": answer.items_processed,
                "space_bits": space_bits,
                "degraded": bool(getattr(answer, "degraded", False)),
                "report": report_to_payload(answer.report),
            }
        if command == "stats":
            reply = {"ok": True, "stats_schema": STATS_SCHEMA_VERSION}
            reply.update(streams.stream_info(name))
            return reply
        if command == "config":
            reply = self.query_handler.config()
            # Stream-scoped counters so push_stream's resume cursor (and its
            # credit warm-up) works per stream exactly as it does globally.
            reply["stream"] = name
            reply["items_received"] = streams.items_received(name)
            return reply
        if command == "checkpoint":
            path = request.get("path")
            if not isinstance(path, str) or not path:
                raise ValueError("checkpoint requires a server-side 'path'")
            state = streams.checkpoint_state(name)
            config = self._manifest_config()
            config["stream"] = name
            manifest = self.checkpointer.save(
                path, state, config=config,
                wal_position=streams.wal_position_for(name, state),
            )
            return {
                "ok": True,
                "stream": name,
                "path": path,
                "items_processed": state.items_processed,
                "chunks": state.chunks,
                "kind": state.kind,
                "format": manifest["format"],
            }
        if command == "finish":
            result = streams.seal(
                name, report_kwargs=self._stream_report_kwargs(request)
            )
            return {
                "ok": True,
                "stream": name,
                "items_processed": result.items_processed,
                "chunks": result.chunks,
                "seconds": result.seconds,
                "ingest_seconds": result.ingest_seconds,
                "combine_seconds": result.combine_seconds,
                "space_bits": result.space_bits(),
            }
        raise ValueError(f"command {command!r} does not accept a stream")

    def _handle_metrics(self, request: Mapping[str, object], payload: bytes) -> Dict[str, object]:
        """The ``metrics`` command: the registry snapshot as a JSON-safe reply.

        The same shape the sidecar's ``/metrics.json`` serves;
        :meth:`~repro.service.client.ServiceClient.metrics` returns it verbatim
        and ``repro metrics`` renders it with the shared Prometheus renderer.
        """
        reply: Dict[str, object] = {"ok": True}
        reply.update(self._registry.snapshot())
        return reply

    def _dispatch(self, request: Dict[str, object], payload: bytes) -> Dict[str, object]:
        command = request.get("cmd")
        observe = self._registry.enabled or self._tracer.enabled
        started = time.perf_counter() if observe else 0.0
        reply = self._dispatch_inner(command, request, payload)
        if observe:
            seconds = time.perf_counter() - started
            name = command if command in self._KNOWN_COMMANDS else "invalid"
            ok = bool(reply.get("ok", False))
            self._metric_commands.labels(command=name).inc()
            self._metric_command_seconds.labels(command=name).observe(seconds)
            if not ok:
                self._metric_command_errors.labels(command=name).inc()
            if self._tracer.enabled:
                self._tracer.emit("command", seconds=seconds, command=name, ok=ok)
        return reply

    def _dispatch_inner(
        self, command: object, request: Dict[str, object], payload: bytes
    ) -> Dict[str, object]:
        try:
            if command == "stream_create":
                return self._handle_stream_create(request, payload)
            if command == "stream_seal":
                return self._handle_stream_seal(request, payload)
            if command == "stream_delete":
                return self._handle_stream_delete(request, payload)
            if command == "stream_list":
                return self._handle_stream_list(request, payload)
            stream = request.get("stream", DEFAULT_STREAM)
            if not isinstance(stream, str) or not stream:
                raise ValueError("stream must be a non-empty string")
            if stream != DEFAULT_STREAM and command in self._KNOWN_COMMANDS:
                return self._dispatch_stream(command, stream, request, payload)
            if command == "push":
                return self._handle_push(request, payload)
            if command == "flush":
                return self._handle_flush(request, payload)
            if command == "query":
                return self.query_handler.query(request)
            if command == "stats":
                return self.query_handler.stats()
            if command == "metrics":
                return self._handle_metrics(request, payload)
            if command == "config":
                return self.query_handler.config()
            if command == "checkpoint":
                return self._handle_checkpoint(request, payload)
            if command == "finish":
                return self._handle_finish(request, payload)
            if command == "shutdown":
                return self._handle_shutdown(request, payload)
            raise ValueError(f"unknown command {command!r}")
        except Exception as exc:  # noqa: BLE001 - every command error becomes a reply
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
