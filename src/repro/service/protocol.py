"""The wire protocol of the heavy-hitter service: length-prefixed JSON + numpy frames.

One frame is::

    +----------------+---------------------+----------------------------+
    | header length  | header (JSON bytes) | payload (raw bytes)        |
    | 4 bytes, !I    | exactly that many   | header["payload_bytes"]    |
    +----------------+---------------------+----------------------------+

The header is a flat JSON object; its ``cmd`` key names the request (``config``,
``push``, ``flush``, ``query``, ``stats``, ``checkpoint``, ``finish``,
``shutdown``) and replies either echo data keys or carry an ``error`` string.  The
only command with a payload is ``push``: ``header["items"]`` int64 item ids as raw
little-endian bytes (``payload_bytes == 8 * items``), which both ends move with
``ndarray.tobytes()`` / ``np.frombuffer`` — no per-item encoding on the hot path.

The protocol is deliberately minimal and **trusts its network**: no authentication,
no encryption, and the ``checkpoint`` command writes a server-side path.  Run it on
localhost, a Unix socket, or an otherwise private network, as you would a plain
memcached.  Frame sizes are capped (:data:`MAX_HEADER_BYTES`,
:data:`MAX_PAYLOAD_BYTES`) so a malformed or hostile peer cannot make either end
allocate unboundedly.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.results import HeavyHittersReport

#: Protocol version, exchanged in ``config`` replies; bump on incompatible changes.
PROTOCOL_VERSION = 1

#: Upper bound on a frame's JSON header (a header is a small command/reply object).
MAX_HEADER_BYTES = 1 << 20

#: Upper bound on a frame's payload (128 Mi items per push at 8 bytes each).
MAX_PAYLOAD_BYTES = 1 << 30

#: The dtype items travel as: little-endian int64, explicitly sized so both ends
#: agree regardless of platform endianness.
ITEM_DTYPE = np.dtype("<i8")


class ProtocolError(ConnectionError):
    """A malformed, truncated, or oversized frame (either direction)."""


def _recv_exact(sock: socket.socket, num_bytes: int) -> Optional[bytes]:
    """Read exactly ``num_bytes``; ``None`` on clean EOF at a frame boundary.

    Raises:
        ProtocolError: on EOF in the middle of a frame.
    """
    if num_bytes == 0:
        return b""
    pieces = []
    remaining = num_bytes
    while remaining:
        piece = sock.recv(min(remaining, 1 << 20))
        if not piece:
            if remaining == num_bytes:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({num_bytes - remaining} of "
                f"{num_bytes} bytes received)"
            )
        pieces.append(piece)
        remaining -= len(piece)
    return b"".join(pieces)


def send_frame(sock: socket.socket, header: Dict[str, object], payload: bytes = b"") -> None:
    """Send one frame: the header dict (plus its payload accounting) and the payload.

    Args:
        sock: a connected stream socket.
        header: a JSON-serializable flat dict; ``payload_bytes`` is filled in here.
        payload: raw bytes following the header (``push`` item buffers).

    Raises:
        ProtocolError: if the encoded header or the payload exceeds the caps.
    """
    body = dict(header)
    body["payload_bytes"] = len(payload)
    encoded = json.dumps(body, separators=(",", ":")).encode("utf-8")
    if len(encoded) > MAX_HEADER_BYTES:
        raise ProtocolError(f"frame header of {len(encoded)} bytes exceeds the cap")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"frame payload of {len(payload)} bytes exceeds the cap")
    # Two sendall calls instead of one concatenation: gluing the payload onto
    # the header would memcpy the whole item buffer a second time on the push
    # hot path (encode_items already paid the one unavoidable tobytes copy).
    sock.sendall(struct.pack("!I", len(encoded)) + encoded)
    if payload:
        sock.sendall(payload)


def recv_frame(sock: socket.socket) -> Optional[Tuple[Dict[str, object], bytes]]:
    """Receive one frame; ``None`` on clean EOF (peer closed between frames).

    Returns:
        ``(header, payload)`` — the decoded header dict and the raw payload bytes.

    Raises:
        ProtocolError: on truncation, oversized declarations, or undecodable JSON.
    """
    prefix = _recv_exact(sock, 4)
    if prefix is None:
        return None
    (header_len,) = struct.unpack("!I", prefix)
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"declared header of {header_len} bytes exceeds the cap")
    encoded = _recv_exact(sock, header_len)
    if encoded is None:
        raise ProtocolError("connection closed between frame prefix and header")
    try:
        header = json.loads(encoded.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(f"frame header must be a JSON object, got {type(header).__name__}")
    payload_bytes = header.get("payload_bytes", 0)
    if not isinstance(payload_bytes, int) or payload_bytes < 0:
        raise ProtocolError(f"invalid payload_bytes {payload_bytes!r}")
    if payload_bytes > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"declared payload of {payload_bytes} bytes exceeds the cap")
    payload = _recv_exact(sock, payload_bytes)
    if payload is None and payload_bytes:
        raise ProtocolError("connection closed between frame header and payload")
    return header, payload or b""


# -- item batches -----------------------------------------------------------------------


def encode_items(items) -> Tuple[int, bytes]:
    """Encode a batch of item ids as a ``push`` payload.

    Returns:
        ``(count, payload)``; the matching header must carry ``{"items": count}``.
    """
    array = np.ascontiguousarray(np.asarray(items).reshape(-1), dtype=ITEM_DTYPE)
    return int(array.size), array.tobytes()


def decode_items(header: Dict[str, object], payload: bytes) -> np.ndarray:
    """Decode a ``push`` payload back into an int64 item array.

    The returned array is a zero-copy, read-only view of the payload bytes —
    fine for every consumer in this package, which only reads item batches.

    Raises:
        ProtocolError: if the payload length disagrees with ``header["items"]``.
    """
    count = header.get("items")
    if not isinstance(count, int) or count < 0:
        raise ProtocolError(f"push frame with invalid item count {count!r}")
    if len(payload) != count * ITEM_DTYPE.itemsize:
        raise ProtocolError(
            f"push frame declares {count} items but carries {len(payload)} bytes"
        )
    return np.frombuffer(payload, dtype=ITEM_DTYPE)


# -- report round-trip ------------------------------------------------------------------


def report_to_payload(report: HeavyHittersReport) -> Dict[str, object]:
    """Render a :class:`HeavyHittersReport` as a JSON-safe reply fragment."""
    return {
        "items": {str(item): estimate for item, estimate in report.items.items()},
        "stream_length": report.stream_length,
        "epsilon": report.epsilon,
        "phi": report.phi,
    }


def report_from_payload(payload: Dict[str, object]) -> HeavyHittersReport:
    """Invert :func:`report_to_payload` (JSON stringifies the item-id keys)."""
    return HeavyHittersReport(
        items={int(item): float(estimate) for item, estimate in payload["items"].items()},
        stream_length=int(payload["stream_length"]),
        epsilon=float(payload["epsilon"]),
        phi=float(payload["phi"]),
    )
