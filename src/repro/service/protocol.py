"""The wire protocol of the heavy-hitter service: length-prefixed JSON + numpy frames.

One frame is::

    +----------------+---------------------+----------------------------+
    | header length  | header (JSON bytes) | payload (raw bytes)        |
    | 4 bytes, !I    | exactly that many   | header["payload_bytes"]    |
    +----------------+---------------------+----------------------------+

The header is a flat JSON object; its ``cmd`` key names the request (``config``,
``push``, ``flush``, ``query``, ``stats``, ``metrics``, ``checkpoint``,
``finish``, ``shutdown``) and replies either echo data keys or carry an
``error`` string.  The
only command with a payload is ``push``: ``header["items"]`` int64 item ids as raw
little-endian bytes (``payload_bytes == 8 * items``), which both ends move with
``ndarray.tobytes()`` / ``np.frombuffer`` — no per-item encoding on the hot path.

The protocol is deliberately minimal and **trusts its network**: no authentication,
no encryption, and the ``checkpoint`` command writes a server-side path.  Run it on
localhost, a Unix socket, or an otherwise private network, as you would a plain
memcached.  Frame sizes are capped (:data:`MAX_HEADER_BYTES`,
:data:`MAX_PAYLOAD_BYTES`) so a malformed or hostile peer cannot make either end
allocate unboundedly.
"""

from __future__ import annotations

import json
import operator
import socket
import struct
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.results import HeavyHittersReport

#: Buffer types a frame payload may travel as.  ``memoryview`` covers the
#: zero-copy send path (a view of an int64 array); ``bytearray`` covers the
#: ``recv_into``-filled receive path.
BytesLike = Union[bytes, bytearray, memoryview]

#: Signature of the optional per-frame byte-counter hooks.
ByteHook = Optional[Callable[[int], None]]

#: Protocol version, exchanged in ``config`` replies; bump on incompatible changes.
PROTOCOL_VERSION = 1

#: Version of the ``stats`` reply schema, carried as ``stats_schema`` in every
#: stats reply; bump when keys change meaning or move.  Version 2 normalized the
#: single/replicated shapes: every reply tags itself, carries a ``degraded``
#: boolean and a ``pipeline`` section, and group replies list per-replica
#: ``space_bits`` in both mid-ingest and final form (see docs/OBSERVABILITY.md).
STATS_SCHEMA_VERSION = 2

#: Upper bound on a frame's JSON header (a header is a small command/reply object).
MAX_HEADER_BYTES = 1 << 20

#: Upper bound on a frame's payload (128 Mi items per push at 8 bytes each).
MAX_PAYLOAD_BYTES = 1 << 30

#: The dtype items travel as: little-endian int64, explicitly sized so both ends
#: agree regardless of platform endianness.
ITEM_DTYPE = np.dtype("<i8")


class ProtocolError(ConnectionError):
    """A malformed, truncated, or oversized frame (either direction)."""


def _recv_exact(sock: socket.socket, num_bytes: int) -> Optional[bytearray]:
    """Read exactly ``num_bytes`` into one preallocated buffer; ``None`` on clean EOF.

    Built on ``socket.recv_into`` over a ``memoryview`` so each received piece
    lands directly in its final position — no per-piece ``bytes`` object and no
    ``b"".join`` concatenation pass over megabyte payloads.  The returned
    ``bytearray`` is the only allocation.

    Raises:
        ProtocolError: on EOF in the middle of a frame.
    """
    if num_bytes == 0:
        return bytearray()
    buffer = bytearray(num_bytes)
    view = memoryview(buffer)
    received = 0
    while received < num_bytes:
        count = sock.recv_into(view[received:])
        if count == 0:
            if received == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({received} of {num_bytes} bytes received)"
            )
        received += count
    return buffer


def _send_vectored(sock: socket.socket, header_bytes: bytes, payload: BytesLike) -> None:
    """Write header and payload with one vectored ``sendmsg`` — no gluing copy.

    ``sendmsg`` (like ``send``) may accept only part of the buffers, so the
    remainder is retried via advancing memoryviews; sockets without ``sendmsg``
    fall back to two ``sendall`` calls, which still avoids concatenating the
    payload onto the header.
    """
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:
        sock.sendall(header_bytes)
        if payload:
            sock.sendall(payload)
        return
    views = [memoryview(header_bytes)]
    if payload:
        views.append(memoryview(payload).cast("B"))
    while views:
        sent = sendmsg(views)
        while sent:
            if sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            else:
                views[0] = views[0][sent:]
                sent = 0


def send_frame(
    sock: socket.socket,
    header: Mapping[str, Any],
    payload: BytesLike = b"",
    on_bytes: ByteHook = None,
) -> None:
    """Send one frame: the header dict (plus its payload accounting) and the payload.

    Args:
        sock: a connected stream socket.
        header: a JSON-serializable flat dict; ``payload_bytes`` is filled in here.
        payload: raw bytes-like payload following the header (``push`` item
            buffers); a ``memoryview`` of an int64 array is sent as-is, uncopied.
        on_bytes: optional callable receiving the frame's total wire size (prefix
            + header + payload) — the server's bytes-sent counter hook.  The
            count is computed from lengths already in hand, so the zero-copy
            send path is unchanged.

    Raises:
        ProtocolError: if the encoded header or the payload exceeds the caps.
    """
    body = dict(header)
    payload_bytes = payload.nbytes if isinstance(payload, memoryview) else len(payload)
    body["payload_bytes"] = payload_bytes
    encoded = json.dumps(body, separators=(",", ":")).encode("utf-8")
    if len(encoded) > MAX_HEADER_BYTES:
        raise ProtocolError(f"frame header of {len(encoded)} bytes exceeds the cap")
    if payload_bytes > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"frame payload of {payload_bytes} bytes exceeds the cap")
    _send_vectored(sock, struct.pack("!I", len(encoded)) + encoded, payload)
    if on_bytes is not None:
        on_bytes(4 + len(encoded) + payload_bytes)


def recv_frame(
    sock: socket.socket, on_bytes: ByteHook = None
) -> Optional[Tuple[Dict[str, Any], BytesLike]]:
    """Receive one frame; ``None`` on clean EOF (peer closed between frames).

    Args:
        sock: a connected stream socket.
        on_bytes: optional callable receiving the frame's total wire size (prefix
            + header + payload) once the frame is fully received — the server's
            bytes-received counter hook.  Not called on clean EOF.

    Returns:
        ``(header, payload)`` — the decoded header dict and the raw payload as a
        bytes-like buffer (a ``bytearray`` filled in place by ``recv_into``;
        :func:`decode_items` views it without copying).

    Raises:
        ProtocolError: on truncation, oversized declarations, or undecodable JSON.
    """
    prefix = _recv_exact(sock, 4)
    if prefix is None:
        return None
    (header_len,) = struct.unpack("!I", prefix)
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"declared header of {header_len} bytes exceeds the cap")
    encoded = _recv_exact(sock, header_len)
    if encoded is None:
        raise ProtocolError("connection closed between frame prefix and header")
    try:
        header = json.loads(encoded.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(f"frame header must be a JSON object, got {type(header).__name__}")
    payload_bytes = header.get("payload_bytes", 0)
    if not isinstance(payload_bytes, int) or payload_bytes < 0:
        raise ProtocolError(f"invalid payload_bytes {payload_bytes!r}")
    if payload_bytes > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"declared payload of {payload_bytes} bytes exceeds the cap")
    payload = _recv_exact(sock, payload_bytes)
    if payload is None and payload_bytes:
        raise ProtocolError("connection closed between frame header and payload")
    if on_bytes is not None:
        on_bytes(4 + header_len + payload_bytes)
    return header, payload or b""


# -- item batches -----------------------------------------------------------------------

_INT64_MAX = np.iinfo(np.int64).max


def encode_items(items: Any) -> Tuple[int, memoryview]:
    """Encode a batch of item ids as a ``push`` payload, validating the dtype.

    Only integer inputs are accepted: floating, boolean, string, and other
    non-integer dtypes raise ``ValueError`` instead of being silently truncated
    or reinterpreted, and unsigned or Python ints beyond ``int64`` surface as a
    clear overflow error rather than wrapping.

    Returns:
        ``(count, payload)``; the matching header must carry ``{"items": count}``.
        The payload is a ``memoryview`` of the (contiguous int64) array's bytes,
        so an already-int64 batch is framed without any copy.

    Raises:
        ValueError: on a non-integer dtype or a value that does not fit int64.
    """
    try:
        array = np.asarray(items)
    except OverflowError as exc:
        raise ValueError(f"item batch contains values that overflow int64: {exc}") from None
    if array.ndim != 1:
        array = array.reshape(-1)
    if array.dtype != np.int64 and array.size:
        kind = array.dtype.kind
        if kind == "u":
            if int(array.max()) > _INT64_MAX:
                raise ValueError(
                    f"item batch contains {int(array.max())}, which overflows int64"
                )
        elif kind == "O":
            # Element-wise __index__, not astype: astype would silently
            # truncate object-dtype floats, the exact failure mode this
            # validation exists to surface.
            try:
                array = np.fromiter(
                    (operator.index(value) for value in array),
                    dtype=np.int64,
                    count=array.size,
                )
            except TypeError:
                raise ValueError(
                    "item batch contains non-integer objects; convert item ids "
                    "to integers explicitly before pushing"
                ) from None
            except (OverflowError, ValueError) as exc:
                raise ValueError(
                    f"item batch contains values that do not fit int64: {exc}"
                ) from None
        elif kind != "i":
            raise ValueError(
                f"item batch has non-integer dtype {array.dtype}; convert item ids "
                "to integers explicitly before pushing"
            )
    array = np.ascontiguousarray(array, dtype=ITEM_DTYPE)
    return int(array.size), memoryview(array).cast("B")


def decode_items(header: Mapping[str, Any], payload: BytesLike) -> np.ndarray:
    """Decode a ``push`` payload back into an int64 item array.

    The returned array is a zero-copy, **read-only** view of the payload buffer
    (``np.frombuffer``, then ``writeable`` cleared for mutable buffers such as
    the ``bytearray`` :func:`recv_frame` fills) — it flows into ``insert_many``
    uncopied, and every sketch's batched path accepts read-only input without
    mutating it (held by ``tests/unit/test_insert_many_readonly.py``).

    Raises:
        ProtocolError: if the payload length disagrees with ``header["items"]``.
    """
    count = header.get("items")
    if not isinstance(count, int) or count < 0:
        raise ProtocolError(f"push frame with invalid item count {count!r}")
    if len(payload) != count * ITEM_DTYPE.itemsize:
        raise ProtocolError(
            f"push frame declares {count} items but carries {len(payload)} bytes"
        )
    array = np.frombuffer(payload, dtype=ITEM_DTYPE)
    array.flags.writeable = False
    return array


# -- report round-trip ------------------------------------------------------------------


def report_to_payload(report: HeavyHittersReport) -> Dict[str, Any]:
    """Render a :class:`HeavyHittersReport` as a JSON-safe reply fragment."""
    return {
        "items": {str(item): estimate for item, estimate in report.items.items()},
        "stream_length": report.stream_length,
        "epsilon": report.epsilon,
        "phi": report.phi,
    }


def report_from_payload(payload: Mapping[str, Any]) -> HeavyHittersReport:
    """Invert :func:`report_to_payload` (JSON stringifies the item-id keys)."""
    return HeavyHittersReport(
        items={int(item): float(estimate) for item, estimate in payload["items"].items()},
        stream_length=int(payload["stream_length"]),
        epsilon=float(payload["epsilon"]),
        phi=float(payload["phi"]),
    )
