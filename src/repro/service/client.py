"""The client half of the heavy-hitter service: push batches, query, checkpoint.

:class:`ServiceClient` speaks the frame protocol of :mod:`repro.service.protocol`
over one blocking socket.  Control commands are synchronous — one command frame,
one reply — because the *server* is where the concurrency lives (ingestion
overlaps queries there).  The ingest hot path has two speeds: :meth:`push` (one
round-trip per batch, simplest possible) and :meth:`push_stream` (credit-based
pipelining — a window of un-acked push frames stays in flight, sized to the
server's ``push_queue_depth`` credit grant, so throughput is no longer bounded by
per-batch latency while the bounded-buffer backpressure contract is preserved).

Robustness: connects and the idempotent commands (``config`` / ``query`` /
``stats``) retry transient connection failures with exponential backoff and
jitter (:class:`RetryPolicy`); :meth:`push_stream` additionally survives a
dropped connection mid-window by reconnecting and **resuming from the server's
acked count** — the server reports ``items_received`` authoritatively, so the
client re-sends exactly the frames that never landed, no batch lost or doubled
(single-pusher streams; batches land atomically server-side).  Commands that
take their own timeout (``flush`` / ``finish``) derive the socket deadline from
that timeout plus a margin, and an expired deadline surfaces as the typed
:class:`ServiceTimeout` (never retried — the command may still be in flight).

Connect strings:

* ``"host:port"`` — TCP (``"127.0.0.1:7007"``);
* ``"unix:/path/to.sock"`` — Unix domain socket.

Quickstart::

    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1:7007") as client:
        client.push([3, 1, 4, 1, 5, 9, 2, 6])   # as many times as you like
        live = client.query()                    # mid-ingest snapshot
        client.finish()                          # end of stream: merge + report
        final = client.query()
        print(final.report.reported_items())
"""

from __future__ import annotations

import collections
import logging
# repro: lint-ignore[rng-discipline] -- retry-backoff jitter only: never touches sketch state, so it cannot perturb served==offline report equality
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.core.results import HeavyHittersReport
from repro.replication.faults import FaultPlan
from repro.service.protocol import (
    BytesLike,
    ProtocolError,
    encode_items,
    recv_frame,
    report_from_payload,
    send_frame,
)

logger = logging.getLogger("repro.service.client")

#: Slack added to a command's own timeout when it becomes the socket deadline,
#: so the server-side wait always expires (with a proper error reply) before
#: the client gives up on the socket.
REPLY_TIMEOUT_MARGIN = 5.0


class ServiceError(RuntimeError):
    """The server answered a command with an error reply."""


class ServiceTimeout(ServiceError):
    """No reply arrived within the command's deadline.

    Deliberately **not** an ``OSError``: retry logic treats connection failures
    as retryable but a timeout as final — the command may still be executing
    server-side (a ``finish`` that merely outran its timeout must not be
    resent).  The socket is closed when this is raised, because a late reply
    would otherwise desynchronize the frame stream for the next command.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for transient connection failures.

    ``attempts`` counts total tries (1 = no retry).  The delay before retry
    ``k`` (zero-based) is ``min(max_delay, base_delay · 2^k)``, stretched by a
    uniformly random factor in ``[1, 1 + jitter]`` so a herd of clients
    recovering from the same server restart does not reconnect in lockstep.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter cannot be negative")

    def delay(self, retry_index: int) -> float:
        """Seconds to sleep before zero-based retry ``retry_index``."""
        base = min(self.max_delay, self.base_delay * (2 ** retry_index))
        return base * (1.0 + self.jitter * random.random())


#: Retry disabled: a single attempt, no backoff.
NO_RETRY = RetryPolicy(attempts=1)


@dataclass(frozen=True)
class QueryResult:
    """One answered query: the report, the prefix it covers, and its finality.

    ``final`` is ``False`` for a mid-ingest snapshot (the report covers the
    chunk-aligned prefix of ``items_processed`` items seen so far) and ``True``
    once the server has merged the finished stream.  ``space_bits`` is the bit
    footprint of the state that answered — the snapshot's merged copy
    mid-ingest, the combined final accounting after ``finish``.  ``degraded``
    is ``True`` when a replicated server answered from fewer than its
    configured replicas (a quarantined replica has not been re-seeded yet);
    the report is still a valid Definition 1 answer from the survivors.
    """

    report: HeavyHittersReport
    items_processed: int
    final: bool
    space_bits: int
    degraded: bool = False


def parse_endpoint(endpoint: str) -> Union[Tuple[str, int], str]:
    """Parse a connect string: ``host:port`` → tuple, ``unix:/path`` → path.

    Raises:
        ValueError: if the string is neither form.
    """
    if endpoint.startswith("unix:"):
        path = endpoint[len("unix:"):]
        if not path:
            raise ValueError("unix: endpoint needs a socket path")
        return path
    host, separator, port_text = endpoint.rpartition(":")
    if not separator or not host:
        raise ValueError(f"endpoint {endpoint!r} is neither HOST:PORT nor unix:/path")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"endpoint {endpoint!r} has a non-numeric port") from exc
    return host, port


class ServiceClient:
    """A blocking client for one :class:`~repro.service.server.IngestServer`.

    Args:
        endpoint: a connect string (see :func:`parse_endpoint`) or an
            ``(host, port)`` tuple.
        timeout: socket timeout in seconds for connect and every reply; ``None``
            blocks indefinitely (commands like ``finish`` can legitimately take
            as long as the residual ingestion).  Commands carrying their own
            timeout (``flush``/``finish``) override this per round-trip.
        retry: backoff policy for connects, the idempotent read commands, and
            :meth:`push_stream` recovery; defaults to three attempts with
            exponential backoff + jitter.  Pass :data:`NO_RETRY` to fail fast.
        fault_plan: deterministic fault injection
            (:class:`~repro.replication.FaultPlan`); its ``drop-connection``
            entries cut the socket mid-:meth:`push_stream` to exercise the
            reconnect-and-resume path in tests and the chaos-smoke CI job.

    Raises:
        ConnectionError: (from :meth:`connect` / the context manager) if the
            server is not reachable after every attempt.
    """

    def __init__(
        self,
        endpoint: Union[str, Tuple[str, int]],
        timeout: Optional[float] = 120.0,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self._target = parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        self._timeout = timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._fault_plan = fault_plan
        self._push_frames_sent = 0  # lifetime counter the fault plan indexes
        self._sock: Optional[socket.socket] = None
        self._credits: Optional[int] = None  # cached push_stream credit grant

    # -- connection ---------------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the socket (idempotent); the context manager calls this.

        Retries per the client's :class:`RetryPolicy` — a server restarting
        (or a listener briefly over its backlog) looks like a refused or reset
        connection, which backoff absorbs.
        """
        if self._sock is not None:
            return self
        attempts = self._retry.attempts
        for attempt in range(attempts):
            try:
                self._connect_once()
                return self
            except (ConnectionError, OSError) as exc:
                if attempt + 1 >= attempts:
                    raise
                logger.warning(
                    "connect to %s failed (%s); retry %d of %d",
                    self._target, exc, attempt + 1, attempts - 1,
                )
                time.sleep(self._retry.delay(attempt))
        return self  # unreachable; keeps the type checker honest

    def _connect_once(self) -> None:
        if isinstance(self._target, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            # Frames are written whole (one vectored send each); Nagle would
            # only add latency — fatally so for pipelined windows, where small
            # back-to-back ack frames otherwise stall on delayed ACKs.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self._timeout)
        try:
            sock.connect(self._target)
        except BaseException:
            sock.close()
            raise
        self._sock = sock

    def close(self) -> None:
        """Close the socket; idempotent."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._credits = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, exc_type: object, exc_value: object, traceback: object) -> None:
        self.close()

    def _round_trip(
        self,
        header: Mapping[str, Any],
        payload: BytesLike = b"",
        eof_ok: bool = False,
        reply_timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One command frame, one reply.

        ``reply_timeout`` is the *command's* own deadline (``flush``/``finish``
        pass theirs): the socket deadline becomes that plus
        :data:`REPLY_TIMEOUT_MARGIN` for exactly this round-trip — overriding
        the constructor default in both directions, including a constructor
        ``timeout=None`` — so a long-running command is never cut off early by
        the handshake default, and a short one never waits the full default.
        An expired deadline surfaces as :class:`ServiceTimeout` and closes the
        socket (a late reply would desynchronize the frame stream).
        """
        if self._sock is None:
            self.connect()
        sock = self._sock
        assert sock is not None  # connect() either set it or raised
        if reply_timeout is not None:
            sock.settimeout(reply_timeout + REPLY_TIMEOUT_MARGIN)
        try:
            send_frame(sock, header, payload)
            frame = recv_frame(sock)
        except socket.timeout as exc:
            self.close()
            raise ServiceTimeout(
                f"no reply to {header.get('cmd')!r} within "
                f"{sock.gettimeout():.1f}s"
            ) from exc
        finally:
            if reply_timeout is not None and self._sock is sock:
                sock.settimeout(self._timeout)
        if frame is None:
            if eof_ok:
                return {"ok": True, "stopping": True}
            raise ProtocolError("server closed the connection before replying")
        reply, _ = frame
        if not reply.get("ok", False):
            raise ServiceError(str(reply.get("error", "unspecified server error")))
        return reply

    def _retry_idempotent(self, call: Callable[[], Dict[str, Any]]) -> Dict[str, Any]:
        """Run a read-only command, retrying transient connection failures.

        Only ``config``/``query``/``stats`` go through here: they are
        idempotent, so resending after a reconnect cannot double-apply
        anything.  :class:`ServiceTimeout` is *not* retried (the command may
        still be running server-side), and neither are error replies — only
        connection-level failures, after which the socket is dropped so the
        next attempt reconnects from scratch.
        """
        attempts = self._retry.attempts
        for attempt in range(attempts):
            try:
                return call()
            except ServiceTimeout:
                raise
            except (ConnectionError, OSError) as exc:
                self.close()
                if attempt + 1 >= attempts:
                    raise
                logger.warning(
                    "idempotent command failed (%s); reconnect retry %d of %d",
                    exc, attempt + 1, attempts - 1,
                )
                time.sleep(self._retry.delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    # -- commands -----------------------------------------------------------------------

    @staticmethod
    def _with_stream(header: Dict[str, Any], stream: Optional[str]) -> Dict[str, Any]:
        """Address a command frame to a named stream (``None`` = the default)."""
        if stream is not None:
            header["stream"] = stream
        return header

    def config(self, stream: Optional[str] = None) -> Dict[str, Any]:
        """The server's parameters and live counters (retried; idempotent).

        With ``stream``, the ``items_received`` counter is scoped to that named
        stream — the resume cursor :meth:`push_stream` needs.
        """
        def call() -> Dict[str, Any]:
            reply = self._round_trip(self._with_stream({"cmd": "config"}, stream))
            credits = reply.get("push_credits")
            if isinstance(credits, int) and credits > 0:
                self._credits = credits
            return reply

        return self._retry_idempotent(call)

    def push(self, items: Iterable[int], stream: Optional[str] = None) -> int:
        """Push one batch of item ids; returns the server's total received count.

        The batch's dtype is validated before encoding: non-integer dtypes and
        values that overflow int64 raise ``ValueError`` instead of being
        silently truncated or wrapped.  With ``stream``, the batch lands in
        that named stream (created implicitly on first push) and the returned
        count is stream-scoped.

        Raises:
            ValueError: on a non-integer batch dtype or an int64 overflow.
            ServiceError: if the stream was already finished, or the batch
                contains items outside the server's universe.
        """
        count, payload = encode_items(items)
        reply = self._round_trip(
            self._with_stream({"cmd": "push", "items": count}, stream), payload
        )
        return int(reply["items_received"])

    def push_stream(
        self,
        batches: Iterable[Iterable[int]],
        window: Optional[int] = None,
        resume: Optional[bool] = None,
        stream: Optional[str] = None,
    ) -> int:
        """Push many batches with a window of un-acked frames in flight.

        :meth:`push` pays one full round-trip per batch — the client stalls for
        the server's ack before framing the next batch, so loopback pushes are
        latency-bound, not bandwidth-bound.  This method pipelines instead: up
        to ``window`` push frames are written before the first ack is read, and
        from then on one ack is drained per frame sent, keeping ``window``
        frames in flight until the input is exhausted.

        The window is **credit-based**: the server grants credits equal to its
        ``push_queue_depth`` (the bound on batches it will buffer ahead of
        ingestion, reported as ``push_credits`` in the ``config`` reply), and
        the effective window is ``min(window, push_credits)``.  Un-acked frames
        therefore never exceed what the server is prepared to buffer, so the
        bounded-queue backpressure contract is preserved: a server whose queue
        is full stops reading the socket, the client's send eventually blocks,
        and memory on both ends stays bounded exactly as in the round-trip
        path.  Acks are processed in order; a rejected batch (universe
        violation, finished stream) surfaces as :class:`ServiceError` as soon
        as its ack is drained.

        Recovery: when the client's retry policy allows it (``resume`` defaults
        to ``attempts > 1``), a connection failure mid-window reconnects with
        backoff and **resumes from the server's acked count**.  Every sent but
        un-acked frame is kept (with its cumulative item offset); after the
        reconnect the server's ``items_received`` says exactly how many items
        landed, frames entirely below that mark are dropped as delivered, and
        the rest are re-sent.  Batches land atomically server-side and this
        guarantee assumes a single pusher — concurrent pushers would make the
        received count unattributable.

        Args:
            batches: an iterable of item batches (numpy arrays or int
                sequences); each batch becomes one push frame.
            window: maximum un-acked frames in flight; ``None`` uses the
                server's full credit grant.
            resume: reconnect-and-resume on connection failure; ``None``
                enables it iff the retry policy has more than one attempt.
            stream: push into this named stream instead of the default one;
                the resume cursor then follows the *stream-scoped*
                ``items_received`` count, so recovery replays exactly the
                frames that never landed in that stream.

        Returns:
            The server's total received count after the last ack.

        Raises:
            ValueError: if ``window`` is not positive, or a batch fails dtype
                validation (see :meth:`push`).
            ServiceError: if the server rejected any pushed batch.
            ConnectionError: if the connection died and recovery was disabled
                or exhausted its attempts.
        """
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if resume is None:
            resume = self._retry.attempts > 1
        if self._sock is None:
            self.connect()
        # The resume cursor needs the server's count *before* this stream adds
        # to it; the config round-trip also warms the credit cache.
        start_received = int(self.config(stream=stream)["items_received"]) if resume else 0
        credits = self._push_credits()
        effective_window = credits if window is None else min(window, credits)
        batch_iter = iter(batches)
        # Sent-but-unacked frames as (count, payload, cumulative_end): payload
        # is kept alive for re-send, cumulative_end is the stream offset (in
        # items, relative to start_received) once this frame lands.
        pending: Deque[Tuple[int, memoryview, int]] = collections.deque()
        cumulative_sent = 0
        received = 0
        exhausted = False
        recoveries = 0
        error: Optional[ServiceError] = None
        while True:
            try:
                while not exhausted and error is None:
                    while len(pending) >= effective_window and error is None:
                        error, received = self._take_push_ack(pending, received, error)
                    if error is not None:
                        break
                    try:
                        batch = next(batch_iter)
                    except StopIteration:
                        exhausted = True
                        break
                    count, payload = encode_items(batch)
                    cumulative_sent += count
                    pending.append((count, payload, cumulative_sent))
                    self._send_push_frame(count, payload, stream=stream)
                while pending:
                    error, received = self._take_push_ack(pending, received, error)
                break
            except (ConnectionError, OSError) as exc:
                if not resume or error is not None or recoveries + 1 >= self._retry.attempts:
                    self.close()
                    raise
                recoveries += 1
                self.close()
                logger.warning(
                    "push window lost its connection (%s); recovery %d of %d",
                    exc, recoveries, self._retry.attempts - 1,
                )
                time.sleep(self._retry.delay(recoveries - 1))
                self.connect()
                # The server's count is authoritative: frames at or below the
                # landed mark were delivered (their acks were lost with the
                # socket); everything above must be re-sent.
                landed = int(self.config(stream=stream)["items_received"]) - start_received
                while pending and pending[0][2] <= landed:
                    pending.popleft()
                received = start_received + landed
                logger.info(
                    "resumed push stream at %d landed items; re-sending %d frames",
                    landed, len(pending),
                )
                for count, payload, _ in pending:
                    self._send_push_frame(count, payload, stream=stream)
            except BaseException:
                # A local failure mid-window (a bad batch in encode_items or
                # the batches iterable itself raising) must not leave the
                # connection desynchronized: any un-acked push replies still in
                # flight would be read as the *next* command's reply.  Drain
                # them; if the connection is too broken to drain, drop it so
                # the next command reconnects cleanly.
                try:
                    while pending:
                        self._drain_push_ack()
                        pending.popleft()
                except (ConnectionError, OSError):
                    self.close()
                raise
        if error is not None:
            # Every in-flight ack was drained above, so the connection is back
            # at a frame boundary and stays usable for further commands.
            raise error
        return received

    def _take_push_ack(
        self,
        pending: "Deque[Tuple[int, memoryview, int]]",
        received: int,
        error: Optional[ServiceError],
    ) -> Tuple[Optional[ServiceError], int]:
        """Drain one in-order ack and retire its pending frame."""
        reply = self._drain_push_ack()
        pending.popleft()
        if reply.get("ok", False):
            received = int(reply["items_received"])
        elif error is None:
            error = ServiceError(str(reply.get("error", "unspecified server error")))
        return error, received

    def _send_push_frame(
        self, count: int, payload: memoryview, stream: Optional[str] = None
    ) -> None:
        """Send one push frame, honoring any scripted connection drop."""
        sock = self._sock
        assert sock is not None  # push_stream connects before framing
        if self._fault_plan is not None and self._fault_plan.fire_drop(
            self._push_frames_sent
        ):
            # Cut our own socket: the next send/recv raises and the normal
            # recovery path takes over — the fault is injected *below* the
            # resume logic, so the test exercises the real code path.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        send_frame(
            sock, self._with_stream({"cmd": "push", "items": count}, stream), payload
        )
        self._push_frames_sent += 1

    def _push_credits(self) -> int:
        """The server's push-window credit grant (its ``push_queue_depth``).

        Fetched once per connection (any :meth:`config` call caches it), so a
        pipelined push after a warm-up command pays no extra round-trip.
        """
        if self._credits is None:
            self.config()
        if self._credits is None:
            self._credits = 1  # pre-credit server: degrade to the round-trip path
        return self._credits

    def _drain_push_ack(self) -> Dict[str, Any]:
        """Read one in-order push ack (the raw reply; ok-ness judged by the caller)."""
        sock = self._sock
        assert sock is not None  # acks are only drained on a live push window
        frame = recv_frame(sock)
        if frame is None:
            raise ProtocolError("server closed the connection mid push window")
        reply, _ = frame
        return reply

    def flush(self, timeout: float = 60.0, stream: Optional[str] = None) -> Dict[str, Any]:
        """Wait until every complete chunk pushed so far has been ingested.

        Items past the last exact chunk boundary stay in the server's re-chunk
        buffer (they ingest when more items or ``finish`` arrive); the reply's
        ``flushed_to`` says how far the wait actually covered.  The socket
        deadline follows ``timeout`` (plus margin), not the constructor
        default, so a long flush is never cut off mid-wait.  Named streams
        ingest synchronously inside the push ack, so their flush never waits.
        """
        return self._round_trip(
            self._with_stream({"cmd": "flush", "timeout": timeout}, stream),
            reply_timeout=timeout,
        )

    def query(self, phi: Optional[float] = None, stream: Optional[str] = None) -> QueryResult:
        """A Definition 1 heavy-hitter report — mid-ingest snapshot or final.

        Args:
            phi: report-time threshold override, only for sketches that take ϕ
                at report time (Misra–Gries and friends).
            stream: query this named stream's own sketch instead of the
                default stream (restoring it from its eviction spill if needed).
        """
        request: Dict[str, Any] = self._with_stream({"cmd": "query"}, stream)
        if phi is not None:
            request["phi"] = phi
        reply = self._retry_idempotent(lambda: self._round_trip(request))
        return QueryResult(
            report=report_from_payload(reply["report"]),
            items_processed=int(reply["items_processed"]),
            final=bool(reply["final"]),
            space_bits=int(reply["space_bits"]),
            degraded=bool(reply.get("degraded", False)),
        )

    def stats(self, stream: Optional[str] = None) -> Dict[str, Any]:
        """Space accounting (bits, per-component breakdown) and progress counters.

        The reply follows stats schema v2 (it carries its own ``stats_schema``
        tag): uniform ``degraded`` and ``pipeline`` keys whatever the server's
        sink, plus per-replica health for replicated servers.  With ``stream``
        the reply is that named stream's record instead: residency
        (live/spilled/sealed), counters, and its eviction history.  See
        docs/OBSERVABILITY.md for the schema.
        """
        return self._retry_idempotent(
            lambda: self._round_trip(self._with_stream({"cmd": "stats"}, stream))
        )

    def metrics(self) -> Dict[str, Any]:
        """The server's metric-registry snapshot (the ``metrics`` command).

        The reply is the JSON-safe
        :meth:`~repro.observability.MetricRegistry.snapshot` shape (plus the
        protocol's ``ok`` flag) — render it with
        :func:`repro.observability.render_prometheus` for the same text the
        server's ``/metrics`` sidecar serves.  Retried; idempotent.
        """
        return self._retry_idempotent(lambda: self._round_trip({"cmd": "metrics"}))

    def checkpoint(self, path: str, stream: Optional[str] = None) -> Dict[str, Any]:
        """Ask the server to write a checkpoint to a *server-side* path.

        Returns the server's manifest summary (items_processed, chunks, kind).
        With ``stream``, the checkpoint captures that named stream's sink
        (read straight from its spill file if the stream is evicted).
        """
        return self._round_trip(
            self._with_stream({"cmd": "checkpoint", "path": path}, stream)
        )

    def finish(self, timeout: float = 120.0, stream: Optional[str] = None) -> Dict[str, Any]:
        """Declare end of stream: residual batches ingest, shards merge, report fixes.

        After this, :meth:`query` answers from the final result and further
        pushes are rejected.  Like :meth:`flush`, the socket deadline follows
        ``timeout`` plus margin; expiry raises :class:`ServiceTimeout` and is
        never retried — the merge may still complete server-side.  With
        ``stream``, this seals that named stream (same as :meth:`stream_seal`).
        """
        return self._round_trip(
            self._with_stream({"cmd": "finish", "timeout": timeout}, stream),
            reply_timeout=timeout,
        )

    # -- named-stream lifecycle ---------------------------------------------------------

    def stream_create(self, stream: str) -> Dict[str, Any]:
        """Create a named stream explicitly; errors if it already exists.

        Pushing to an unknown stream also creates it implicitly — this command
        is for callers that want existence errors (and a creation point for
        metrics) instead.
        """
        return self._round_trip({"cmd": "stream_create", "stream": stream})

    def stream_seal(self, stream: str, timeout: float = 120.0) -> Dict[str, Any]:
        """Seal a named stream: ingest its remainder, merge, fix the final report.

        Idempotent like ``finish``; queries answer from the final result
        afterwards and further pushes to the stream are rejected.
        """
        return self._round_trip(
            {"cmd": "stream_seal", "stream": stream, "timeout": timeout},
            reply_timeout=timeout,
        )

    def stream_delete(self, stream: str) -> Dict[str, Any]:
        """Delete a named stream: its sink, spill file, and final result."""
        return self._round_trip({"cmd": "stream_delete", "stream": stream})

    def stream_list(self) -> Dict[str, Any]:
        """Every named stream's record: residency, counters, eviction history."""
        return self._round_trip({"cmd": "stream_list"})

    def shutdown(self) -> None:
        """Stop the server process-wide.  EOF instead of a reply counts as done."""
        try:
            self._round_trip({"cmd": "shutdown"}, eof_ok=True)
        except (ConnectionError, OSError):
            pass  # the teardown racing the reply is the expected shutdown path
        finally:
            self.close()
