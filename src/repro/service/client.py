"""The client half of the heavy-hitter service: push batches, query, checkpoint.

:class:`ServiceClient` speaks the frame protocol of :mod:`repro.service.protocol`
over one blocking socket.  Control commands are synchronous — one command frame,
one reply — because the *server* is where the concurrency lives (ingestion
overlaps queries there).  The ingest hot path has two speeds: :meth:`push` (one
round-trip per batch, simplest possible) and :meth:`push_stream` (credit-based
pipelining — a window of un-acked push frames stays in flight, sized to the
server's ``push_queue_depth`` credit grant, so throughput is no longer bounded by
per-batch latency while the bounded-buffer backpressure contract is preserved).

Connect strings:

* ``"host:port"`` — TCP (``"127.0.0.1:7007"``);
* ``"unix:/path/to.sock"`` — Unix domain socket.

Quickstart::

    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1:7007") as client:
        client.push([3, 1, 4, 1, 5, 9, 2, 6])   # as many times as you like
        live = client.query()                    # mid-ingest snapshot
        client.finish()                          # end of stream: merge + report
        final = client.query()
        print(final.report.reported_items())
"""

from __future__ import annotations

import socket
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.core.results import HeavyHittersReport
from repro.service.protocol import (
    ProtocolError,
    encode_items,
    recv_frame,
    report_from_payload,
    send_frame,
)


class ServiceError(RuntimeError):
    """The server answered a command with an error reply."""


@dataclass(frozen=True)
class QueryResult:
    """One answered query: the report, the prefix it covers, and its finality.

    ``final`` is ``False`` for a mid-ingest snapshot (the report covers the
    chunk-aligned prefix of ``items_processed`` items seen so far) and ``True``
    once the server has merged the finished stream.  ``space_bits`` is the bit
    footprint of the state that answered — the snapshot's merged copy
    mid-ingest, the combined final accounting after ``finish``.
    """

    report: HeavyHittersReport
    items_processed: int
    final: bool
    space_bits: int


def parse_endpoint(endpoint: str) -> Union[Tuple[str, int], str]:
    """Parse a connect string: ``host:port`` → tuple, ``unix:/path`` → path.

    Raises:
        ValueError: if the string is neither form.
    """
    if endpoint.startswith("unix:"):
        path = endpoint[len("unix:"):]
        if not path:
            raise ValueError("unix: endpoint needs a socket path")
        return path
    host, separator, port_text = endpoint.rpartition(":")
    if not separator or not host:
        raise ValueError(f"endpoint {endpoint!r} is neither HOST:PORT nor unix:/path")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"endpoint {endpoint!r} has a non-numeric port") from exc
    return host, port


class ServiceClient:
    """A blocking client for one :class:`~repro.service.server.IngestServer`.

    Args:
        endpoint: a connect string (see :func:`parse_endpoint`) or an
            ``(host, port)`` tuple.
        timeout: socket timeout in seconds for connect and every reply; ``None``
            blocks indefinitely (commands like ``finish`` can legitimately take
            as long as the residual ingestion).

    Raises:
        ConnectionError: (from :meth:`connect` / the context manager) if the
            server is not reachable.
    """

    def __init__(
        self,
        endpoint: Union[str, Tuple[str, int]],
        timeout: Optional[float] = 120.0,
    ) -> None:
        self._target = parse_endpoint(endpoint) if isinstance(endpoint, str) else endpoint
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._credits: Optional[int] = None  # cached push_stream credit grant

    # -- connection ---------------------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Open the socket (idempotent); the context manager calls this."""
        if self._sock is not None:
            return self
        if isinstance(self._target, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            # Frames are written whole (one vectored send each); Nagle would
            # only add latency — fatally so for pipelined windows, where small
            # back-to-back ack frames otherwise stall on delayed ACKs.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(self._timeout)
        sock.connect(self._target)
        self._sock = sock
        return self

    def close(self) -> None:
        """Close the socket; idempotent."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None
                self._credits = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _round_trip(
        self, header: Dict[str, object], payload: bytes = b"", eof_ok: bool = False
    ) -> Dict[str, object]:
        if self._sock is None:
            self.connect()
        send_frame(self._sock, header, payload)
        frame = recv_frame(self._sock)
        if frame is None:
            if eof_ok:
                return {"ok": True, "stopping": True}
            raise ProtocolError("server closed the connection before replying")
        reply, _ = frame
        if not reply.get("ok", False):
            raise ServiceError(str(reply.get("error", "unspecified server error")))
        return reply

    # -- commands -----------------------------------------------------------------------

    def config(self) -> Dict[str, object]:
        """The server's parameters and live counters."""
        reply = self._round_trip({"cmd": "config"})
        credits = reply.get("push_credits")
        if isinstance(credits, int) and credits > 0:
            self._credits = credits
        return reply

    def push(self, items: Iterable[int]) -> int:
        """Push one batch of item ids; returns the server's total received count.

        The batch's dtype is validated before encoding: non-integer dtypes and
        values that overflow int64 raise ``ValueError`` instead of being
        silently truncated or wrapped.

        Raises:
            ValueError: on a non-integer batch dtype or an int64 overflow.
            ServiceError: if the stream was already finished, or the batch
                contains items outside the server's universe.
        """
        count, payload = encode_items(items)
        reply = self._round_trip({"cmd": "push", "items": count}, payload)
        return int(reply["items_received"])

    def push_stream(self, batches: Iterable[Iterable[int]], window: Optional[int] = None) -> int:
        """Push many batches with a window of un-acked frames in flight.

        :meth:`push` pays one full round-trip per batch — the client stalls for
        the server's ack before framing the next batch, so loopback pushes are
        latency-bound, not bandwidth-bound.  This method pipelines instead: up
        to ``window`` push frames are written before the first ack is read, and
        from then on one ack is drained per frame sent, keeping ``window``
        frames in flight until the input is exhausted.

        The window is **credit-based**: the server grants credits equal to its
        ``push_queue_depth`` (the bound on batches it will buffer ahead of
        ingestion, reported as ``push_credits`` in the ``config`` reply), and
        the effective window is ``min(window, push_credits)``.  Un-acked frames
        therefore never exceed what the server is prepared to buffer, so the
        bounded-queue backpressure contract is preserved: a server whose queue
        is full stops reading the socket, the client's send eventually blocks,
        and memory on both ends stays bounded exactly as in the round-trip
        path.  Acks are processed in order; a rejected batch (universe
        violation, finished stream) surfaces as :class:`ServiceError` as soon
        as its ack is drained.

        Args:
            batches: an iterable of item batches (numpy arrays or int
                sequences); each batch becomes one push frame.
            window: maximum un-acked frames in flight; ``None`` uses the
                server's full credit grant.

        Returns:
            The server's total received count after the last ack.

        Raises:
            ValueError: if ``window`` is not positive, or a batch fails dtype
                validation (see :meth:`push`).
            ServiceError: if the server rejected any pushed batch.
        """
        if window is not None and window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if self._sock is None:
            self.connect()
        credits = self._push_credits()
        effective_window = credits if window is None else min(window, credits)
        outstanding = 0
        received = 0
        error: Optional[ServiceError] = None
        try:
            for batch in batches:
                count, payload = encode_items(batch)
                send_frame(self._sock, {"cmd": "push", "items": count}, payload)
                outstanding += 1
                if outstanding >= effective_window:
                    reply = self._drain_push_ack()
                    outstanding -= 1
                    if reply.get("ok", False):
                        received = int(reply["items_received"])
                    else:
                        error = ServiceError(str(reply.get("error", "unspecified server error")))
                        break  # stop sending; drain the in-flight acks below
            while outstanding:
                reply = self._drain_push_ack()
                outstanding -= 1
                if reply.get("ok", False):
                    received = int(reply["items_received"])
                elif error is None:
                    error = ServiceError(str(reply.get("error", "unspecified server error")))
        except BaseException:
            # A local failure mid-window (a bad batch in encode_items, a dead
            # socket, the batches iterable itself raising) must not leave the
            # connection desynchronized: any un-acked push replies still in
            # flight would be read as the *next* command's reply.  Drain them;
            # if the connection is too broken to drain, drop it so the next
            # command reconnects cleanly.
            try:
                while outstanding:
                    self._drain_push_ack()
                    outstanding -= 1
            except (ConnectionError, OSError):
                self.close()
            raise
        if error is not None:
            # Every in-flight ack was drained above, so the connection is back
            # at a frame boundary and stays usable for further commands.
            raise error
        return received

    def _push_credits(self) -> int:
        """The server's push-window credit grant (its ``push_queue_depth``).

        Fetched once per connection (any :meth:`config` call caches it), so a
        pipelined push after a warm-up command pays no extra round-trip.
        """
        if self._credits is None:
            self.config()
        if self._credits is None:
            self._credits = 1  # pre-credit server: degrade to the round-trip path
        return self._credits

    def _drain_push_ack(self) -> Dict[str, object]:
        """Read one in-order push ack (the raw reply; ok-ness judged by the caller)."""
        frame = recv_frame(self._sock)
        if frame is None:
            raise ProtocolError("server closed the connection mid push window")
        reply, _ = frame
        return reply

    def flush(self, timeout: float = 60.0) -> Dict[str, object]:
        """Wait until every complete chunk pushed so far has been ingested.

        Items past the last exact chunk boundary stay in the server's re-chunk
        buffer (they ingest when more items or ``finish`` arrive); the reply's
        ``flushed_to`` says how far the wait actually covered.
        """
        return self._round_trip({"cmd": "flush", "timeout": timeout})

    def query(self, phi: Optional[float] = None) -> QueryResult:
        """A Definition 1 heavy-hitter report — mid-ingest snapshot or final.

        Args:
            phi: report-time threshold override, only for sketches that take ϕ
                at report time (Misra–Gries and friends).
        """
        request: Dict[str, object] = {"cmd": "query"}
        if phi is not None:
            request["phi"] = phi
        reply = self._round_trip(request)
        return QueryResult(
            report=report_from_payload(reply["report"]),
            items_processed=int(reply["items_processed"]),
            final=bool(reply["final"]),
            space_bits=int(reply["space_bits"]),
        )

    def stats(self) -> Dict[str, object]:
        """Space accounting (bits, per-component breakdown) and progress counters."""
        return self._round_trip({"cmd": "stats"})

    def checkpoint(self, path: str) -> Dict[str, object]:
        """Ask the server to write a checkpoint to a *server-side* path.

        Returns the server's manifest summary (items_processed, chunks, kind).
        """
        return self._round_trip({"cmd": "checkpoint", "path": path})

    def finish(self, timeout: float = 120.0) -> Dict[str, object]:
        """Declare end of stream: residual batches ingest, shards merge, report fixes.

        After this, :meth:`query` answers from the final result and further
        pushes are rejected.
        """
        return self._round_trip({"cmd": "finish", "timeout": timeout})

    def shutdown(self) -> None:
        """Stop the server process-wide.  EOF instead of a reply counts as done."""
        try:
            self._round_trip({"cmd": "shutdown"}, eof_ok=True)
        except (ConnectionError, OSError):
            pass  # the teardown racing the reply is the expected shutdown path
        finally:
            self.close()
