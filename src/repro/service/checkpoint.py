"""Checkpoint persistence: full sketch/shard state to disk, restore, resume.

A checkpoint is one pickle file holding a manifest and a
:class:`~repro.pipeline.SinkState` — the chunk-aligned, un-merged copy of a
pipelined run's ingestion state that :meth:`repro.pipeline.PipelinedExecutor.sink_state`
captures.  :class:`Checkpointer` adds exactly three things on top of the pipeline
layer's capture/restore:

* **a versioned, checksummed on-disk format** — a ``format`` tag and the package
  version, so a reader can refuse a checkpoint it does not understand instead of
  unpickling garbage into a half-built server, plus a SHA-256 digest over the
  pickled state so *any* flipped or truncated byte is rejected deterministically
  (a corrupted pickle does not reliably fail to parse: a flip inside a sketch's
  array buffer would otherwise be adopted silently);
* **a config manifest** — the sketch parameters the serving layer needs to rebuild
  a compatible server (ε, ϕ, universe, stream length, chunk size, shard count)
  without re-specifying them on restart;
* **atomic writes** — the file is written to a temp sibling and ``os.replace``-d
  into place, so a crash mid-checkpoint never leaves a truncated file where a
  previous good checkpoint used to be.

Determinism contract (what "resume bit-for-bit" means here)
-----------------------------------------------------------

Saving is a pure read: capturing and pickling never perturbs the live run.  A
:class:`~repro.primitives.rng.RandomSource` serializes as a deterministically
re-seeded sibling (see :mod:`repro.primitives.rng`), so restoring the same
checkpoint file twice and resuming the same tail produces **identical** final
reports — and a resumed run equals, bit for bit, an *offline* replay that
round-trips its state through this same save/load at the same chunk boundary
(:func:`repro.analysis.harness.run_service_comparison` measures exactly this).
What a resumed randomized sketch does *not* replay is the uninterrupted original's
future random draws; deterministic sketches (Misra–Gries, Space-Saving, Lossy
Counting) resume bit-for-bit identical to the uninterrupted run as well.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
import time
from typing import Dict, Optional, Tuple

from repro.observability.metrics import (
    DEFAULT_SIZE_BUCKETS,
    MetricRegistry,
    resolve_registry,
)
from repro.pipeline import PipelinedExecutor, SinkState
from repro.replication import GroupSinkState, ReplicaGroup

logger = logging.getLogger("repro.service.checkpoint")

#: On-disk format version; bump on incompatible layout changes.
#: Format 2 wraps the pickled ``{manifest, state}`` payload in a small outer
#: envelope carrying a SHA-256 digest of the payload bytes.  Format 3 adds a
#: ``wal_position`` field to the manifest — the absolute item position in the
#: write-ahead log this checkpoint covers (``None`` when no WAL was active) —
#: so recovery knows where journal replay must resume.  Readers accept both.
CHECKPOINT_FORMAT = 3

#: Format versions :meth:`Checkpointer.load` accepts.  Format 2 (PR 6–9
#: checkpoints, no WAL position) restores exactly as before; recovery treats
#: its missing ``wal_position`` as "replay from the checkpoint's item count".
COMPATIBLE_FORMATS = frozenset({2, CHECKPOINT_FORMAT})


class CheckpointError(RuntimeError):
    """An unreadable, unversioned, or incompatible checkpoint file."""


class Checkpointer:
    """Serialize and restore a pipelined run's full sketch/shard state.

    The server's ``checkpoint`` command, the CLI, and the offline half of the
    service-equivalence harness all go through this class, so every path that
    claims "same checkpoint semantics" provably shares them.  The only state it
    carries is observability: a :class:`~repro.observability.MetricRegistry`
    recording checkpoint duration, size, and fsync time (``repro_checkpoint_*``
    — ``None`` means the process-wide default), and integrity rejections are
    both counted and logged under ``repro.service.checkpoint``.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self._registry = resolve_registry(registry)
        self._metric_seconds = self._registry.histogram(
            "repro_checkpoint_seconds",
            "End-to-end checkpoint save latency (pickle + write + fsync + rename).",
        )
        self._metric_bytes = self._registry.histogram(
            "repro_checkpoint_bytes",
            "Pickled checkpoint payload size.",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._metric_fsync_seconds = self._registry.histogram(
            "repro_checkpoint_fsync_seconds",
            "Time spent in fsync (data file + directory entry) per checkpoint.",
        )
        self._metric_integrity_rejections = self._registry.counter(
            "repro_checkpoint_integrity_rejections_total",
            "Checkpoint loads rejected as corrupt, truncated, or incompatible.",
        )

    def save(
        self,
        path: str,
        state: "SinkState | GroupSinkState",
        config: Optional[Dict[str, object]] = None,
        wal_position: Optional[int] = None,
    ) -> Dict[str, object]:
        """Write one checkpoint file atomically and durably.

        Args:
            path: destination file; parent directories are created as needed.
            state: a capture from
                :meth:`repro.pipeline.PipelinedExecutor.sink_state` or
                :meth:`repro.replication.ReplicaGroup.sink_state`.
            config: sketch/server parameters to carry in the manifest (stored
                as-is; must be picklable).
            wal_position: the write-ahead log's absolute item position this
                state covers, when a WAL is active — recovery replays the
                journal strictly past it.  ``None`` (no WAL) restores exactly
                like a pre-WAL checkpoint.

        Returns:
            The manifest dict that was stored next to the state (``format``,
            ``package_version``, ``kind``, ``items_processed``,
            ``wal_position``, ``config``).
        """
        from repro import __version__

        # Checkpoints are rare (seconds apart at most), so the clock reads are
        # unconditional — unlike the per-chunk hot paths, nothing to shave here.
        save_started = time.perf_counter()
        fsync_seconds = 0.0
        manifest: Dict[str, object] = {
            "format": CHECKPOINT_FORMAT,
            "package_version": __version__,
            "kind": state.kind,
            "items_processed": state.items_processed,
            "wal_position": wal_position,
            "config": dict(config or {}),
        }
        payload = pickle.dumps({"manifest": manifest, "state": state},
                               protocol=pickle.HIGHEST_PROTOCOL)
        envelope = {
            "format": CHECKPOINT_FORMAT,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(envelope, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                # Durability, not just atomicity: the rename below only
                # guarantees readers see old-or-new; without fsyncing the data
                # first, a power loss can surface a *new* name holding zeroes.
                fsync_started = time.perf_counter()
                os.fsync(handle.fileno())
                fsync_seconds += time.perf_counter() - fsync_started
            os.replace(temp_path, path)
            fsync_started = time.perf_counter()
            self._fsync_directory(directory)
            fsync_seconds += time.perf_counter() - fsync_started
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self._metric_seconds.observe(time.perf_counter() - save_started)
        self._metric_bytes.observe(float(len(payload)))
        self._metric_fsync_seconds.observe(fsync_seconds)
        return manifest

    @staticmethod
    def _fsync_directory(directory: str) -> None:
        """Persist the rename itself: fsync the parent directory entry.

        ``os.replace`` makes the swap atomic for concurrent readers, but the
        new directory entry still lives in the page cache until the directory
        inode is flushed — a crash right after "checkpoint ok" was reported
        could otherwise roll the file back to the previous version (or to
        nothing).  Platforms whose directories cannot be opened or fsynced
        (e.g. Windows) skip this silently; they get atomicity without the
        rename-durability guarantee.
        """
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    @staticmethod
    def sweep_stale_temp_files(directory: str) -> list:
        """Unlink orphaned ``*.ckpt.tmp`` files a crash left behind.

        :meth:`save` writes to a ``mkstemp``-named ``*.ckpt.tmp`` sibling and
        renames it into place; its exception handler unlinks the temp on
        failure, but a hard crash (``kill -9``, power loss) between the write
        and the rename skips the handler and leaks the temp file forever.
        Recovery and restore call this to reclaim them.  Only the
        ``.ckpt.tmp`` suffix is swept — never live checkpoints, never files
        this module did not create.  Returns the unlinked paths.
        """
        removed = []
        try:
            names = os.listdir(directory)
        except OSError:
            return removed
        for name in sorted(names):
            if not name.endswith(".ckpt.tmp"):
                continue
            path = os.path.join(directory, name)
            try:
                os.unlink(path)
            except OSError:
                continue
            logger.warning("swept stale checkpoint temp file %r", path)
            removed.append(path)
        return removed

    def _reject(self, message: str, cause: Optional[BaseException] = None) -> None:
        """Refuse a checkpoint: count it, log it, raise the typed error.

        Every load-side rejection funnels through here so the failure is never
        silent — it surfaces as a ``repro.service.checkpoint`` WARNING and as
        the ``repro_checkpoint_integrity_rejections_total`` counter, on top of
        the :class:`CheckpointError` the caller handles.
        """
        self._metric_integrity_rejections.inc()
        logger.warning("checkpoint rejected: %s", message)
        raise CheckpointError(message) from cause

    def load(self, path: str) -> Tuple[SinkState, Dict[str, object]]:
        """Read a checkpoint file back.

        Returns:
            ``(state, manifest)`` — the restorable :class:`SinkState` and the
            manifest stored by :meth:`save`.

        Raises:
            CheckpointError: if the file is not a checkpoint, is corrupted or
                truncated (the envelope's SHA-256 digest no longer matches the
                payload), carries an unknown format version, or its state is
                neither a :class:`SinkState` nor a
                :class:`~repro.replication.GroupSinkState`.
            FileNotFoundError: if ``path`` does not exist.
        """
        with open(path, "rb") as handle:
            try:
                envelope = pickle.load(handle)
            except Exception as exc:
                # A flipped byte in a pickle stream can raise nearly anything
                # (UnpicklingError, EOFError, UnicodeDecodeError, ValueError,
                # MemoryError from a corrupted length, ...).  Whatever the
                # mode, the caller's contract is the same: a clean typed
                # rejection, never garbage adopted into a half-built server.
                self._reject(
                    f"{path!r} is not a readable checkpoint: "
                    f"{type(exc).__name__}: {exc}",
                    cause=exc,
                )
        if (
            not isinstance(envelope, dict)
            or not isinstance(envelope.get("payload"), bytes)
            or "sha256" not in envelope
        ):
            self._reject(f"{path!r} is not a checkpoint file")
        if envelope.get("format") not in COMPATIBLE_FORMATS:
            self._reject(
                f"{path!r} has checkpoint format {envelope.get('format')!r}; "
                f"this version reads formats "
                f"{sorted(COMPATIBLE_FORMATS)}"
            )
        digest = hashlib.sha256(envelope["payload"]).hexdigest()
        if digest != envelope["sha256"]:
            # The structural checks above only catch corruption that breaks
            # the pickle grammar; a flip inside an array buffer would parse
            # fine and silently change counts.  The digest catches every byte.
            self._reject(
                f"{path!r} is corrupted: payload SHA-256 {digest} does not "
                f"match the recorded {envelope['sha256']}"
            )
        try:
            payload = pickle.loads(envelope["payload"])
        except Exception as exc:
            self._reject(
                f"{path!r} is not a readable checkpoint: "
                f"{type(exc).__name__}: {exc}",
                cause=exc,
            )
        if not isinstance(payload, dict) or "manifest" not in payload or "state" not in payload:
            self._reject(f"{path!r} is not a checkpoint file")
        manifest = payload["manifest"]
        state = payload["state"]
        if not isinstance(state, (SinkState, GroupSinkState)):
            self._reject(
                f"{path!r} holds a {type(state).__name__}, not a sink state"
            )
        return state, manifest

    def restore_pipeline(
        self,
        path: str,
        chunk_size: Optional[int] = None,
        queue_depth: Optional[int] = None,
        registry: Optional[MetricRegistry] = None,
        tracer=None,
    ) -> Tuple["PipelinedExecutor | ReplicaGroup", Dict[str, object]]:
        """Load a checkpoint and rebuild a resumable sink.

        ``chunk_size``/``queue_depth`` default to the manifest's recorded values
        (falling back to the pipeline defaults), so a plain restore keeps the
        resumed chunk boundaries aligned with the original run.
        ``registry``/``tracer`` are handed to the rebuilt sink so a restored
        server is instrumented exactly like a fresh one.

        Returns:
            ``(sink, manifest)`` — a :class:`PipelinedExecutor` for a
            single-sink checkpoint, or a full-strength
            :class:`~repro.replication.ReplicaGroup` for a ``"replicated"``
            one (quarantined slots are re-seeded from a healthy capture during
            restore).  Either way, the sink's one permitted run covers the
            remaining stream tail.
        """
        self.sweep_stale_temp_files(os.path.dirname(os.path.abspath(path)))
        state, manifest = self.load(path)
        config = manifest.get("config", {})
        if chunk_size is None:
            chunk_size = int(config.get("chunk_size", 1 << 16))
        if queue_depth is None:
            queue_depth = int(config.get("queue_depth", 4))
        if isinstance(state, GroupSinkState):
            group = ReplicaGroup.from_sink_state(
                state, chunk_size=chunk_size, queue_depth=queue_depth,
                registry=registry, tracer=tracer,
            )
            return group, manifest
        executor = PipelinedExecutor.from_sink_state(
            state, chunk_size=chunk_size, queue_depth=queue_depth,
            registry=registry, tracer=tracer,
        )
        return executor, manifest
