"""Named streams for the service layer: per-stream sinks with LRU checkpoint-eviction.

:class:`StreamRegistry` maps a stream name to its own pipelined sink (a
:class:`~repro.pipeline.PipelinedExecutor` or a
:class:`~repro.replication.ReplicaGroup` — anything exposing the
``ingest_chunk``/``snapshot``/``finalize``/``sink_state`` surface), so one
:class:`~repro.service.server.IngestServer` process serves many independent
logical streams.  The implicit ``"default"`` stream keeps the server's original
queue-backed ingestion path; named streams never touch it, which is what keeps
every pre-tenancy client and test byte-compatible.

Ingestion model
---------------

Named streams are ingested *synchronously on the handler thread*: a push is
re-chunked against the stream's remainder buffer and every complete
``chunk_size`` chunk goes through ``ingest_chunk`` before the push is acked.
There is no per-stream ingestion thread — ``ingest_chunk``-driven ingestion is
proven bit-for-bit equal to a queue-backed ``run`` by the pipeline tests, and a
synchronous ack means ``flush`` is trivially satisfied for named streams.  The
cost is that a push round-trip pays sketch-update latency; the default stream
remains the high-throughput pipelined path.

Eviction contract
-----------------

With ``max_live_streams`` set, at most that many named streams keep a resident
sink.  Pushing or querying a stream beyond the cap evicts the least-recently-used
idle stream: its chunk-aligned sink state is written through
:class:`~repro.service.checkpoint.Checkpointer` to a per-stream spill file and
the sink is dropped; the next push/query lazily restores it.  Because a
:class:`~repro.primitives.rng.RandomSource` serializes as a deterministically
re-seeded sibling (see :mod:`repro.primitives.rng`), an evict→restore cycle is
bit-for-bit equivalent to an *offline replay that round-trips its state through
the same Checkpointer at the same chunk boundary* — and for deterministic
sketches (Misra–Gries and friends) it is bit-for-bit equivalent to the
uninterrupted run outright.  Each stream records its eviction boundaries
(``items_processed`` at every evict) so harnesses can replay the exact
round-trip schedule offline and assert identity.

The remainder buffer (pushed items past the last chunk boundary) always stays
in memory — it is bounded by ``chunk_size`` items per stream — so eviction never
loses acked items and restore needs no partial-chunk bookkeeping.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import tempfile
import threading
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.observability.metrics import MetricRegistry, resolve_registry
from repro.pipeline import PipelinedExecutor
from repro.service.checkpoint import Checkpointer

logger = logging.getLogger("repro.service.registry")

#: The implicit stream every pre-tenancy frame addresses; the server routes it
#: to its original push-queue path, so the registry never manages it.
DEFAULT_STREAM = "default"

#: The stream lifecycle commands the service protocol carries.  The
#: ``protocol-surface`` lint rule cross-checks this set against the server's
#: ``_KNOWN_COMMANDS``, its dispatch chain, the client's methods, and the docs,
#: so a lifecycle command cannot silently drop out of any layer.
_LIFECYCLE_COMMANDS = frozenset(
    {"stream_create", "stream_seal", "stream_delete", "stream_list"}
)


def derive_stream_seed(seed: Optional[int], name: str) -> int:
    """A stable 62-bit seed for one named stream, derived from the server seed.

    Hash-based (not drawn from an RNG stream) so the seed for a stream depends
    only on ``(seed, name)`` — a solo offline replay of one stream can rebuild
    the exact sketch the server built for it without knowing which other
    streams existed or in what order they were created.
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << 62) - 1)


class _StreamState:
    """One named stream's record; every field is guarded by the registry lock."""

    __slots__ = (
        "name", "sink", "remainder", "items_received", "items_processed",
        "chunks", "sealed", "seal_kwargs", "result", "spilled", "spill_path",
        "evictions", "restores", "eviction_boundaries", "last_used",
        "wal", "wal_dir",
    )

    def __init__(self, name: str, sink: Any, spill_path: str) -> None:
        self.name = name
        self.sink = sink  # PipelinedExecutor | ReplicaGroup | None when spilled/sealed
        self.remainder = np.empty(0, dtype=np.int64)
        self.items_received = 0
        self.items_processed = 0
        self.chunks = 0
        self.sealed = False
        self.seal_kwargs: Optional[Dict[str, Any]] = None
        self.result = None  # PipelinedRunResult | GroupRunResult after seal
        self.spilled = False
        self.spill_path = spill_path
        self.evictions = 0
        self.restores = 0
        self.eviction_boundaries: List[int] = []
        self.last_used = 0
        self.wal = None  # WriteAheadLog | None when the registry journals
        self.wal_dir: Optional[str] = None


class StreamRegistry:
    """Name → sink map with create/seal/delete lifecycle and LRU checkpoint-eviction.

    Args:
        build_sink: factory called with the stream name to build a fresh,
            unconsumed sink for it.  Seed it deterministically from the name
            (see :func:`derive_stream_seed`) so a solo offline replay of the
            stream can reproduce the served report bit for bit.
        chunk_size: re-chunk granularity for every named stream — use the same
            value as the offline replay to keep chunk boundaries (and therefore
            eviction boundaries and reports) aligned.
        queue_depth: producer bound handed to restored executors (named streams
            never run a producer, so this only matters for API symmetry).
        max_live_streams: bound on named streams with a resident sink;
            ``None`` disables eviction.  Must be >= 1 when set — the stream
            being pushed or queried always needs its sink resident.
        spill_dir: directory for eviction spill files; a private temporary
            directory (removed by :meth:`close`) when omitted.
        registry: metric registry for the ``repro_service_stream_*`` families
            (per-stream labeled counters and the live-streams gauge).

    Thread safety: one registry lock serializes every operation.  Named-stream
    pushes are synchronous sketch updates, so cross-stream parallelism is not a
    goal here; the lock is what makes push/evict/restore/query atomic with
    respect to each other — a query acked after a push always reflects it.
    """

    def __init__(
        self,
        build_sink: Callable[[str], Any],
        chunk_size: int,
        queue_depth: int = 4,
        max_live_streams: Optional[int] = None,
        spill_dir: Optional[str] = None,
        registry: Optional[MetricRegistry] = None,
        wal_dir: Optional[str] = None,
        wal_fsync: str = "always",
        wal_segment_bytes: Optional[int] = None,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if max_live_streams is not None and max_live_streams < 1:
            raise ValueError("max_live_streams must be >= 1 (or None to disable)")
        self._build_sink = build_sink
        self._chunk_size = chunk_size
        self._queue_depth = queue_depth
        self._max_live = max_live_streams
        self._metrics = resolve_registry(registry)
        self._checkpointer = Checkpointer(registry=self._metrics)
        self._lock = threading.Lock()
        self._streams: Dict[str, _StreamState] = {}
        self._clock = 0
        self._closed = False
        # Per-stream durability: with a wal_dir, each named stream gets its own
        # journal under {wal_dir}/stream-{digest}/ (plus a meta.json mapping
        # the digest back to the client-chosen name), pushes are journaled
        # before ingest, eviction spills double as WAL checkpoints (driving
        # compaction), and construction recovers every stream found on disk.
        self._wal_dir = os.path.abspath(wal_dir) if wal_dir is not None else None
        self._wal_fsync = wal_fsync
        self._wal_segment_bytes = wal_segment_bytes
        if spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-stream-spill-")
            self._owns_spill_dir = True
        else:
            os.makedirs(spill_dir, exist_ok=True)
            self._spill_dir = spill_dir
            self._owns_spill_dir = False
        self._metric_pushes = self._metrics.counter(
            "repro_service_stream_pushes_total",
            "Push frames accepted, by named stream.",
            labels=("stream",),
        )
        self._metric_items = self._metrics.counter(
            "repro_service_stream_items_total",
            "Items accepted, by named stream.",
            labels=("stream",),
        )
        self._metric_evictions = self._metrics.counter(
            "repro_service_stream_evictions_total",
            "LRU checkpoint-evictions of a resident stream sink, by stream.",
            labels=("stream",),
        )
        self._metric_restores = self._metrics.counter(
            "repro_service_stream_restores_total",
            "Lazy restores of a spilled stream sink, by stream.",
            labels=("stream",),
        )
        self._metric_live = self._metrics.gauge(
            "repro_service_live_streams",
            "Named streams with a resident (unspilled, unsealed) sink.",
        )
        if self._wal_dir is not None:
            os.makedirs(self._wal_dir, exist_ok=True)
            with self._lock:
                self._locked_recover_streams()

    # -- properties ---------------------------------------------------------------------

    @property
    def chunk_size(self) -> int:
        return self._chunk_size

    @property
    def max_live_streams(self) -> Optional[int]:
        return self._max_live

    @property
    def stream_count(self) -> int:
        """Named streams currently registered (live, spilled, or sealed)."""
        with self._lock:
            return len(self._streams)

    @property
    def live_count(self) -> int:
        """Named streams with a resident, unsealed sink."""
        with self._lock:
            return self._locked_live_count()

    def _locked_live_count(self) -> int:
        return sum(
            1 for state in self._streams.values()
            if state.sink is not None and not state.sealed
        )

    # -- lifecycle ----------------------------------------------------------------------

    def create(self, name: str) -> Dict[str, object]:
        """Explicitly create a named stream; errors if it already exists."""
        self._check_name(name)
        with self._lock:
            if name in self._streams:
                raise ValueError(f"stream {name!r} already exists")
            state = self._locked_create(name)
            return self._locked_info(state)

    def seal(
        self, name: str, report_kwargs: Optional[Mapping[str, Any]] = None
    ) -> Any:
        """Finalize a stream: ingest its remainder, merge, report; idempotent.

        A second seal with the same ``report_kwargs`` returns the stored
        result (mirroring the default stream's idempotent ``finish``); a seal
        with different kwargs is refused, exactly like re-reporting a finished
        run.
        """
        kwargs = dict(report_kwargs or {})
        with self._lock:
            state = self._locked_get(name)
            if state.sealed:
                if kwargs != state.seal_kwargs:
                    raise ValueError(
                        f"stream {name!r} is already sealed; cannot re-report "
                        "with different report arguments"
                    )
                return state.result
            self._locked_ensure_live(state)
            if state.remainder.size:
                state.sink.ingest_chunk(state.remainder)
                state.remainder = np.empty(0, dtype=np.int64)
            state.result = state.sink.finalize(report_kwargs=kwargs)
            state.items_processed = state.result.items_processed
            state.chunks = state.result.chunks
            state.sealed = True
            state.seal_kwargs = kwargs
            state.sink = None  # the merge consumed it; the result stands
            self._locked_remove_spill(state)
            self._metric_live.set(self._locked_live_count())
            return state.result

    def delete(self, name: str) -> Dict[str, object]:
        """Drop a stream entirely: sink, spill file, journal, result, accounting.

        Disk is reclaimed, not leaked: the eviction spill file is unlinked and,
        for a journaled stream, the WAL is closed and its whole directory
        (segments, spill, meta.json) is removed — a deleted stream must not be
        resurrected by the next restart's recovery scan.
        """
        with self._lock:
            state = self._locked_get(name)
            info = self._locked_info(state)
            self._locked_remove_spill(state)
            if state.wal is not None:
                state.wal.close()
                state.wal = None
            if state.wal_dir is not None:
                shutil.rmtree(state.wal_dir, ignore_errors=True)
            del self._streams[name]
            self._metric_live.set(self._locked_live_count())
            info["deleted"] = True
            return info

    def close(self) -> None:
        """Drop every stream; remove the spill directory if this registry owns it."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for state in self._streams.values():
                if state.wal is not None:
                    state.wal.close()
            self._streams.clear()
            if self._owns_spill_dir:
                shutil.rmtree(self._spill_dir, ignore_errors=True)

    # -- ingestion and queries ----------------------------------------------------------

    def push(self, name: str, items: np.ndarray) -> int:
        """Ingest one pushed batch synchronously; returns the stream's item total.

        Creates the stream implicitly on first push (``stream_create`` remains
        for callers that want existence errors).  The batch is re-chunked
        against the stream's remainder buffer; every complete ``chunk_size``
        chunk is ingested before this call returns, so the ack covers it.
        """
        batch = np.ascontiguousarray(items, dtype=np.int64)
        with self._lock:
            state = self._streams.get(name)
            if state is None:
                self._check_name(name)
                state = self._locked_create(name)
            if state.sealed:
                raise RuntimeError(f"stream {name!r} has been sealed; no further pushes")
            self._locked_ensure_live(state)
            if state.wal is not None:
                # Journal before ingest: a crash mid-update leaves the batch
                # recoverable, and the ack this push returns covers it.
                state.wal.append(batch)
            combined = (
                np.concatenate([state.remainder, batch])
                if state.remainder.size else batch
            )
            cut = combined.size - combined.size % self._chunk_size
            for start in range(0, cut, self._chunk_size):
                state.sink.ingest_chunk(combined[start:start + self._chunk_size])
            state.remainder = combined[cut:].copy()
            state.items_received += batch.size
            state.items_processed = state.sink.items_processed
            state.chunks += cut // self._chunk_size
            received = state.items_received
        self._metric_pushes.labels(stream=name).inc()
        self._metric_items.labels(stream=name).inc(int(batch.size))
        return received

    def query(self, name: str, report_kwargs: Optional[Mapping[str, Any]] = None
              ) -> Tuple[bool, Any]:
        """``(final, result_or_snapshot)`` for one stream; restores it if spilled.

        Mid-ingest the answer is a chunk-aligned
        :class:`~repro.pipeline.executor.PipelineSnapshot` (the remainder
        buffer is not included — exactly the default stream's mid-ingest
        semantics); after seal it is the stored run result.
        """
        kwargs = dict(report_kwargs or {})
        with self._lock:
            state = self._locked_get(name)
            if state.sealed:
                if kwargs != state.seal_kwargs:
                    raise ValueError(
                        f"stream {name!r} is sealed; cannot re-report with "
                        "different report arguments"
                    )
                return True, state.result
            self._locked_ensure_live(state)
            return False, state.sink.snapshot(report_kwargs=kwargs)

    def flush_info(self, name: str) -> Dict[str, object]:
        """The ``flush`` reply for a named stream — trivially already flushed.

        Named-stream pushes ingest synchronously before acking, so everything
        up to the last chunk boundary is always processed; only the remainder
        (< ``chunk_size`` items) waits for more data or ``stream_seal``.
        """
        with self._lock:
            state = self._locked_get(name)
            return {
                "items_received": state.items_received,
                "items_processed": state.items_processed,
                "flushed_to": state.items_received - int(state.remainder.size),
            }

    def items_received(self, name: str) -> int:
        """The stream's accepted-item count (0 for a not-yet-created stream)."""
        with self._lock:
            state = self._streams.get(name)
            return 0 if state is None else state.items_received

    def wal_position_for(self, name: str, state: Any) -> Optional[int]:
        """The journal position a checkpoint of ``state`` covers, or ``None``.

        Same currency argument as the server's default stream: WAL positions
        are absolute stream items, so a chunk-aligned sink state at item ``N``
        is covered by journal position ``N`` exactly.
        """
        with self._lock:
            stream = self._streams.get(name)
            if stream is None or stream.wal is None:
                return None
            return int(state.items_processed)

    def checkpoint_state(self, name: str) -> Any:
        """A chunk-aligned :class:`SinkState` copy of one stream, for checkpointing.

        A spilled stream is read straight from its spill file — checkpointing
        an idle stream must not force it resident.
        """
        with self._lock:
            state = self._locked_get(name)
            if state.sealed:
                raise RuntimeError(
                    f"stream {name!r} is sealed; there is no resumable state left"
                )
            if state.spilled:
                return self._checkpointer.load(state.spill_path)[0]
            return state.sink.sink_state()

    # -- introspection ------------------------------------------------------------------

    def stream_info(self, name: str) -> Dict[str, object]:
        with self._lock:
            return self._locked_info(self._locked_get(name))

    def list_streams(self) -> List[Dict[str, object]]:
        with self._lock:
            return [
                self._locked_info(state)
                for _, state in sorted(self._streams.items())
            ]

    def _locked_info(self, state: _StreamState) -> Dict[str, object]:
        return {
            "stream": state.name,
            "live": state.sink is not None and not state.sealed,
            "spilled": state.spilled,
            "sealed": state.sealed,
            "items_received": state.items_received,
            "items_processed": state.items_processed,
            "chunks": state.chunks,
            "remainder_items": int(state.remainder.size),
            "evictions": state.evictions,
            "restores": state.restores,
            "eviction_boundaries": list(state.eviction_boundaries),
        }

    # -- internals (registry lock held) -------------------------------------------------

    @staticmethod
    def _check_name(name: str) -> None:
        if not isinstance(name, str) or not name:
            raise ValueError("stream name must be a non-empty string")
        if name == DEFAULT_STREAM:
            raise ValueError(
                f"{DEFAULT_STREAM!r} is the implicit stream; it cannot be "
                "created, sealed, or deleted"
            )

    def _locked_get(self, name: str) -> _StreamState:
        state = self._streams.get(name)
        if state is None:
            raise KeyError(f"unknown stream {name!r}")
        return state

    def _locked_create(self, name: str) -> _StreamState:
        # Spill files are keyed by a digest of the name: stream names are
        # client-chosen and must never become path components.
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:16]
        if self._wal_dir is not None:
            state = self._locked_create_journaled(name, digest)
        else:
            spill_path = os.path.join(self._spill_dir, f"stream-{digest}.ckpt")
            state = _StreamState(name, self._build_sink(name), spill_path)
        self._streams[name] = state
        self._locked_touch(state)
        self._locked_evict_to_cap(protect=state)
        self._metric_live.set(self._locked_live_count())
        return state

    def _locked_create_journaled(self, name: str, digest: str) -> _StreamState:
        """Create (or crash-recover) one journaled stream's state.

        The stream's WAL directory doubles as its spill directory, so an
        eviction checkpoint is exactly what :func:`repro.durability.recover_sink`
        restores after a crash — one file, one discovery rule, and the spill
        save drives journal compaction for free.
        """
        from repro.durability import recover_sink

        stream_dir = os.path.join(self._wal_dir, f"stream-{digest}")
        recovered = recover_sink(
            stream_dir,
            lambda: self._build_sink(name),
            chunk_size=self._chunk_size,
            checkpointer=self._checkpointer,
            fsync=self._wal_fsync,
            segment_bytes=self._wal_segment_bytes,
            queue_depth=self._queue_depth,
            registry=self._metrics,
        )
        self._write_stream_meta(stream_dir, name)
        state = _StreamState(
            name, recovered.sink, os.path.join(stream_dir, "spill.ckpt")
        )
        state.wal = recovered.wal
        state.wal_dir = stream_dir
        state.items_processed = int(recovered.sink.items_processed)
        state.chunks = state.items_processed // self._chunk_size
        if recovered.tail.size:
            state.remainder = np.ascontiguousarray(recovered.tail, dtype=np.int64)
        state.items_received = state.items_processed + int(state.remainder.size)
        return state

    @staticmethod
    def _write_stream_meta(stream_dir: str, name: str) -> None:
        """Record the stream's client-chosen name next to its digest-keyed WAL.

        Without it a restart could replay the journal but not know *which*
        stream it belongs to.  Written once, durably (data then directory), on
        first creation; create-then-crash without the meta only loses an empty
        journal.
        """
        meta_path = os.path.join(stream_dir, "meta.json")
        if os.path.exists(meta_path):
            return
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump({"stream": name}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        Checkpointer._fsync_directory(stream_dir)

    def _locked_recover_streams(self) -> None:
        """Re-register every journaled stream found in the WAL directory.

        Runs once, at construction: each ``stream-*/meta.json`` names a stream
        that existed before the crash (or clean stop); creating it through the
        normal path replays its checkpoint + journal, so a restarted server
        answers ``stream_list``/``query`` for it without waiting for a push.
        """
        for entry in sorted(os.listdir(self._wal_dir)):
            meta_path = os.path.join(self._wal_dir, entry, "meta.json")
            if not (entry.startswith("stream-") and os.path.isfile(meta_path)):
                continue
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    name = json.load(handle)["stream"]
            except (OSError, ValueError, KeyError) as exc:
                logger.warning("skipping unreadable stream meta %r: %s",
                               meta_path, exc)
                continue
            if name in self._streams:
                continue
            self._streams[name] = state = self._locked_create_journaled(
                name, entry[len("stream-"):]
            )
            self._locked_touch(state)
            self._locked_evict_to_cap(protect=state)
        self._metric_live.set(self._locked_live_count())

    def _locked_touch(self, state: _StreamState) -> None:
        self._clock += 1
        state.last_used = self._clock

    def _locked_ensure_live(self, state: _StreamState) -> None:
        """Restore a spilled sink if needed, update LRU, enforce the cap."""
        self._locked_touch(state)
        if state.sink is None and not state.sealed:
            sink, _ = self._checkpointer.restore_pipeline(
                state.spill_path,
                chunk_size=self._chunk_size,
                queue_depth=self._queue_depth,
                registry=self._metrics,
            )
            state.sink = sink
            state.spilled = False
            state.restores += 1
            self._metric_restores.labels(stream=state.name).inc()
        self._locked_evict_to_cap(protect=state)
        self._metric_live.set(self._locked_live_count())

    def _locked_evict_to_cap(self, protect: _StreamState) -> None:
        if self._max_live is None:
            return
        while self._locked_live_count() > self._max_live:
            victim = min(
                (
                    state for state in self._streams.values()
                    if state.sink is not None
                    and not state.sealed
                    and state is not protect
                ),
                key=lambda state: state.last_used,
                default=None,
            )
            if victim is None:
                return  # only the protected stream is live; nothing to evict
            self._locked_evict(victim)

    def _locked_evict(self, state: _StreamState) -> None:
        sink_state = state.sink.sink_state()
        self._checkpointer.save(
            state.spill_path,
            sink_state,
            config={
                "stream": state.name,
                "chunk_size": self._chunk_size,
                "queue_depth": self._queue_depth,
            },
            wal_position=(
                int(sink_state.items_processed) if state.wal is not None else None
            ),
        )
        if state.wal is not None:
            # The spill lives inside the stream's WAL directory, so recovery
            # can restore it — which makes the journal's covered prefix safe
            # to reclaim right now.
            state.wal.compact(int(sink_state.items_processed))
        state.sink = None
        state.spilled = True
        state.evictions += 1
        state.eviction_boundaries.append(state.items_processed)
        self._metric_evictions.labels(stream=state.name).inc()

    def _locked_remove_spill(self, state: _StreamState) -> None:
        state.spilled = False
        try:
            os.unlink(state.spill_path)
        except OSError:
            pass
