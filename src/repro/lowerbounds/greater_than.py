"""The Greater-Than reduction (paper Theorem 14) — the Ω(log log m) term.

``Greater-Than_n``: Alice holds ``x ∈ [n]``, Bob holds ``y ∈ [n]`` with ``y ≠ x``, and
Bob must decide whether ``x > y`` from one message.  Its one-way communication
complexity is ``Ω(log n)`` (Lemma 7, via Augmented-Indexing).

Theorem 14 turns any ε-Heavy Hitters (or Maximum / Minimum / Borda / Maximin) algorithm
over a *two-item* universe into a Greater-Than protocol: Alice inserts ``2^x`` copies of
item 1, Bob inserts ``2^y`` copies of item 0, and the ε-winner is item 1 exactly when
``x > y``.  Since the stream length is ``m ≈ 2^x + 2^y``, the ``Ω(log n)`` communication
bound becomes an ``Ω(log log m)`` space bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.lowerbounds.protocols import OneWayProtocolRun, StreamingChannel
from repro.primitives.rng import RandomSource


@dataclass(frozen=True)
class GreaterThanInstance:
    """One instance of Greater-Than: Alice's exponent ``x`` and Bob's exponent ``y``."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if self.x == self.y:
            raise ValueError("Greater-Than requires x != y")
        if self.x < 0 or self.y < 0:
            raise ValueError("exponents must be non-negative")

    @property
    def answer(self) -> bool:
        return self.x > self.y

    def communication_lower_bound_bits(self) -> float:
        """Ω(log n) where n bounds the exponents."""
        return math.log2(max(2, max(self.x, self.y) + 1))

    @classmethod
    def random(cls, max_exponent: int, rng: Optional[RandomSource] = None) -> "GreaterThanInstance":
        rng = rng if rng is not None else RandomSource()
        x = rng.randint(0, max_exponent)
        y = rng.randint(0, max_exponent)
        while y == x:
            y = rng.randint(0, max_exponent)
        return cls(x=x, y=y)


class GreaterThanReduction:
    """Theorem 14: Greater-Than → ε-Heavy Hitters (or ε-Maximum) over a 2-item universe."""

    UNIVERSE_SIZE = 2

    def __init__(self, epsilon: float = 0.2) -> None:
        if not 0.0 < epsilon < 0.25:
            raise ValueError("the reduction needs epsilon < 1/4")
        self.epsilon = epsilon

    def alice_stream(self, instance: GreaterThanInstance) -> List[int]:
        """2^x copies of item 1."""
        return [1] * (2 ** instance.x)

    def bob_stream(self, instance: GreaterThanInstance) -> List[int]:
        """2^y copies of item 0."""
        return [0] * (2 ** instance.y)

    def run(
        self,
        instance: GreaterThanInstance,
        algorithm_factory: Callable[[int, int], object],
    ) -> OneWayProtocolRun:
        """``algorithm_factory(universe_size, stream_length)`` builds an ε-Maximum solver.

        The decoded bit is whether item 1 (Alice's item) is the ε-winner, which equals
        ``x > y`` because the two frequencies differ by at least a factor of two, far
        more than the ``εm < m/4`` additive slack.
        """
        alice_items = self.alice_stream(instance)
        bob_items = self.bob_stream(instance)
        total_length = len(alice_items) + len(bob_items)
        algorithm = algorithm_factory(self.UNIVERSE_SIZE, total_length)
        channel = StreamingChannel(algorithm)
        channel.alice_phase(alice_items)
        channel.bob_phase(bob_items)
        result = channel.report()
        decoded = bool(result.item == 1)
        return OneWayProtocolRun(
            decoded=decoded,
            expected=instance.answer,
            message_bits=channel.message_bits(),
            information_lower_bound_bits=instance.communication_lower_bound_bits(),
            metadata={"stream_length": total_length, "universe_size": self.UNIVERSE_SIZE},
        )
