"""Indexing reductions (paper Theorems 9, 10 and 11).

The Indexing problem ``Indexing_{m,t}``: Alice holds a string ``x ∈ [m]^t``, Bob an index
``i ∈ [t]``, and Bob must output ``x_i`` after receiving a single message from Alice.
Its one-way randomized communication complexity is ``Ω(t log m)`` (Lemma 5), and it is
the source of three of the paper's lower bounds:

* **Theorem 9** — the ``Ω(ε⁻¹ log ϕ⁻¹)`` term for (ε,ϕ)-Heavy Hitters: the universe is
  the grid ``[1/(2(ϕ−ε))] × [1/(2ε)]``; Alice inserts ``εm`` copies of ``(x_j, j)`` for
  every column ``j``; Bob inserts ``(ϕ−ε)m`` copies of ``(v, i)`` for every row ``v``.
  Exactly one item — ``(x_i, i)`` — reaches frequency ``ϕm``, so the heavy-hitters
  output reveals ``x_i``.
* **Theorem 10** — the ``Ω(ε⁻¹ log ε⁻¹)`` bound for ε-Maximum: the same construction on
  the grid ``[1/ε] × [1/ε]`` with ``εm/2``-sized blocks; the unique maximum is
  ``(x_i, i)``.
* **Theorem 11** — the ``Ω(ε⁻¹)`` bound for ε-Minimum: Alice holds a *bit* string; she
  inserts two copies of every item ``j`` with ``x_j = 1``; Bob inserts two copies of
  everything except ``i`` and a reserve item, and one copy of the reserve item.  The
  minimum-frequency item is ``i`` if ``x_i = 0`` and the reserve item otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.lowerbounds.protocols import OneWayProtocolRun, StreamingChannel
from repro.primitives.rng import RandomSource


@dataclass(frozen=True)
class IndexingInstance:
    """One instance of ``Indexing_{alphabet_size, length}``."""

    alphabet_size: int
    values: Tuple[int, ...]
    query_index: int

    @property
    def length(self) -> int:
        return len(self.values)

    @property
    def answer(self) -> int:
        return self.values[self.query_index]

    def communication_lower_bound_bits(self) -> float:
        """Ω(t log m): the information content of Alice's string."""
        return self.length * math.log2(max(2, self.alphabet_size))

    @classmethod
    def random(
        cls,
        alphabet_size: int,
        length: int,
        rng: Optional[RandomSource] = None,
    ) -> "IndexingInstance":
        rng = rng if rng is not None else RandomSource()
        values = tuple(rng.randint(0, alphabet_size - 1) for _ in range(length))
        query_index = rng.randint(0, length - 1)
        return cls(alphabet_size=alphabet_size, values=values, query_index=query_index)


class HeavyHittersIndexingReduction:
    """Theorem 9: Indexing → (ε,ϕ)-Heavy Hitters over the grid universe.

    ``epsilon`` and ``phi`` are the heavy-hitter parameters; the Indexing instance has
    ``t = 1/(2ε)`` positions over the alphabet ``[1/(2(ϕ−ε))]``.  The stream has length
    ``stream_length`` (``m`` in the paper), half contributed by Alice, half by Bob.
    """

    def __init__(self, epsilon: float, phi: float, stream_length: int) -> None:
        if not 0.0 < epsilon < phi <= 1.0:
            raise ValueError("need 0 < epsilon < phi <= 1")
        if phi <= 2 * epsilon:
            raise ValueError("the reduction requires phi > 2*epsilon")
        self.epsilon = epsilon
        self.phi = phi
        self.stream_length = stream_length
        self.num_columns = max(1, int(math.floor(1.0 / (2.0 * epsilon))))
        self.num_rows = max(1, int(math.floor(1.0 / (2.0 * (phi - epsilon)))))
        self.universe_size = self.num_rows * self.num_columns

    def encode_pair(self, row: int, column: int) -> int:
        """The grid item (row, column) as a single universe id."""
        return row * self.num_columns + column

    def decode_pair(self, item: int) -> Tuple[int, int]:
        return item // self.num_columns, item % self.num_columns

    def random_instance(self, rng: Optional[RandomSource] = None) -> IndexingInstance:
        return IndexingInstance.random(self.num_rows, self.num_columns, rng=rng)

    def alice_stream(self, instance: IndexingInstance) -> List[int]:
        """εm copies of (x_j, j) for every column j."""
        copies = max(1, int(round(self.epsilon * self.stream_length)))
        items: List[int] = []
        for column, value in enumerate(instance.values):
            items.extend([self.encode_pair(value, column)] * copies)
        return items

    def bob_stream(self, instance: IndexingInstance) -> List[int]:
        """(ϕ−ε)m copies of (v, i) for every row v."""
        copies = max(1, int(round((self.phi - self.epsilon) * self.stream_length)))
        items: List[int] = []
        for row in range(self.num_rows):
            items.extend([self.encode_pair(row, instance.query_index)] * copies)
        return items

    def run(
        self,
        instance: IndexingInstance,
        algorithm_factory: Callable[[int, int], object],
    ) -> OneWayProtocolRun:
        """Run the reduction end to end.

        ``algorithm_factory(universe_size, stream_length)`` must build an (ε,ϕ)-List
        heavy hitters algorithm whose ``report()`` returns a
        :class:`~repro.core.results.HeavyHittersReport`.
        """
        alice_items = self.alice_stream(instance)
        bob_items = self.bob_stream(instance)
        total_length = len(alice_items) + len(bob_items)
        algorithm = algorithm_factory(self.universe_size, total_length)
        channel = StreamingChannel(algorithm)
        channel.alice_phase(alice_items)
        channel.bob_phase(bob_items)
        report = channel.report()
        decoded = self._decode(report, instance)
        return OneWayProtocolRun(
            decoded=decoded,
            expected=instance.answer,
            message_bits=channel.message_bits(),
            information_lower_bound_bits=instance.communication_lower_bound_bits(),
            metadata={
                "stream_length": total_length,
                "universe_size": self.universe_size,
            },
        )

    def _decode(self, report, instance: IndexingInstance) -> Optional[int]:
        """Bob's decoding: the reported item in column i with the largest estimate."""
        best_row, best_estimate = None, -1.0
        for item, estimate in report.items.items():
            row, column = self.decode_pair(item)
            if column == instance.query_index and estimate > best_estimate:
                best_row, best_estimate = row, estimate
        return best_row


class MaximumIndexingReduction:
    """Theorem 10: Indexing → ε-Maximum over the grid universe ``[1/ε] × [1/ε]``."""

    def __init__(self, epsilon: float, stream_length: int) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self.stream_length = stream_length
        self.side = max(1, int(math.floor(1.0 / epsilon)))
        self.universe_size = self.side * self.side

    def encode_pair(self, row: int, column: int) -> int:
        return row * self.side + column

    def decode_pair(self, item: int) -> Tuple[int, int]:
        return item // self.side, item % self.side

    def random_instance(self, rng: Optional[RandomSource] = None) -> IndexingInstance:
        return IndexingInstance.random(self.side, self.side, rng=rng)

    def alice_stream(self, instance: IndexingInstance) -> List[int]:
        copies = max(1, int(self.epsilon * self.stream_length / 2))
        items: List[int] = []
        for column, value in enumerate(instance.values):
            items.extend([self.encode_pair(value, column)] * copies)
        return items

    def bob_stream(self, instance: IndexingInstance) -> List[int]:
        copies = max(1, int(self.epsilon * self.stream_length / 2))
        items: List[int] = []
        for row in range(self.side):
            items.extend([self.encode_pair(row, instance.query_index)] * copies)
        return items

    def run(
        self,
        instance: IndexingInstance,
        algorithm_factory: Callable[[int, int], object],
    ) -> OneWayProtocolRun:
        """``algorithm_factory(universe_size, stream_length)`` builds an ε-Maximum solver."""
        alice_items = self.alice_stream(instance)
        bob_items = self.bob_stream(instance)
        total_length = len(alice_items) + len(bob_items)
        algorithm = algorithm_factory(self.universe_size, total_length)
        channel = StreamingChannel(algorithm)
        channel.alice_phase(alice_items)
        channel.bob_phase(bob_items)
        result = channel.report()
        decoded_row, decoded_column = self.decode_pair(result.item)
        decoded = decoded_row if decoded_column == instance.query_index else None
        return OneWayProtocolRun(
            decoded=decoded,
            expected=instance.answer,
            message_bits=channel.message_bits(),
            information_lower_bound_bits=instance.communication_lower_bound_bits(),
            metadata={"stream_length": total_length, "universe_size": self.universe_size},
        )


class MinimumIndexingReduction:
    """Theorem 11: Indexing (binary alphabet) → ε-Minimum.

    Universe: ``[t + 1]`` where ``t = 5/ε`` positions plus one reserve item ``t``.
    """

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        self.length = max(2, int(math.floor(5.0 / epsilon)))
        self.reserve_item = self.length
        self.universe_size = self.length + 1

    def random_instance(self, rng: Optional[RandomSource] = None) -> IndexingInstance:
        return IndexingInstance.random(2, self.length, rng=rng)

    def alice_stream(self, instance: IndexingInstance) -> List[int]:
        """Two copies of every item j with x_j = 1."""
        items: List[int] = []
        for position, bit in enumerate(instance.values):
            if bit == 1:
                items.extend([position, position])
        return items

    def bob_stream(self, instance: IndexingInstance) -> List[int]:
        """Two copies of everything except i and the reserve item; one reserve copy."""
        items: List[int] = []
        for position in range(self.length):
            if position != instance.query_index:
                items.extend([position, position])
        items.append(self.reserve_item)
        return items

    def run(
        self,
        instance: IndexingInstance,
        algorithm_factory: Callable[[int, int], object],
    ) -> OneWayProtocolRun:
        """``algorithm_factory(universe_size, stream_length)`` builds an ε-Minimum solver."""
        alice_items = self.alice_stream(instance)
        bob_items = self.bob_stream(instance)
        total_length = len(alice_items) + len(bob_items)
        algorithm = algorithm_factory(self.universe_size, total_length)
        channel = StreamingChannel(algorithm)
        channel.alice_phase(alice_items)
        channel.bob_phase(bob_items)
        result = channel.report()
        # Decoding: the minimum is i when x_i = 0 (frequency 0 vs everything >= 1),
        # and the reserve item when x_i = 1 (frequency 1 vs everything >= 2).
        decoded = 0 if result.item == instance.query_index else 1
        return OneWayProtocolRun(
            decoded=decoded,
            expected=instance.answer,
            message_bits=channel.message_bits(),
            information_lower_bound_bits=float(self.length),
            metadata={"stream_length": total_length, "universe_size": self.universe_size},
        )
