"""Executable versions of the paper's lower-bound reductions (Section 4).

The space lower bounds in Table 1 are proved by reductions from one-way communication
problems: if a streaming algorithm used fewer bits than the bound, Alice could run it on
a carefully constructed prefix of a stream, send its state to Bob, and Bob — by
appending a suffix and reading the answer — would solve a communication problem below
its known communication complexity.

These reductions are *constructive*, so we can run them: this subpackage builds the
exact gadget streams of Theorems 9–14 and verifies, end to end, that the decoded answer
matches Alice's input when the streaming algorithm meets its accuracy guarantee.  That
demonstrates the information-theoretic content of the lower bounds (the algorithm's
state must carry the Indexing / Greater-Than / Perm instance) without, of course,
proving the bound — proofs aren't executable; reductions are.

Modules:

* :mod:`repro.lowerbounds.protocols` — the one-way protocol simulation framework.
* :mod:`repro.lowerbounds.indexing` — Indexing reductions (Theorems 9, 10, 11).
* :mod:`repro.lowerbounds.greater_than` — Greater-Than reduction (Theorem 14).
* :mod:`repro.lowerbounds.perm` — ε-Perm reduction to ε-Borda (Theorem 12).
* :mod:`repro.lowerbounds.bounds` — closed-form bit formulas for every row of Table 1.
"""

from repro.lowerbounds.protocols import OneWayProtocolRun, StreamingChannel
from repro.lowerbounds.indexing import (
    IndexingInstance,
    HeavyHittersIndexingReduction,
    MaximumIndexingReduction,
    MinimumIndexingReduction,
)
from repro.lowerbounds.greater_than import GreaterThanInstance, GreaterThanReduction
from repro.lowerbounds.perm import PermInstance, BordaPermReduction
from repro.lowerbounds.maximin_gadget import MaximinGadgetInstance, MaximinIndexingReduction
from repro.lowerbounds.bounds import (
    heavy_hitters_upper_bound_bits,
    heavy_hitters_lower_bound_bits,
    maximum_upper_bound_bits,
    maximum_lower_bound_bits,
    minimum_upper_bound_bits,
    minimum_lower_bound_bits,
    borda_upper_bound_bits,
    borda_lower_bound_bits,
    maximin_upper_bound_bits,
    maximin_lower_bound_bits,
    misra_gries_bound_bits,
    TABLE1_ROWS,
)

__all__ = [
    "OneWayProtocolRun",
    "StreamingChannel",
    "IndexingInstance",
    "HeavyHittersIndexingReduction",
    "MaximumIndexingReduction",
    "MinimumIndexingReduction",
    "GreaterThanInstance",
    "GreaterThanReduction",
    "PermInstance",
    "BordaPermReduction",
    "MaximinGadgetInstance",
    "MaximinIndexingReduction",
    "heavy_hitters_upper_bound_bits",
    "heavy_hitters_lower_bound_bits",
    "maximum_upper_bound_bits",
    "maximum_lower_bound_bits",
    "minimum_upper_bound_bits",
    "minimum_lower_bound_bits",
    "borda_upper_bound_bits",
    "borda_lower_bound_bits",
    "maximin_upper_bound_bits",
    "maximin_lower_bound_bits",
    "misra_gries_bound_bits",
    "TABLE1_ROWS",
]
