"""The ε-Perm reduction to ε-Borda (paper Theorem 12) — the Ω(n log(1/ε)) term.

``ε-Perm``: Alice holds a permutation ``σ`` of ``[n]``, partitioned into ``1/ε``
contiguous blocks; Bob holds an index ``i`` and must output the block of ``σ``
containing ``i``.  Its one-way communication complexity is ``Ω(n log(1/ε))`` (Lemma 6).

The reduction (Theorem 12) builds an election over ``3n`` items: the ``n`` real items
plus ``2n`` dummies.  Alice casts a single vote in which block ``j`` of ``σ`` appears —
surrounded by its own private run of dummies — at positions that encode ``j``; Bob casts
a few votes putting his item ``i`` first and the dummies in forward/reverse order (the
reversal cancels the dummies' contribution between his votes).  An additively accurate
Borda score for ``i`` then pins down ``i``'s position in Alice's vote to within a block.

We keep the construction's structure but make Bob's votes complete rankings (the paper
leaves them partial), and parameterize the number of Bob vote pairs; decoding inverts
the position → score map and returns the block index.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.lowerbounds.protocols import OneWayProtocolRun, StreamingChannel
from repro.primitives.rng import RandomSource
from repro.voting.rankings import Ranking


@dataclass(frozen=True)
class PermInstance:
    """An ε-Perm instance: a permutation of ``[n]`` split into equal contiguous blocks."""

    permutation: Tuple[int, ...]
    num_blocks: int
    query_item: int

    @property
    def num_items(self) -> int:
        return len(self.permutation)

    @property
    def block_size(self) -> int:
        return self.num_items // self.num_blocks

    def block_of(self, item: int) -> int:
        """The block index (0-based) of the block of σ containing ``item``."""
        position = self.permutation.index(item)
        return min(position // self.block_size, self.num_blocks - 1)

    @property
    def answer(self) -> int:
        return self.block_of(self.query_item)

    def communication_lower_bound_bits(self) -> float:
        """Ω(n log(1/ε)) = n · log2(num_blocks)."""
        return self.num_items * math.log2(max(2, self.num_blocks))

    @classmethod
    def random(
        cls,
        num_items: int,
        num_blocks: int,
        rng: Optional[RandomSource] = None,
    ) -> "PermInstance":
        if num_items % num_blocks != 0:
            raise ValueError("num_items must be a multiple of num_blocks")
        rng = rng if rng is not None else RandomSource()
        permutation = tuple(rng.permutation(num_items))
        query_item = rng.randint(0, num_items - 1)
        return cls(permutation=permutation, num_blocks=num_blocks, query_item=query_item)


class BordaPermReduction:
    """Theorem 12: ε-Perm → ε-Borda over ``3n`` candidates (n real + 2n dummies)."""

    def __init__(self, instance: PermInstance, bob_vote_pairs: int = 2) -> None:
        if bob_vote_pairs <= 0:
            raise ValueError("bob_vote_pairs must be positive")
        self.instance = instance
        self.bob_vote_pairs = bob_vote_pairs
        self.num_real = instance.num_items
        self.num_dummies = 2 * instance.num_items
        self.num_candidates = self.num_real + self.num_dummies

    # Candidate numbering: real items keep ids 0..n-1; dummy k has id n + k.

    def dummy(self, index: int) -> int:
        return self.num_real + index

    def alice_vote(self) -> Ranking:
        """Alice's single vote: block j's dummies, then block j's σ-items, then more dummies."""
        order: List[int] = []
        block_size = self.instance.block_size
        dummies_per_block = 2 * block_size
        for block in range(self.instance.num_blocks):
            dummy_base = block * dummies_per_block
            real_base = block * block_size
            # First half of this block's dummies.
            for offset in range(block_size):
                order.append(self.dummy(dummy_base + offset))
            # The block's real items, in σ order.
            for offset in range(block_size):
                order.append(self.instance.permutation[real_base + offset])
            # Second half of this block's dummies.
            for offset in range(block_size, dummies_per_block):
                order.append(self.dummy(dummy_base + offset))
        return Ranking(order)

    def bob_votes(self) -> List[Ranking]:
        """Bob's votes: query item first, dummies forward/reverse, other reals last.

        Each forward/reverse pair gives every dummy the same total contribution, so the
        pairs cancel among themselves and only shift every candidate's score by a known
        constant; the real items other than ``i`` are placed last in a fixed order.
        """
        i = self.instance.query_item
        other_reals = [item for item in range(self.num_real) if item != i]
        dummies = [self.dummy(index) for index in range(self.num_dummies)]
        forward = Ranking([i] + dummies + other_reals)
        backward = Ranking([i] + list(reversed(dummies)) + other_reals)
        votes: List[Ranking] = []
        for _ in range(self.bob_vote_pairs):
            votes.extend([forward, backward])
        return votes

    def total_votes(self) -> int:
        return 1 + 2 * self.bob_vote_pairs

    def expected_score_for_block(self, block: int) -> Tuple[float, float]:
        """The (min, max) exact Borda score of the query item if it lies in ``block``.

        Bob's votes contribute exactly ``2 * bob_vote_pairs * (num_candidates - 1)`` to
        the query item; Alice's vote contributes ``num_candidates - 1 - position`` where
        ``position`` ranges over the block's real-item slots.
        """
        block_size = self.instance.block_size
        bob_contribution = 2.0 * self.bob_vote_pairs * (self.num_candidates - 1)
        positions = [
            block * 3 * block_size + block_size + offset for offset in range(block_size)
        ]
        scores = [bob_contribution + (self.num_candidates - 1 - p) for p in positions]
        return min(scores), max(scores)

    def decode_block(self, approximate_score: float) -> int:
        """Bob's decoding: the block whose expected score range is closest to the estimate."""
        best_block, best_distance = 0, float("inf")
        for block in range(self.instance.num_blocks):
            low, high = self.expected_score_for_block(block)
            center = (low + high) / 2.0
            distance = abs(approximate_score - center)
            if distance < best_distance:
                best_block, best_distance = block, distance
        return best_block

    def run(
        self,
        algorithm_factory: Callable[[int, int], object],
        repetitions: int = 1,
    ) -> OneWayProtocolRun:
        """Run the reduction with a streaming Borda algorithm as the channel.

        ``algorithm_factory(num_candidates, stream_length)`` must build an ε-Borda
        algorithm whose report exposes per-candidate score estimates.  ``repetitions``
        repeats the whole election that many times (scores scale linearly), which lets
        the streaming algorithm's sampling error average out on small instances.
        """
        alice_votes = [self.alice_vote()] * repetitions
        bob_votes = self.bob_votes() * repetitions
        total_votes = len(alice_votes) + len(bob_votes)
        algorithm = algorithm_factory(self.num_candidates, total_votes)
        channel = StreamingChannel(algorithm)
        channel.alice_phase(alice_votes)
        channel.bob_phase(bob_votes)
        report = channel.report()
        estimated_score = report.scores[self.instance.query_item] / repetitions
        decoded = self.decode_block(estimated_score)
        return OneWayProtocolRun(
            decoded=decoded,
            expected=self.instance.answer,
            message_bits=channel.message_bits(),
            information_lower_bound_bits=self.instance.communication_lower_bound_bits(),
            metadata={
                "num_candidates": self.num_candidates,
                "total_votes": total_votes,
            },
        )
