"""One-way communication protocol simulation (paper Section 2.2).

A one-way protocol has Alice compute a message from her input and Bob compute the output
from the message and his own input.  Every reduction in Section 4 of the paper uses a
streaming algorithm as the message: Alice feeds her part of the gadget stream to the
algorithm and "sends" its state; Bob resumes the same algorithm on his part of the
stream and reads off the answer.

When we *run* a reduction, Alice and Bob live in the same process, so "sending the
state" is trivial — what matters is measuring how large that state is
(:meth:`StreamingChannel.message_bits`), because that is exactly the quantity the lower
bound constrains: it must be at least the one-way communication complexity of the
problem being reduced from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional


class StreamingChannel:
    """Wraps a streaming algorithm playing the role of the one-way message.

    ``alice_phase`` / ``bob_phase`` feed stream items in the two phases; the channel
    records the algorithm's space at the hand-off point, which is the size of the
    message Alice would have had to send.
    """

    def __init__(self, algorithm: Any) -> None:
        self.algorithm = algorithm
        self.message_bits_at_handoff: Optional[int] = None
        self.alice_items = 0
        self.bob_items = 0

    def alice_phase(self, items: Iterable[Any]) -> None:
        """Alice runs the algorithm on her part of the stream."""
        for item in items:
            self.algorithm.insert(item)
            self.alice_items += 1
        self.message_bits_at_handoff = self.algorithm.space_bits()

    def bob_phase(self, items: Iterable[Any]) -> None:
        """Bob resumes the algorithm on his part of the stream."""
        if self.message_bits_at_handoff is None:
            raise RuntimeError("bob_phase called before alice_phase")
        for item in items:
            self.algorithm.insert(item)
            self.bob_items += 1

    def message_bits(self) -> int:
        """The size of the 'message' (the algorithm state at the hand-off point)."""
        if self.message_bits_at_handoff is None:
            raise RuntimeError("the hand-off has not happened yet")
        return self.message_bits_at_handoff

    def report(self) -> Any:
        return self.algorithm.report()


@dataclass
class OneWayProtocolRun:
    """The outcome of running a reduction end to end.

    ``decoded`` is Bob's output, ``expected`` what Alice's input dictates, ``correct``
    their equality, ``message_bits`` the algorithm state size at the hand-off (the
    quantity the communication lower bound constrains), and
    ``information_lower_bound_bits`` the communication complexity of the source problem
    for this instance size (what the message size must asymptotically dominate).
    """

    decoded: Any
    expected: Any
    message_bits: int
    information_lower_bound_bits: float
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def correct(self) -> bool:
        return self.decoded == self.expected
