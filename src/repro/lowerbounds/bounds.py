"""Closed-form space-bound formulas — the rows of Table 1.

Every function returns a bit count *without* hidden constants (i.e. it evaluates the
asymptotic expression literally, with base-2 logarithms).  The benchmark harness uses
these as reference curves: measured space should track the upper-bound curve's *shape*
(slope in each parameter) and sit above the lower-bound curve.

Table 1 of the paper:

====================  ==============================================  ==============================================
Problem               Upper bound (bits)                              Lower bound (bits)
====================  ==============================================  ==============================================
(ε,ϕ)-Heavy Hitters   O(ε⁻¹ log ϕ⁻¹ + ϕ⁻¹ log n + log log m)          Ω(ε⁻¹ log ϕ⁻¹ + ϕ⁻¹ log n + log log m)
ε-Maximum             O(ε⁻¹ log ε⁻¹ + log n + log log m)              Ω(ε⁻¹ log ε⁻¹ + log n + log log m)
ε-Minimum             O(ε⁻¹ log log ε⁻¹ + log log m)                  Ω(ε⁻¹ + log log m)
ε-Borda               O(n (log ε⁻¹ + log n) + log log m)              Ω(n (log ε⁻¹ + log n) + log log m)
ε-Maximin             O(n ε⁻² log² n + log log m)                     Ω(n (ε⁻² + log n) + log log m)
====================  ==============================================  ==============================================

For comparison, :func:`misra_gries_bound_bits` gives the prior state of the art for
heavy hitters, ``O(ε⁻¹ (log n + log m))`` bits.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, NamedTuple


def _log2(value: float) -> float:
    return math.log2(max(2.0, value))


def _loglog2(value: float) -> float:
    return math.log2(max(2.0, math.log2(max(2.0, value))))


# -- (eps, phi)-Heavy Hitters -------------------------------------------------------------


def heavy_hitters_upper_bound_bits(epsilon: float, phi: float, n: int, m: int) -> float:
    """Theorem 2 / 7: ε⁻¹ log ϕ⁻¹ + ϕ⁻¹ log n + log log m."""
    return (1.0 / epsilon) * _log2(1.0 / phi) + (1.0 / phi) * _log2(n) + _loglog2(m)


def heavy_hitters_lower_bound_bits(epsilon: float, phi: float, n: int, m: int) -> float:
    """Theorems 9 and 14: the same expression (the bounds match)."""
    return heavy_hitters_upper_bound_bits(epsilon, phi, n, m)


def misra_gries_bound_bits(epsilon: float, n: int, m: int) -> float:
    """Prior art [MG82]: ε⁻¹ (log n + log m)."""
    return (1.0 / epsilon) * (_log2(n) + _log2(m))


# -- eps-Maximum ---------------------------------------------------------------------------


def maximum_upper_bound_bits(epsilon: float, n: int, m: int) -> float:
    """Theorem 3 / 7: ε⁻¹ log ε⁻¹ + log n + log log m."""
    return (1.0 / epsilon) * _log2(1.0 / epsilon) + _log2(n) + _loglog2(m)


def maximum_lower_bound_bits(epsilon: float, n: int, m: int) -> float:
    """Theorems 10 and 14: the same expression (the bounds match)."""
    return maximum_upper_bound_bits(epsilon, n, m)


# -- eps-Minimum ---------------------------------------------------------------------------


def minimum_upper_bound_bits(epsilon: float, m: int) -> float:
    """Theorem 4 / 8: ε⁻¹ log log ε⁻¹ + log log m."""
    return (1.0 / epsilon) * _loglog2(1.0 / epsilon) + _loglog2(m)


def minimum_lower_bound_bits(epsilon: float, m: int) -> float:
    """Theorems 11 and 14: ε⁻¹ + log log m."""
    return (1.0 / epsilon) + _loglog2(m)


# -- eps-Borda -----------------------------------------------------------------------------


def borda_upper_bound_bits(epsilon: float, n: int, m: int) -> float:
    """Theorem 5 / 8: n (log ε⁻¹ + log n) + log log m."""
    return n * (_log2(1.0 / epsilon) + _log2(n)) + _loglog2(m)


def borda_lower_bound_bits(epsilon: float, n: int, m: int) -> float:
    """Theorems 12 and 14: n log ε⁻¹ + log log m (plus the trivial n log n for List)."""
    return n * _log2(1.0 / epsilon) + _loglog2(m)


# -- eps-Maximin ---------------------------------------------------------------------------


def maximin_upper_bound_bits(epsilon: float, n: int, m: int) -> float:
    """Theorem 6 / 8: n ε⁻² log² n + log log m."""
    return n * (1.0 / epsilon ** 2) * (_log2(n) ** 2) + _loglog2(m)


def maximin_lower_bound_bits(epsilon: float, n: int, m: int) -> float:
    """Theorem 13: n (ε⁻² + log n) + log log m."""
    return n * ((1.0 / epsilon ** 2) + _log2(n)) + _loglog2(m)


class Table1Row(NamedTuple):
    """One row of Table 1: the problem name and its two bound formulas.

    The formulas take keyword arguments drawn from ``{epsilon, phi, n, m}``; which of
    them each formula actually uses mirrors the paper's expressions.
    """

    problem: str
    upper_bound: Callable[..., float]
    lower_bound: Callable[..., float]
    parameters: tuple


TABLE1_ROWS: Dict[str, Table1Row] = {
    "heavy_hitters": Table1Row(
        problem="(eps, phi)-Heavy Hitters",
        upper_bound=heavy_hitters_upper_bound_bits,
        lower_bound=heavy_hitters_lower_bound_bits,
        parameters=("epsilon", "phi", "n", "m"),
    ),
    "maximum": Table1Row(
        problem="eps-Maximum / l_inf approximation",
        upper_bound=maximum_upper_bound_bits,
        lower_bound=maximum_lower_bound_bits,
        parameters=("epsilon", "n", "m"),
    ),
    "minimum": Table1Row(
        problem="eps-Minimum",
        upper_bound=minimum_upper_bound_bits,
        lower_bound=minimum_lower_bound_bits,
        parameters=("epsilon", "m"),
    ),
    "borda": Table1Row(
        problem="eps-Borda",
        upper_bound=borda_upper_bound_bits,
        lower_bound=borda_lower_bound_bits,
        parameters=("epsilon", "n", "m"),
    ),
    "maximin": Table1Row(
        problem="eps-Maximin",
        upper_bound=maximin_upper_bound_bits,
        lower_bound=maximin_lower_bound_bits,
        parameters=("epsilon", "n", "m"),
    ),
}
