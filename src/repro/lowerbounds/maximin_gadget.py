"""The Theorem 13 gadget: Indexing → ε-Maximin via Hamming-distance votes.

Theorem 13 of the paper proves the Ω(n/ε²) lower bound for ε-Maximin by a reduction from
Indexing through a Hamming-distance gadget (Lemma 8, borrowed from [VWWZ15]): Alice
encodes her bit string into a Boolean matrix ``P`` whose rows are candidates and whose
columns are votes, such that the Hamming distance between rows ``i`` and ``j`` is large
or small depending on the indexed bit.  She then adjoins the complement of ``P`` (so
every column has exactly as many ones as zeros), casts one vote per column — the
candidates with a one in that column ranked on top — and sends the algorithm state.
Bob casts votes putting candidate ``i`` first and ``j`` second; after his votes, ``j``'s
maximin score equals the number of Alice columns in which ``j`` beats ``i``, which is
``(Δ(Pᵢ, Pⱼ) + |Pⱼ| − |Pᵢ|)/2`` — so an additively accurate maximin estimate recovers
the Hamming distance and hence the indexed bit.

Reproducing Lemma 8 verbatim would require its specific randomized code construction;
what this module implements — and what the tests verify end to end — is the *reduction
machinery* around it: the vote gadget, the exact algebraic identity linking ``j``'s
maximin score to ``Δ(Pᵢ, Pⱼ)``, and the decoding rule, with Alice's matrix drawn so that
the two cases of the indexed bit are separated by a known Hamming-distance gap.  This
demonstrates why any streaming ε-Maximin algorithm must remember Ω(one bit per matrix
entry) ≈ n/ε² bits of Alice's input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.lowerbounds.protocols import OneWayProtocolRun, StreamingChannel
from repro.primitives.rng import RandomSource
from repro.voting.rankings import Ranking


@dataclass(frozen=True)
class MaximinGadgetInstance:
    """One instance of the Theorem 13 gadget.

    ``matrix`` is Alice's ``num_candidates × num_columns`` Boolean matrix (one row per
    original candidate); ``row_i``/``row_j`` are Bob's query pair; ``hidden_bit`` is the
    indexed bit, encoded as "Δ(P_i, P_j) is above / below the midpoint".
    """

    matrix: Tuple[Tuple[int, ...], ...]
    row_i: int
    row_j: int
    hidden_bit: int
    distance_gap: int

    @property
    def num_candidates(self) -> int:
        return len(self.matrix)

    @property
    def num_columns(self) -> int:
        return len(self.matrix[0]) if self.matrix else 0

    def hamming_distance(self) -> int:
        """Δ(P_i, P_j), the quantity the reduction forces Bob to learn."""
        return sum(
            1
            for column in range(self.num_columns)
            if self.matrix[self.row_i][column] != self.matrix[self.row_j][column]
        )

    def row_weight(self, row: int) -> int:
        return sum(self.matrix[row])

    def information_lower_bound_bits(self) -> float:
        """Ω(n/ε²) — one bit per matrix entry in the full construction."""
        return float(self.num_candidates * self.num_columns)

    @classmethod
    def random(
        cls,
        num_candidates: int,
        num_columns: int,
        rng: Optional[RandomSource] = None,
    ) -> "MaximinGadgetInstance":
        """Draw an instance whose query pair has a controlled Hamming-distance gap.

        The hidden bit decides whether rows ``i`` and ``j`` agree on (bit = 0) or
        disagree on (bit = 1) an extra ``distance_gap`` ≈ √(num_columns) columns beyond
        the midpoint — the same gap Lemma 8 guarantees.
        """
        if num_candidates < 2:
            raise ValueError("need at least two candidates")
        if num_columns < 4:
            raise ValueError("need at least four columns")
        rng = rng if rng is not None else RandomSource()
        hidden_bit = rng.randint(0, 1)
        distance_gap = max(1, int(math.isqrt(num_columns)))
        row_i, row_j = 0, 1
        matrix: List[List[int]] = [
            [rng.randint(0, 1) for _ in range(num_columns)] for _ in range(num_candidates)
        ]
        # Force Δ(P_i, P_j) to be midpoint ± gap depending on the hidden bit.
        half = num_columns // 2
        target_distance = half + distance_gap if hidden_bit == 1 else max(0, half - distance_gap)
        disagree_columns = set(rng.sample(range(num_columns), target_distance))
        for column in range(num_columns):
            if column in disagree_columns:
                matrix[row_j][column] = 1 - matrix[row_i][column]
            else:
                matrix[row_j][column] = matrix[row_i][column]
        return cls(
            matrix=tuple(tuple(row) for row in matrix),
            row_i=row_i,
            row_j=row_j,
            hidden_bit=hidden_bit,
            distance_gap=distance_gap,
        )


class MaximinIndexingReduction:
    """Theorem 13: the Hamming-distance gadget as an executable election.

    The election has ``2 * num_candidates`` candidates: the original rows of ``P`` plus
    one "complement" candidate per row (the paper adjoins the complement matrix so every
    column is balanced).  Alice casts one vote per column; Bob casts ``bob_vote_copies``
    votes with ``i`` first and ``j`` second, making ``j``'s overall maximin score equal
    to its pairwise deficit against ``i`` over Alice's votes.
    """

    def __init__(self, instance: MaximinGadgetInstance, bob_vote_copies: int = 0) -> None:
        self.instance = instance
        self.bob_vote_copies = (
            bob_vote_copies if bob_vote_copies > 0 else instance.num_columns
        )
        self.num_election_candidates = 2 * instance.num_candidates

    # Candidate numbering: row r keeps id r; its complement row has id num_candidates + r.

    def _column_vote(self, column: int) -> Ranking:
        """Alice's vote for one column: candidates with a 1 on top (ascending ids),
        then the candidates with a 0 (ascending ids); complements mirror them."""
        ones: List[int] = []
        zeros: List[int] = []
        n = self.instance.num_candidates
        for row in range(n):
            value = self.instance.matrix[row][column]
            if value == 1:
                ones.append(row)
                zeros.append(n + row)  # complement row has a 0 here
            else:
                zeros.append(row)
                ones.append(n + row)
        return Ranking(ones + zeros)

    def alice_votes(self) -> List[Ranking]:
        return [self._column_vote(column) for column in range(self.instance.num_columns)]

    def bob_votes(self) -> List[Ranking]:
        """Bob's votes: i first, j second, everyone else in a fixed order behind."""
        i, j = self.instance.row_i, self.instance.row_j
        rest = [c for c in range(self.num_election_candidates) if c not in (i, j)]
        vote = Ranking([i, j] + rest)
        return [vote] * self.bob_vote_copies

    # -- the algebraic identity the decoding rests on -------------------------------------

    def expected_j_beats_i_count(self) -> int:
        """Number of Alice columns in which j is ranked above i.

        j beats i in exactly the columns where P_j = 1 and P_i = 0, whose count is
        (Δ(P_i, P_j) + |P_j| − |P_i|) / 2 — the identity from the proof of Theorem 13.
        """
        delta = self.instance.hamming_distance()
        weight_j = self.instance.row_weight(self.instance.row_j)
        weight_i = self.instance.row_weight(self.instance.row_i)
        return (delta + weight_j - weight_i) // 2

    def decode_bit(self, estimated_j_score: float) -> int:
        """Bob's decoding: recover Δ(P_i, P_j) from j's maximin score and threshold it."""
        weight_j = self.instance.row_weight(self.instance.row_j)
        weight_i = self.instance.row_weight(self.instance.row_i)
        estimated_distance = 2.0 * estimated_j_score - weight_j + weight_i
        midpoint = self.instance.num_columns / 2.0
        return 1 if estimated_distance > midpoint else 0

    def run(
        self,
        algorithm_factory: Callable[[int, int], object],
    ) -> OneWayProtocolRun:
        """Run the reduction with a streaming maximin algorithm as the channel.

        ``algorithm_factory(num_candidates, stream_length)`` must build an algorithm
        whose ``report()`` exposes per-candidate maximin score estimates (absolute).
        """
        alice = self.alice_votes()
        bob = self.bob_votes()
        total_votes = len(alice) + len(bob)
        algorithm = algorithm_factory(self.num_election_candidates, total_votes)
        channel = StreamingChannel(algorithm)
        channel.alice_phase(alice)
        channel.bob_phase(bob)
        report = channel.report()
        decoded = self.decode_bit(report.scores[self.instance.row_j])
        return OneWayProtocolRun(
            decoded=decoded,
            expected=self.instance.hidden_bit,
            message_bits=channel.message_bits(),
            information_lower_bound_bits=self.instance.information_lower_bound_bits(),
            metadata={
                "num_candidates": self.num_election_candidates,
                "total_votes": total_votes,
                "hamming_distance": self.instance.hamming_distance(),
            },
        )
