"""Async pipelined ingestion: stream parsing overlaps sketch updates via a chunk queue.

This package is the third rung of the scaling ladder in ROADMAP.md — **batching**
(PR 1: ``insert_many`` makes one consumer fast) → **sharding** (PR 2: one stream
spread across ``k`` mergeable sketches) → **async** (this: replay and compute no
longer alternate).  Replaying an on-disk trace serially spends its wall-clock in two
strictly alternating phases: parse a chunk (file IO, ``int`` conversion, numpy
materialization — work that releases the GIL in its numpy parts), then ingest it
(``insert_many`` — Python/numpy compute).  The pipeline runs the two concurrently:

* :class:`ChunkProducer` — a background thread that reads any chunk source (a trace
  path, a ``Stream``, an array, an iterable) into a **bounded** queue of contiguous
  int64 chunks;
* :class:`PipelinedExecutor` — the consumer loop that drains the queue into a single
  sketch's ``insert_many`` or a :class:`~repro.sharding.ShardedExecutor`'s router
  fan-out, merges at end of stream, and can answer heavy-hitter queries *mid-ingest*
  through :meth:`~PipelinedExecutor.snapshot`.

The contract, in three clauses
------------------------------

**Backpressure.**  The queue holds at most ``queue_depth`` chunks of ``chunk_size``
items; a slow consumer blocks the producer in ``put`` rather than letting it buffer
the stream, so a pipelined replay costs O(``queue_depth`` × ``chunk_size``) memory
beyond the sketches — the same out-of-core guarantee as the serial chunked replay,
one constant factor deeper.

**Ordering and determinism.**  The queue is FIFO and the consumer is a single loop:
chunks are ingested in source order, and the concatenation of ingested chunks is
exactly the source's item sequence.  Pipelining therefore changes *when* parsing
happens, never *what* the sketches see: with the same seeds and the same chunk size,
a pipelined run is **bit-for-bit identical** to the serial
:meth:`~repro.sharding.ShardedExecutor.run_chunks` replay of the same source — the
(ε,ϕ) guarantee of Definition 1 rides along untouched, and
:func:`repro.analysis.harness.run_pipelined_comparison` measures exactly this
equality rather than assuming it.

**Failure and shutdown.**  An exception raised while parsing (corrupt trace line,
failing generator) is captured on the producer thread and re-raised, as itself, from
the consumer's call site; every exit path — completion, producer error, consumer
error, abandonment — joins the producer thread, so no run leaves a live thread
behind.

Mid-ingest queries.  Chunk ingestion is atomic under the executor's lock, so
:meth:`PipelinedExecutor.snapshot` (from any thread) deep-copies shard states that
all correspond to the same chunk-aligned stream prefix, merges the copies, and
reports against the prefix length — Definition 1 semantics on the stream so far,
while ingestion continues on the originals.

Quickstart::

    from repro.pipeline import PipelinedExecutor
    from repro.sharding import ShardedExecutor

    executor = PipelinedExecutor(
        executor=ShardedExecutor(factory, num_shards=4, universe_size=n),
        chunk_size=1 << 16, queue_depth=4,
    )
    result = executor.run("trace.txt")          # parse ‖ ingest, then merge
    print(result.report.reported_items(), result.ingest_seconds)
"""

from repro.pipeline.executor import (
    PipelinedExecutor,
    PipelinedRunResult,
    PipelineSnapshot,
    SinkState,
)
from repro.pipeline.producer import ArrayBatchSource, ChunkProducer

__all__ = [
    "ArrayBatchSource",
    "ChunkProducer",
    "PipelinedExecutor",
    "PipelinedRunResult",
    "PipelineSnapshot",
    "SinkState",
]
